//! Deterministic data parallelism for the DP-Reverser stack.
//!
//! A std-only chunked thread pool with a rayon-shaped [`par_map`] API.
//! The design goal is *bit-identical outputs regardless of thread
//! count*: inputs are split into fixed, index-ordered chunks, workers pull
//! chunks off an atomic cursor, and results are reassembled in input order
//! before returning. As long as the mapped function is pure (no shared
//! mutable state, no RNG), `par_map` with 1 thread and with N threads
//! produce the same `Vec` — which is what lets the GP engine parallelize
//! fitness scoring without perturbing its deterministic evolution.
//!
//! # The persistent pool
//!
//! Workers are spawned once per process (lazily, up to the largest
//! worker count any call has asked for) and parked on a condvar between
//! calls; each `par_map` publishes one job, **joins it as worker 0 on
//! the submitting thread**, and reassembles the results once the pool
//! threads (slots 1..N) have drained their share. Caller participation
//! is what makes small jobs safe: the already-running submitter starts
//! claiming chunks immediately, so wake-up latency overlaps useful work
//! and a call can never be slower than running inline by more than the
//! join cost. Earlier versions spawned fresh OS threads on *every*
//! call, which on the GP fitness path meant thousands of spawns per run
//! — the `par.pool_spawns` counter now records exactly how many threads
//! a call actually created (0 once the pool is warm). Because the
//! caller blocks until the job completes, borrowed inputs work without
//! `'static` bounds and a panic in any worker propagates to the caller.
//!
//! Nested calls (a mapped function calling `par_map` again) run inline
//! on the worker thread: the pool has one job slot, so re-entering it
//! from a worker would deadlock.
//!
//! # Thread-count resolution
//!
//! [`threads`] resolves, in order:
//!
//! 1. the `DPR_THREADS` environment variable (clamped to at least 1;
//!    unparsable values are ignored),
//! 2. [`std::thread::available_parallelism`],
//! 3. a fallback of 1.
//!
//! `DPR_THREADS=1` (or a single-core machine) makes every call run inline
//! on the caller's thread — no threads are spawned and no synchronization
//! is paid.
//!
//! # Telemetry and profiling
//!
//! Workers are named `gp-worker-N` and run inside the caller's scoped
//! telemetry registry (`dpr_telemetry::scoped` is thread-local, so the
//! pool re-enters it on each job). Every claimed chunk is timed under
//! a `par.chunk` span, which is what makes pool rows visible in exported
//! traces; metrics recorded by the mapped function land in the calling
//! run's registry, not the process-wide global one.
//!
//! Every call additionally records a `dpr_prof::CallProfile` — per-worker
//! busy/wait/idle microseconds, chunk geometry, spin-up and teardown
//! latency — into the process-wide profile store, and emits `par.*`
//! metrics (see the DESIGN.md taxonomy) into the caller's registry.
//! Allocation attribution rides along when `DPR_PROF=1` and the binary
//! installs [`dpr_prof::alloc::CountingAlloc`]. Profiling never touches
//! the data path: claims, chunking, and reassembly are identical with
//! profiling on or off.
//!
//! # Example
//!
//! ```
//! let squares = dpr_par::par_map(&[1u64, 2, 3, 4], |x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod pool;

use dpr_prof::{CallProfile, WorkerStats};
use std::sync::atomic::AtomicUsize;
use std::sync::Mutex;
use std::time::Instant;

/// The environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "DPR_THREADS";

/// The effective worker-thread count: `DPR_THREADS` if set and valid,
/// otherwise the machine's available parallelism, otherwise 1.
///
/// Read on every call (not cached) so tests and long-lived processes can
/// retune the pool between runs.
pub fn threads() -> usize {
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A chunked fork-join facade over the process-wide persistent pool.
///
/// The pool handle is a configuration object (just a worker count); the
/// live `gp-worker-N` threads are process-wide and shared by every
/// handle. Each [`par_map`](Pool::par_map) call publishes one job and
/// joins it before returning, so borrowed inputs work without `'static`
/// bounds and a panic in any worker propagates to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool with exactly `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Pool {
            threads: threads.max(1),
        }
    }

    /// A pool sized by [`threads`] (the `DPR_THREADS` override).
    pub fn from_env() -> Self {
        Pool::new(threads())
    }

    /// The worker count this pool uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items`, returning results in input order.
    ///
    /// Deterministic for pure `f`: the output is identical for any thread
    /// count, including 1.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.par_map_init(items, || (), |(), item| f(item))
    }

    /// Like [`par_map`](Pool::par_map), but hands each worker a private
    /// scratch state built by `init` (rayon's `map_init` shape). `init`
    /// runs once per worker per call, so per-item allocation (evaluation
    /// stacks, buffers) is amortized across the worker's whole share of
    /// the input.
    ///
    /// The state must not influence results (it is scratch, not an
    /// accumulator) or determinism across thread counts is lost.
    pub fn par_map_init<T, S, R, FI, F>(&self, items: &[T], init: FI, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        FI: Fn() -> S + Sync,
        F: Fn(&mut S, &T) -> R + Sync,
    {
        // Sync the profiling gate (and the allocator's counting flag)
        // once per call, mirroring how DPR_THREADS is re-read per call.
        let prof_on = dpr_prof::refresh();
        let started = Instant::now();
        let n = items.len();
        let workers = self.threads.min(n);
        if workers <= 1 || pool::in_worker() {
            return run_inline(items, init, f, started, n);
        }

        // Chunks several times smaller than a worker's fair share keep the
        // pool load-balanced when item costs vary (GP trees differ wildly
        // in size) without paying cursor contention per item.
        let chunk = n.div_ceil(workers * 4).max(1);
        let n_chunks = n.div_ceil(chunk);
        let cursor = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<Vec<R>>>> =
            Mutex::new((0..n_chunks).map(|_| None).collect());
        let raw_stats: Mutex<Vec<pool::RawWorker>> =
            Mutex::new(vec![pool::RawWorker::default(); workers]);

        let ctx = pool::Ctx {
            items,
            init: &init,
            f: &f,
            chunk,
            n_chunks,
            cursor: &cursor,
            slots: &slots,
            stats: &raw_stats,
            started,
            _state: std::marker::PhantomData,
        };
        let outcome = pool::run_job(&ctx, workers);

        let profile = finalize_profile(
            started,
            n,
            chunk,
            n_chunks,
            &outcome,
            raw_stats.into_inner().unwrap_or_else(|e| e.into_inner()),
            prof_on,
        );
        emit_call_metrics(&profile, prof_on);
        dpr_prof::record_call(profile, started);

        if let Some(payload) = outcome.panic {
            std::panic::resume_unwind(payload);
        }

        slots
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
            .into_iter()
            .flat_map(|slot| slot.expect("every chunk was claimed and filled"))
            .collect()
    }

    /// [`par_map`](Pool::par_map) behind a minimum-batch gate: batches of
    /// fewer than `min_items` items are drained inline on the caller's
    /// thread (never waking the pool), larger ones are flushed through it
    /// in one call. `min_items == 0` always flushes.
    ///
    /// The decision is timing-blind — it looks only at the batch size the
    /// caller computed — so results stay bit-identical whichever side is
    /// taken; only the `par.batch_*` telemetry (which the determinism
    /// suite strips along with the rest of `par.*`) records the choice.
    pub fn par_map_batched<T, R, F>(&self, items: &[T], min_items: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        if self.threads > 1 {
            // `usize::MAX` is the "never flush" sentinel (hosts with no
            // second core); saturate rather than wrap the gauge.
            dpr_telemetry::gauge("par.batch_threshold").set(min_items.min(i64::MAX as usize) as i64);
            if min_items > 0 && items.len() < min_items {
                dpr_telemetry::counter("par.batch_inline_drains").inc(1);
                return Pool::new(1).par_map(items, f);
            }
            dpr_telemetry::counter("par.batch_flushes").inc(1);
        }
        self.par_map(items, f)
    }
}

/// The call's start on the caller's telemetry-registry timeline — the
/// same epoch span records use, so trace exporters can align profile
/// counter tracks with span rows.
fn registry_start_us(started: Instant) -> u64 {
    started
        .saturating_duration_since(dpr_telemetry::registry().epoch())
        .as_micros() as u64
}

/// The sequential path: single worker, nested call, or tiny input.
fn run_inline<T, S, R, FI, F>(items: &[T], init: FI, f: F, started: Instant, n: usize) -> Vec<R>
where
    FI: Fn() -> S,
    F: Fn(&mut S, &T) -> R,
{
    let alloc_before = dpr_prof::alloc::thread_alloc_stats();
    let mut state = init();
    let out: Vec<R> = items.iter().map(|item| f(&mut state, item)).collect();
    let wall_us = started.elapsed().as_micros() as u64;
    let alloc = dpr_prof::alloc::thread_alloc_stats().since(alloc_before);
    let profile = CallProfile {
        label: dpr_prof::current_label().to_string(),
        epoch_start_us: registry_start_us(started),
        wall_us,
        items: n as u64,
        chunk_size: n as u64,
        chunks: u64::from(n > 0),
        workers: vec![WorkerStats {
            worker: 0,
            busy_us: wall_us,
            chunks: u64::from(n > 0),
            items: n as u64,
            allocs: alloc.allocs,
            alloc_bytes: alloc.bytes,
            ..WorkerStats::default()
        }],
        inline: true,
        ..CallProfile::default()
    };
    emit_call_metrics(&profile, dpr_prof::alloc::counting());
    dpr_prof::record_call(profile, started);
    out
}

/// Builds the call's [`CallProfile`] from the raw per-worker samples.
///
/// `busy` and `wait` are measured directly; `idle` is the per-worker
/// remainder of the call's wall time (spin-up gap before the worker's
/// first claim, the tail after its last chunk while stragglers finish,
/// and reassembly), saturating against clock-read jitter.
#[allow(clippy::too_many_arguments)]
fn finalize_profile(
    started: Instant,
    n: usize,
    chunk: usize,
    n_chunks: usize,
    outcome: &pool::JobOutcome,
    raw: Vec<pool::RawWorker>,
    prof_on: bool,
) -> CallProfile {
    let wall_us = started.elapsed().as_micros() as u64;
    let mut last_exit_us = 0u64;
    let mut spinup_us = 0u64;
    let stats: Vec<WorkerStats> = raw
        .iter()
        .enumerate()
        .map(|(w, r)| {
            spinup_us = spinup_us.max(r.enter_us);
            last_exit_us = last_exit_us.max(r.exit_us);
            WorkerStats {
                worker: w as u64,
                busy_us: r.busy_us,
                wait_us: r.wait_us,
                idle_us: wall_us.saturating_sub(r.busy_us + r.wait_us),
                chunks: r.chunks,
                items: r.items,
                allocs: if prof_on { r.allocs } else { 0 },
                alloc_bytes: if prof_on { r.alloc_bytes } else { 0 },
            }
        })
        .collect();
    CallProfile {
        label: dpr_prof::current_label().to_string(),
        epoch_start_us: registry_start_us(started),
        wall_us,
        items: n as u64,
        chunk_size: chunk as u64,
        chunks: n_chunks as u64,
        workers: stats,
        spinup_us,
        teardown_us: wall_us.saturating_sub(last_exit_us),
        spawned_threads: outcome.spawned,
        inline: false,
        ..CallProfile::default()
    }
}

/// Emits the call's `par.*` (and, under `DPR_PROF`, `prof.*`) metrics
/// into the caller's scoped registry. All of these are either
/// time-valued or scheduling-dependent, so the determinism suite
/// compares runs with the `par.`/`prof.` prefixes stripped.
fn emit_call_metrics(profile: &CallProfile, prof_on: bool) {
    if profile.inline {
        dpr_telemetry::counter("par.inline_calls").inc(1);
    } else {
        dpr_telemetry::counter("par.calls").inc(1);
        dpr_telemetry::counter("par.busy_us").inc(profile.busy_us());
        dpr_telemetry::counter("par.wait_us").inc(profile.wait_us());
        dpr_telemetry::counter("par.idle_us").inc(profile.idle_us());
        dpr_telemetry::histogram("par.chunk_size").record(profile.chunk_size as f64);
        dpr_telemetry::histogram("par.spinup_us").record(profile.spinup_us as f64);
        dpr_telemetry::histogram("par.teardown_us").record(profile.teardown_us as f64);
        dpr_telemetry::histogram("par.utilization").record(profile.utilization() * 100.0);
        dpr_telemetry::histogram("par.imbalance").record(profile.imbalance());
        dpr_telemetry::histogram("par.steal_ratio").record(profile.steal_ratio());
        if profile.spawned_threads > 0 {
            dpr_telemetry::counter("par.pool_spawns").inc(profile.spawned_threads);
        }
    }
    dpr_telemetry::counter("par.items").inc(profile.items);
    if prof_on {
        let allocs = profile.allocs();
        let bytes = profile.alloc_bytes();
        if allocs > 0 {
            dpr_telemetry::counter("prof.alloc_allocs").inc(allocs);
            dpr_telemetry::counter("prof.alloc_bytes").inc(bytes);
        }
    }
}

impl Default for Pool {
    fn default() -> Self {
        Pool::from_env()
    }
}

/// Maps `f` over `items` on the [`Pool::from_env`] pool, in input order.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    Pool::from_env().par_map(items, f)
}

/// [`Pool::par_map_init`] on the [`Pool::from_env`] pool.
pub fn par_map_init<T, S, R, FI, F>(items: &[T], init: FI, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    FI: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    Pool::from_env().par_map_init(items, init, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        for workers in [1, 2, 3, 8, 64] {
            let out = Pool::new(workers).par_map(&items, |x| x * 2);
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn identical_across_thread_counts() {
        // A float reduction whose value would drift if ordering changed.
        let items: Vec<f64> = (0..777).map(|i| f64::from(i) * 0.3127).collect();
        let f = |x: &f64| (x.sin() * 1e6).mul_add(0.1, x.sqrt());
        let one = Pool::new(1).par_map(&items, f);
        for workers in [2, 5, 16] {
            let many = Pool::new(workers).par_map(&items, f);
            let same = one
                .iter()
                .zip(&many)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "results differ between 1 and {workers} threads");
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(Pool::new(4).par_map(&empty, |x| *x).is_empty());
        assert_eq!(Pool::new(4).par_map(&[7u8], |x| *x + 1), vec![8]);
    }

    #[test]
    fn init_state_is_per_worker_scratch() {
        let inits = AtomicUsize::new(0);
        let items: Vec<u32> = (0..100).collect();
        let out = Pool::new(4).par_map_init(
            &items,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                Vec::<u32>::new()
            },
            |scratch, x| {
                scratch.push(*x);
                *x + 1
            },
        );
        assert_eq!(out.len(), 100);
        assert_eq!(out[99], 100);
        // One init per worker, not per item.
        assert!(inits.load(Ordering::Relaxed) <= 4);
    }

    #[test]
    fn pool_clamps_to_one_thread() {
        assert_eq!(Pool::new(0).threads(), 1);
    }

    #[test]
    fn nested_calls_run_inline_without_deadlock() {
        let outer: Vec<u32> = (0..16).collect();
        let out = Pool::new(4).par_map(&outer, |x| {
            let inner: Vec<u32> = (0..8).collect();
            Pool::new(4).par_map(&inner, |y| y + x).iter().sum::<u32>()
        });
        let expect: Vec<u32> = outer.iter().map(|x| (0..8).map(|y| y + x).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn workers_record_into_the_callers_scoped_registry() {
        let reg = std::sync::Arc::new(dpr_telemetry::Registry::new());
        let collector = std::sync::Arc::new(dpr_telemetry::Collector::new());
        reg.add_sink(collector.clone());
        let items: Vec<u64> = (0..64).collect();
        let out = dpr_telemetry::scoped(std::sync::Arc::clone(&reg), || {
            Pool::new(4).par_map(&items, |x| {
                dpr_telemetry::counter("par.test_items").inc(1);
                // Slow enough that one worker cannot drain every chunk
                // before its siblings finish spawning.
                std::thread::sleep(std::time::Duration::from_millis(1));
                x + 1
            })
        });
        assert_eq!(out.len(), 64);
        let snap = reg.snapshot();
        // Counters from inside the mapped fn reached the scoped registry…
        assert_eq!(snap.counters.get("par.test_items"), Some(&64));
        // …and each claimed chunk closed a par.chunk span on a named,
        // distinctly-identified worker thread.
        let records = collector.records();
        let chunks: Vec<_> = records.iter().filter(|r| r.path == "par.chunk").collect();
        assert!(!chunks.is_empty());
        assert_eq!(
            snap.histograms["span.par.chunk"].count,
            chunks.len() as u64
        );
        let tids: std::collections::BTreeSet<u64> = chunks.iter().map(|r| r.tid).collect();
        assert!(tids.len() > 1, "expected multiple worker rows, got {tids:?}");
        // The submitter participates as worker 0, so its chunks carry the
        // caller's thread name; every other chunk ran on a named pool row.
        assert!(chunks.iter().any(|r| {
            r.thread
                .as_deref()
                .is_some_and(|name| name.starts_with("gp-worker-"))
        }));
        // The call also emitted its scheduling metrics into the scope.
        assert_eq!(snap.counters.get("par.calls"), Some(&1));
        assert_eq!(snap.counters.get("par.items"), Some(&64));
        assert_eq!(snap.histograms["par.utilization"].count, 1);
    }

    #[test]
    fn batched_dispatch_is_identical_on_both_sides_of_the_gate() {
        let items: Vec<u64> = (0..48).collect();
        let f = |x: &u64| (*x as f64).sqrt().sin();
        let pooled = Pool::new(4).par_map_batched(&items, 8, f);
        let drained = Pool::new(4).par_map_batched(&items[..4], 8, f);
        let reference: Vec<f64> = items.iter().map(f).collect();
        assert!(pooled
            .iter()
            .zip(&reference)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
        assert!(drained
            .iter()
            .zip(&reference[..4])
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            let items: Vec<u32> = (0..64).collect();
            Pool::new(4).par_map(&items, |x| {
                assert!(*x != 13, "boom");
                *x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn pool_survives_a_panicked_job() {
        let items: Vec<u32> = (0..64).collect();
        let boom = std::panic::catch_unwind(|| {
            Pool::new(2).par_map(&items, |x| {
                assert!(*x != 7, "boom");
                *x
            })
        });
        assert!(boom.is_err());
        // The same process-wide workers take the next job normally.
        let out = Pool::new(2).par_map(&items, |x| x + 1);
        assert_eq!(out[63], 64);
    }
}
