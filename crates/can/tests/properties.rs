//! Property-based tests for the CAN substrate.

use dpr_can::{CanBus, CanFrame, CanId, Micros};
use proptest::prelude::*;

fn arb_standard_id() -> impl Strategy<Value = CanId> {
    (0u16..=0x7FF).prop_map(|v| CanId::standard(v).expect("in range"))
}

fn arb_extended_id() -> impl Strategy<Value = CanId> {
    (0u32..=0x1FFF_FFFF).prop_map(|v| CanId::extended(v).expect("in range"))
}

fn arb_id() -> impl Strategy<Value = CanId> {
    prop_oneof![arb_standard_id(), arb_extended_id()]
}

fn arb_payload() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..=8)
}

proptest! {
    /// Arbitration is a strict total order: exactly one of `a beats b`,
    /// `b beats a`, or `a == b` holds.
    #[test]
    fn arbitration_is_total_and_antisymmetric(a in arb_id(), b in arb_id()) {
        let ab = a.priority_beats(b);
        let ba = b.priority_beats(a);
        if a == b {
            prop_assert!(!ab && !ba);
        } else {
            prop_assert!(ab ^ ba, "exactly one of {a}/{b} must win");
        }
    }

    /// Arbitration is transitive, so a set of contenders always has a
    /// unique winner.
    #[test]
    fn arbitration_is_transitive(a in arb_id(), b in arb_id(), c in arb_id()) {
        if a.priority_beats(b) && b.priority_beats(c) {
            prop_assert!(a.priority_beats(c));
        }
    }

    /// Any payload of at most 8 bytes round-trips through a frame.
    #[test]
    fn frame_preserves_payload(id in arb_id(), data in arb_payload()) {
        let frame = CanFrame::new(id, &data).expect("payload within limit");
        prop_assert_eq!(frame.data(), data.as_slice());
        prop_assert_eq!(frame.id(), id);
        prop_assert_eq!(frame.dlc(), data.len());
    }

    /// The bus delivers every scheduled frame exactly once, in
    /// nondecreasing timestamp order, regardless of scheduling order.
    #[test]
    fn bus_delivers_everything_in_time_order(
        frames in proptest::collection::vec((arb_id(), arb_payload(), 0u64..1_000_000), 1..40)
    ) {
        let mut bus = CanBus::new();
        let sender = bus.attach("sender");
        let receiver = bus.attach("receiver");
        for (id, data, at) in &frames {
            bus.transmit(sender, CanFrame::new(*id, data).unwrap(), Micros::from_micros(*at));
        }
        bus.run_to_idle();

        let delivered = bus.take_inbox(receiver);
        prop_assert_eq!(delivered.len(), frames.len());
        prop_assert_eq!(bus.log().len(), frames.len());
        for pair in delivered.windows(2) {
            prop_assert!(pair[0].at <= pair[1].at);
        }
        // Frames never complete before both their ready time and their wire
        // time have elapsed.
        for entry in &delivered {
            prop_assert!(entry.at > Micros::ZERO);
        }
    }
}
