//! Deterministic CAN bus simulation with priority arbitration.

use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::{BusLog, CanFrame, Micros, TimestampedFrame};

/// Default simulated bit rate: 500 kbit/s, the usual rate of the diagnostic
/// CAN bus behind the OBD port.
const DEFAULT_BITRATE: u32 = 500_000;

/// Handle identifying a node attached to a [`CanBus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeHandle(usize);

#[derive(Debug)]
struct Node {
    name: String,
    inbox: Vec<TimestampedFrame>,
}

#[derive(Debug)]
struct Pending {
    ready_at: Micros,
    seq: u64,
    from: NodeHandle,
    frame: CanFrame,
}

/// A deterministic simulation of a single CAN bus segment.
///
/// Nodes [`attach`](CanBus::attach) to the bus and
/// [`transmit`](CanBus::transmit) frames that become ready at a given logical
/// time. Each [`step`](CanBus::step) resolves one arbitration round: among
/// all frames ready when the bus goes idle, the highest-priority identifier
/// wins (ties broken by submission order), occupies the bus for its wire
/// time, and is then delivered to every other node, appended to the
/// [`BusLog`], and forwarded to any [`SnifferTap`]s.
///
/// The simulation is single-threaded and fully deterministic; wrap the bus in
/// a [`SharedBus`] when multiple threads need access.
#[derive(Debug)]
pub struct CanBus {
    nodes: Vec<Node>,
    pending: Vec<Pending>,
    log: BusLog,
    busy_until: Micros,
    bitrate: u32,
    seq: u64,
    taps: Vec<Sender<TimestampedFrame>>,
}

impl Default for CanBus {
    fn default() -> Self {
        Self::new()
    }
}

impl CanBus {
    /// Creates an idle bus at 500 kbit/s.
    pub fn new() -> Self {
        Self::with_bitrate(DEFAULT_BITRATE)
    }

    /// Creates an idle bus with a custom bit rate.
    ///
    /// # Panics
    ///
    /// Panics if `bitrate` is zero.
    pub fn with_bitrate(bitrate: u32) -> Self {
        assert!(bitrate > 0, "bit rate must be positive");
        CanBus {
            nodes: Vec::new(),
            pending: Vec::new(),
            log: BusLog::new(),
            busy_until: Micros::ZERO,
            bitrate,
            seq: 0,
            taps: Vec::new(),
        }
    }

    /// Attaches a named node and returns its handle.
    pub fn attach(&mut self, name: impl Into<String>) -> NodeHandle {
        self.nodes.push(Node {
            name: name.into(),
            inbox: Vec::new(),
        });
        NodeHandle(self.nodes.len() - 1)
    }

    /// The display name of an attached node.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to this bus.
    pub fn node_name(&self, node: NodeHandle) -> &str {
        &self.nodes[node.0].name
    }

    /// Schedules `frame` from `node`, becoming ready at logical `ready_at`.
    ///
    /// The frame contends for the bus from `max(ready_at, bus idle time)`.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to this bus.
    pub fn transmit(&mut self, node: NodeHandle, frame: CanFrame, ready_at: Micros) {
        assert!(node.0 < self.nodes.len(), "unknown node handle");
        self.pending.push(Pending {
            ready_at,
            seq: self.seq,
            from: node,
            frame,
        });
        self.seq += 1;
    }

    /// Resolves one arbitration round. Returns the delivered frame, or
    /// `None` when nothing is pending.
    pub fn step(&mut self) -> Option<TimestampedFrame> {
        if self.pending.is_empty() {
            return None;
        }
        // The bus goes idle at busy_until; the next contention window starts
        // at the earliest ready time not before that.
        let earliest = self
            .pending
            .iter()
            .map(|p| p.ready_at)
            .min()
            .expect("pending is non-empty");
        let window = earliest.max(self.busy_until);

        // All frames ready by the window start contend; highest priority id
        // wins, ties broken by submission order (deterministic).
        let winner_idx = self
            .pending
            .iter()
            .enumerate()
            .filter(|(_, p)| p.ready_at <= window)
            .min_by(|(_, a), (_, b)| {
                if a.frame.id() == b.frame.id() {
                    a.seq.cmp(&b.seq)
                } else if a.frame.id().priority_beats(b.frame.id()) {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Greater
                }
            })
            .map(|(i, _)| i)
            .expect("at least the earliest frame is ready");

        let Pending { from, frame, .. } = self.pending.swap_remove(winner_idx);
        let tx_time = Micros::from_micros(
            (u64::from(frame.wire_bits()) * 1_000_000).div_ceil(u64::from(self.bitrate)),
        );
        let done = window + tx_time;
        self.busy_until = done;

        let entry = TimestampedFrame { at: done, frame };
        self.log.record(done, entry.frame.clone());
        for (i, node) in self.nodes.iter_mut().enumerate() {
            if i != from.0 {
                node.inbox.push(entry.clone());
            }
        }
        let taps_before = self.taps.len();
        self.taps.retain(|tap| tap.send(entry.clone()).is_ok());
        dpr_telemetry::counter("can.frames_delivered").inc(1);
        let dropped = (taps_before - self.taps.len()) as u64;
        if dropped > 0 {
            dpr_telemetry::counter("can.tap_drops").inc(dropped);
        }
        Some(entry)
    }

    /// Steps until no frame completes at or before `deadline`. Frames that
    /// would finish after the deadline stay pending.
    pub fn run_until(&mut self, deadline: Micros) {
        loop {
            let Some(next_ready) = self.pending.iter().map(|p| p.ready_at).min() else {
                return;
            };
            // A conservative pre-check: if even the bare start time is past
            // the deadline, stop. (Completion may still overshoot; that is
            // fine — time advances monotonically.)
            if next_ready.max(self.busy_until) > deadline {
                return;
            }
            self.step();
        }
    }

    /// Drains every pending frame.
    pub fn run_to_idle(&mut self) {
        while self.step().is_some() {}
    }

    /// Current bus time (when the last transmission completed).
    pub fn now(&self) -> Micros {
        self.busy_until
    }

    /// Advances idle time to `t` (no-op if the bus is already past `t`).
    /// Simulations use this to model waiting periods with no traffic.
    pub fn advance_to(&mut self, t: Micros) {
        self.busy_until = self.busy_until.max(t);
    }

    /// Number of frames waiting for arbitration.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Takes (and clears) everything delivered to `node` so far.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to this bus.
    pub fn take_inbox(&mut self, node: NodeHandle) -> Vec<TimestampedFrame> {
        std::mem::take(&mut self.nodes[node.0].inbox)
    }

    /// The complete sniffer capture.
    pub fn log(&self) -> &BusLog {
        &self.log
    }

    /// Consumes the bus, returning the capture.
    pub fn into_log(self) -> BusLog {
        self.log
    }

    /// Registers a live tap that receives every subsequent frame.
    pub fn tap(&mut self) -> SnifferTap {
        let (tx, rx) = unbounded();
        self.taps.push(tx);
        SnifferTap { rx }
    }
}

/// A live subscription to bus traffic, as used by the paper's OBD-port
/// sniffer. Dropping the tap detaches it.
#[derive(Debug)]
pub struct SnifferTap {
    rx: Receiver<TimestampedFrame>,
}

impl SnifferTap {
    /// Returns the next captured frame if one is immediately available.
    pub fn try_next(&self) -> Option<TimestampedFrame> {
        self.rx.try_recv().ok()
    }

    /// Drains everything captured so far.
    pub fn drain(&self) -> Vec<TimestampedFrame> {
        let mut out = Vec::new();
        while let Some(f) = self.try_next() {
            out.push(f);
        }
        out
    }
}

/// A thread-safe handle to a bus, for simulations that drive the tool and
/// the vehicle from different threads.
pub type SharedBus = Arc<Mutex<CanBus>>;

/// Convenience constructor for a [`SharedBus`].
pub fn shared_bus() -> SharedBus {
    Arc::new(Mutex::new(CanBus::new()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CanId;

    fn frame(id: u16, data: &[u8]) -> CanFrame {
        CanFrame::new(CanId::standard(id).unwrap(), data).unwrap()
    }

    #[test]
    fn delivers_to_all_other_nodes() {
        let mut bus = CanBus::new();
        let a = bus.attach("a");
        let b = bus.attach("b");
        let c = bus.attach("c");
        bus.transmit(a, frame(0x100, &[1]), Micros::ZERO);
        bus.step();
        assert!(bus.take_inbox(a).is_empty());
        assert_eq!(bus.take_inbox(b).len(), 1);
        assert_eq!(bus.take_inbox(c).len(), 1);
    }

    #[test]
    fn arbitration_prefers_lower_id() {
        let mut bus = CanBus::new();
        let a = bus.attach("a");
        let b = bus.attach("b");
        // Both ready at t=0: the lower id must win even though it was
        // submitted second.
        bus.transmit(a, frame(0x200, &[1]), Micros::ZERO);
        bus.transmit(b, frame(0x100, &[2]), Micros::ZERO);
        let first = bus.step().unwrap();
        assert_eq!(first.frame.id(), CanId::standard(0x100).unwrap());
        let second = bus.step().unwrap();
        assert_eq!(second.frame.id(), CanId::standard(0x200).unwrap());
        assert!(second.at > first.at);
    }

    #[test]
    fn equal_ids_resolve_by_submission_order() {
        let mut bus = CanBus::new();
        let a = bus.attach("a");
        bus.transmit(a, frame(0x100, &[1]), Micros::ZERO);
        bus.transmit(a, frame(0x100, &[2]), Micros::ZERO);
        assert_eq!(bus.step().unwrap().frame.data(), &[1]);
        assert_eq!(bus.step().unwrap().frame.data(), &[2]);
    }

    #[test]
    fn frame_not_ready_waits() {
        let mut bus = CanBus::new();
        let a = bus.attach("a");
        bus.transmit(a, frame(0x300, &[1]), Micros::from_millis(10));
        bus.transmit(a, frame(0x100, &[2]), Micros::from_millis(20));
        // Even though 0x100 has higher priority it is not ready in the first
        // window, so 0x300 goes first.
        assert_eq!(bus.step().unwrap().frame.data(), &[1]);
    }

    #[test]
    fn log_records_everything_in_order() {
        let mut bus = CanBus::new();
        let a = bus.attach("a");
        for i in 0..5u8 {
            bus.transmit(a, frame(0x100 + u16::from(i), &[i]), Micros::ZERO);
        }
        bus.run_to_idle();
        assert_eq!(bus.log().len(), 5);
        let times: Vec<_> = bus.log().iter().map(|e| e.at).collect();
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(times, sorted);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut bus = CanBus::new();
        let a = bus.attach("a");
        bus.transmit(a, frame(0x100, &[1]), Micros::ZERO);
        bus.transmit(a, frame(0x101, &[2]), Micros::from_secs(10));
        bus.run_until(Micros::from_secs(1));
        assert_eq!(bus.log().len(), 1);
        assert_eq!(bus.pending_len(), 1);
    }

    #[test]
    fn tap_sees_traffic() {
        let mut bus = CanBus::new();
        let a = bus.attach("a");
        let tap = bus.tap();
        bus.transmit(a, frame(0x100, &[7]), Micros::ZERO);
        bus.run_to_idle();
        let captured = tap.drain();
        assert_eq!(captured.len(), 1);
        assert_eq!(captured[0].frame.data(), &[7]);
        assert!(tap.try_next().is_none());
    }

    #[test]
    fn transmission_advances_time_by_wire_bits() {
        let mut bus = CanBus::with_bitrate(500_000);
        let a = bus.attach("a");
        let f = frame(0x100, &[0; 8]);
        let expected_us = (u64::from(f.wire_bits()) * 1_000_000).div_ceil(500_000);
        bus.transmit(a, f, Micros::ZERO);
        let done = bus.step().unwrap();
        assert_eq!(done.at.as_micros(), expected_us);
    }

    #[test]
    fn shared_bus_is_send() {
        fn assert_send<T: Send>(_: &T) {}
        let bus = shared_bus();
        assert_send(&bus);
        let mut guard = bus.lock();
        let a = guard.attach("a");
        guard.transmit(a, frame(0x1, &[0]), Micros::ZERO);
        guard.run_to_idle();
        assert_eq!(guard.log().len(), 1);
    }
}
