//! The timestamped bus log — the "sniffer" view of the OBD port.

use serde::{Deserialize, Serialize};

use crate::{CanFrame, CanId, Micros};

/// A frame together with the logical time at which it won arbitration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimestampedFrame {
    /// Logical bus time at which the frame completed transmission.
    pub at: Micros,
    /// The transmitted frame.
    pub frame: CanFrame,
}

/// An append-only record of every frame that crossed the bus.
///
/// In the paper the analysis pipeline works entirely from the CAN capture
/// taken at the OBD port; `BusLog` is that capture. It supports the filtered
/// views the diagnostic-frames analysis needs (per-id extraction, time
/// slicing).
///
/// # Example
///
/// ```
/// use dpr_can::{BusLog, CanFrame, CanId, Micros, TimestampedFrame};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut log = BusLog::new();
/// log.record(Micros::from_millis(1), CanFrame::new(CanId::standard(0x7E0)?, &[0x01])?);
/// log.record(Micros::from_millis(2), CanFrame::new(CanId::standard(0x7E8)?, &[0x41])?);
/// assert_eq!(log.len(), 2);
/// assert_eq!(log.frames_with_id(CanId::standard(0x7E8)?).count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusLog {
    entries: Vec<TimestampedFrame>,
}

impl BusLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a frame observed at logical time `at`.
    ///
    /// Entries are expected in nondecreasing time order (the bus produces
    /// them that way); the log does not reorder.
    pub fn record(&mut self, at: Micros, frame: CanFrame) {
        self.entries.push(TimestampedFrame { at, frame });
    }

    /// Number of captured frames.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the capture is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over all captured frames in capture order.
    pub fn iter(&self) -> std::slice::Iter<'_, TimestampedFrame> {
        self.entries.iter()
    }

    /// Iterates over frames carrying the given identifier.
    pub fn frames_with_id(&self, id: CanId) -> impl Iterator<Item = &TimestampedFrame> {
        self.entries.iter().filter(move |e| e.frame.id() == id)
    }

    /// Returns the frames captured in the half-open window `[from, to)`.
    pub fn window(&self, from: Micros, to: Micros) -> impl Iterator<Item = &TimestampedFrame> {
        self.entries
            .iter()
            .filter(move |e| e.at >= from && e.at < to)
    }

    /// The distinct CAN identifiers seen, in first-seen order.
    pub fn distinct_ids(&self) -> Vec<CanId> {
        let mut seen = Vec::new();
        for e in &self.entries {
            if !seen.contains(&e.frame.id()) {
                seen.push(e.frame.id());
            }
        }
        seen
    }

    /// Merges another capture into this one, keeping global time order.
    pub fn merge(&mut self, other: BusLog) {
        self.entries.extend(other.entries);
        self.entries.sort_by_key(|e| e.at);
    }
}

impl<'a> IntoIterator for &'a BusLog {
    type Item = &'a TimestampedFrame;
    type IntoIter = std::slice::Iter<'a, TimestampedFrame>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

impl IntoIterator for BusLog {
    type Item = TimestampedFrame;
    type IntoIter = std::vec::IntoIter<TimestampedFrame>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl FromIterator<TimestampedFrame> for BusLog {
    fn from_iter<I: IntoIterator<Item = TimestampedFrame>>(iter: I) -> Self {
        BusLog {
            entries: iter.into_iter().collect(),
        }
    }
}

impl Extend<TimestampedFrame> for BusLog {
    fn extend<I: IntoIterator<Item = TimestampedFrame>>(&mut self, iter: I) {
        self.entries.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(id: u16, byte: u8) -> CanFrame {
        CanFrame::new(CanId::standard(id).unwrap(), &[byte]).unwrap()
    }

    #[test]
    fn records_and_filters_by_id() {
        let mut log = BusLog::new();
        log.record(Micros::from_micros(10), frame(0x7E0, 1));
        log.record(Micros::from_micros(20), frame(0x7E8, 2));
        log.record(Micros::from_micros(30), frame(0x7E0, 3));

        let req: Vec<_> = log
            .frames_with_id(CanId::standard(0x7E0).unwrap())
            .collect();
        assert_eq!(req.len(), 2);
        assert_eq!(req[1].frame.data(), &[3]);
    }

    #[test]
    fn window_is_half_open() {
        let mut log = BusLog::new();
        for t in [10u64, 20, 30, 40] {
            log.record(Micros::from_micros(t), frame(0x100, t as u8));
        }
        let w: Vec<_> = log
            .window(Micros::from_micros(20), Micros::from_micros(40))
            .collect();
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].at, Micros::from_micros(20));
        assert_eq!(w[1].at, Micros::from_micros(30));
    }

    #[test]
    fn distinct_ids_in_first_seen_order() {
        let mut log = BusLog::new();
        log.record(Micros::ZERO, frame(0x7E8, 0));
        log.record(Micros::ZERO, frame(0x7E0, 0));
        log.record(Micros::ZERO, frame(0x7E8, 1));
        assert_eq!(
            log.distinct_ids(),
            vec![
                CanId::standard(0x7E8).unwrap(),
                CanId::standard(0x7E0).unwrap()
            ]
        );
    }

    #[test]
    fn merge_restores_time_order() {
        let mut a = BusLog::new();
        a.record(Micros::from_micros(10), frame(1, 0));
        a.record(Micros::from_micros(30), frame(1, 1));
        let mut b = BusLog::new();
        b.record(Micros::from_micros(20), frame(2, 2));
        a.merge(b);
        let times: Vec<u64> = a.iter().map(|e| e.at.as_micros()).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn collects_from_iterator() {
        let log: BusLog = (0..5)
            .map(|i| TimestampedFrame {
                at: Micros::from_micros(i),
                frame: frame(0x10, i as u8),
            })
            .collect();
        assert_eq!(log.len(), 5);
    }
}
