//! CAN data frames.

use std::fmt;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::CanId;

/// Maximum number of data bytes a classic CAN 2.0 frame can carry.
pub const MAX_FRAME_DATA: usize = 8;

/// A classic CAN 2.0 data frame: an identifier plus 0–8 data bytes.
///
/// Frames are immutable once built; the payload is reference-counted
/// ([`Bytes`]) so the sniffer log and the receiving ECU can share it without
/// copying.
///
/// # Example
///
/// ```
/// use dpr_can::{CanFrame, CanId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let frame = CanFrame::new(CanId::standard(0x7E8)?, &[0x03, 0x41, 0x0C, 0x1F])?;
/// assert_eq!(frame.dlc(), 4);
/// assert_eq!(frame.data()[1], 0x41);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CanFrame {
    id: CanId,
    data: Bytes,
}

impl CanFrame {
    /// Creates a data frame, copying the payload.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::TooLong`] if `data` exceeds [`MAX_FRAME_DATA`]
    /// bytes.
    pub fn new(id: CanId, data: &[u8]) -> Result<Self, FrameError> {
        if data.len() > MAX_FRAME_DATA {
            return Err(FrameError::TooLong(data.len()));
        }
        Ok(CanFrame {
            id,
            data: Bytes::copy_from_slice(data),
        })
    }

    /// Creates a frame whose payload is padded with `pad` up to 8 bytes, the
    /// common practice for diagnostic frames ("classic CAN padding").
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::TooLong`] if `data` exceeds [`MAX_FRAME_DATA`]
    /// bytes before padding.
    pub fn new_padded(id: CanId, data: &[u8], pad: u8) -> Result<Self, FrameError> {
        if data.len() > MAX_FRAME_DATA {
            return Err(FrameError::TooLong(data.len()));
        }
        let mut buf = Vec::with_capacity(MAX_FRAME_DATA);
        buf.extend_from_slice(data);
        buf.resize(MAX_FRAME_DATA, pad);
        Ok(CanFrame {
            id,
            data: Bytes::from(buf),
        })
    }

    /// The frame identifier.
    pub fn id(&self) -> CanId {
        self.id
    }

    /// The data bytes.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// The data length code (number of payload bytes, 0–8).
    pub fn dlc(&self) -> usize {
        self.data.len()
    }

    /// Approximate on-wire bit count for a classic CAN frame (used by the
    /// bus model to advance time per transmission). Uses the worst-case
    /// stuffed-bit estimate for an 11-bit-id frame: `47 + 8·dlc` bits plus
    /// ~20% stuffing.
    pub fn wire_bits(&self) -> u32 {
        let base = if self.id.is_extended() { 67 } else { 47 };
        let raw = base + 8 * self.dlc() as u32;
        raw + raw / 5
    }
}

impl fmt::Display for CanFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.id, self.dlc())?;
        for b in self.data.iter() {
            write!(f, " {b:02X}")?;
        }
        Ok(())
    }
}

/// Error constructing a [`CanFrame`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The payload exceeds the classic-CAN 8-byte limit.
    TooLong(usize),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::TooLong(n) => {
                write!(f, "payload of {n} bytes exceeds the 8-byte CAN limit")
            }
        }
    }
}

impl std::error::Error for FrameError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn id() -> CanId {
        CanId::standard(0x7E0).unwrap()
    }

    #[test]
    fn rejects_oversized_payload() {
        let nine = [0u8; 9];
        assert_eq!(CanFrame::new(id(), &nine), Err(FrameError::TooLong(9)));
        assert_eq!(
            CanFrame::new_padded(id(), &nine, 0xAA),
            Err(FrameError::TooLong(9))
        );
    }

    #[test]
    fn accepts_empty_and_full_payloads() {
        assert_eq!(CanFrame::new(id(), &[]).unwrap().dlc(), 0);
        assert_eq!(CanFrame::new(id(), &[0u8; 8]).unwrap().dlc(), 8);
    }

    #[test]
    fn padding_fills_to_eight() {
        let f = CanFrame::new_padded(id(), &[0x02, 0x01, 0x0C], 0x55).unwrap();
        assert_eq!(f.data(), &[0x02, 0x01, 0x0C, 0x55, 0x55, 0x55, 0x55, 0x55]);
    }

    #[test]
    fn wire_bits_grow_with_dlc_and_id_width() {
        let short = CanFrame::new(id(), &[0]).unwrap();
        let long = CanFrame::new(id(), &[0; 8]).unwrap();
        assert!(long.wire_bits() > short.wire_bits());

        let ext = CanFrame::new(CanId::extended(0x18DAF110).unwrap(), &[0]).unwrap();
        assert!(ext.wire_bits() > short.wire_bits());
    }

    #[test]
    fn display_is_readable() {
        let f = CanFrame::new(id(), &[0x02, 0x01]).unwrap();
        assert_eq!(f.to_string(), "0x7E0 [2] 02 01");
    }
}
