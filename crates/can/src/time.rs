//! Logical simulation time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A logical timestamp (or duration) in microseconds.
///
/// The whole DP-Reverser simulation runs on logical time so experiments are
/// reproducible bit-for-bit. `Micros` is deliberately a thin newtype: it
/// supports ordering, addition, and saturating subtraction, which is all the
/// transport timers and the alignment machinery need.
///
/// # Example
///
/// ```
/// use dpr_can::Micros;
///
/// let t = Micros::from_millis(30) + Micros::from_micros(500);
/// assert_eq!(t.as_micros(), 30_500);
/// assert_eq!(t.as_millis_f64(), 30.5);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Micros(u64);

impl Micros {
    /// The zero timestamp — the instant the simulation starts.
    pub const ZERO: Micros = Micros(0);

    /// Creates a timestamp from a raw microsecond count.
    pub const fn from_micros(us: u64) -> Self {
        Micros(us)
    }

    /// Creates a timestamp from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Micros(ms * 1_000)
    }

    /// Creates a timestamp from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Micros(s * 1_000_000)
    }

    /// Creates a timestamp from fractional seconds, rounding to the nearest
    /// microsecond. Negative inputs saturate to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            Micros(0)
        } else {
            Micros((s * 1e6).round() as u64)
        }
    }

    /// Returns the raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the timestamp in milliseconds, truncating.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the timestamp in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the timestamp in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction: the result never underflows below zero.
    pub fn saturating_sub(self, rhs: Micros) -> Micros {
        Micros(self.0.saturating_sub(rhs.0))
    }

    /// Absolute difference between two timestamps.
    pub fn abs_diff(self, rhs: Micros) -> Micros {
        Micros(self.0.abs_diff(rhs.0))
    }

    /// Checked addition of a signed microsecond offset (used by the skewed
    /// clock model in `dpr-cps`). Returns `None` on under/overflow.
    pub fn checked_add_signed(self, offset_us: i64) -> Option<Micros> {
        self.0.checked_add_signed(offset_us).map(Micros)
    }
}

impl Add for Micros {
    type Output = Micros;

    fn add(self, rhs: Micros) -> Micros {
        Micros(self.0 + rhs.0)
    }
}

impl AddAssign for Micros {
    fn add_assign(&mut self, rhs: Micros) {
        self.0 += rhs.0;
    }
}

impl Sub for Micros {
    type Output = Micros;

    /// Panics on underflow in debug builds, consistent with integer
    /// subtraction; use [`Micros::saturating_sub`] for lenient subtraction.
    fn sub(self, rhs: Micros) -> Micros {
        Micros(self.0 - rhs.0)
    }
}

impl fmt::Display for Micros {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Micros::from_millis(3).as_micros(), 3_000);
        assert_eq!(Micros::from_secs(2).as_millis(), 2_000);
        assert_eq!(Micros::from_secs_f64(1.5).as_micros(), 1_500_000);
        assert_eq!(Micros::from_secs_f64(-4.0), Micros::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Micros::from_micros(100);
        let b = Micros::from_micros(40);
        assert_eq!(a + b, Micros::from_micros(140));
        assert_eq!(a - b, Micros::from_micros(60));
        assert_eq!(b.saturating_sub(a), Micros::ZERO);
        assert_eq!(a.abs_diff(b), Micros::from_micros(60));
        assert_eq!(b.abs_diff(a), Micros::from_micros(60));
    }

    #[test]
    fn signed_offsets() {
        let t = Micros::from_micros(500);
        assert_eq!(t.checked_add_signed(-200), Some(Micros::from_micros(300)));
        assert_eq!(t.checked_add_signed(-501), None);
        assert_eq!(t.checked_add_signed(1), Some(Micros::from_micros(501)));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(Micros::from_micros(12).to_string(), "12us");
        assert_eq!(Micros::from_micros(1_500).to_string(), "1.500ms");
        assert_eq!(Micros::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(Micros::from_millis(1) < Micros::from_millis(2));
        assert_eq!(
            Micros::from_millis(1).max(Micros::from_micros(999)),
            Micros::from_millis(1)
        );
    }
}
