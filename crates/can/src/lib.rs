//! CAN 2.0 frame model and deterministic bus simulation.
//!
//! This crate is the lowest substrate of the DP-Reverser reproduction: it
//! models the Controller Area Network data-link layer (ISO 11898) that every
//! diagnostic protocol in the paper rides on. The gateway, ECUs, diagnostic
//! tools, and the sniffer in the upper crates all exchange [`CanFrame`]s over
//! a [`CanBus`].
//!
//! The bus simulation is deterministic: time is a logical microsecond counter
//! ([`Micros`]), arbitration follows the CAN priority rule (numerically lower
//! identifier wins), and every transmitted frame is recorded in a timestamped
//! [`BusLog`] that plays the role of the OBD-port sniffer in the paper.
//!
//! # Example
//!
//! ```
//! use dpr_can::{CanBus, CanFrame, CanId, Micros};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut bus = CanBus::new();
//! let tester = bus.attach("tester");
//! let ecu = bus.attach("engine-ecu");
//!
//! let req = CanFrame::new(CanId::standard(0x7E0)?, &[0x02, 0x01, 0x0C])?;
//! bus.transmit(tester, req, Micros::from_millis(5));
//! bus.step();
//!
//! let delivered = bus.take_inbox(ecu);
//! assert_eq!(delivered.len(), 1);
//! assert_eq!(delivered[0].frame.data(), &[0x02, 0x01, 0x0C]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bus;
mod frame;
mod id;
mod log;
mod time;

pub use bus::{shared_bus, CanBus, NodeHandle, SharedBus, SnifferTap};
pub use frame::{CanFrame, FrameError, MAX_FRAME_DATA};
pub use id::{CanId, IdError};
pub use log::{BusLog, TimestampedFrame};
pub use time::Micros;
