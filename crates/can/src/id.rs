//! CAN identifiers.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Maximum value of an 11-bit standard (CAN 2.0A) identifier.
const MAX_STANDARD: u32 = 0x7FF;
/// Maximum value of a 29-bit extended (CAN 2.0B) identifier.
const MAX_EXTENDED: u32 = 0x1FFF_FFFF;

/// A validated CAN identifier, either 11-bit standard or 29-bit extended.
///
/// Per CAN 2.0 a numerically lower identifier has *higher* bus priority; the
/// [`CanId::priority_beats`] helper encodes the arbitration rule used by
/// [`crate::CanBus`]. During arbitration a standard frame beats an extended
/// frame with the same leading 11 bits because the standard frame's RTR/SRR
/// bit is dominant where the extended frame's IDE bit is recessive.
///
/// # Example
///
/// ```
/// use dpr_can::CanId;
///
/// # fn main() -> Result<(), dpr_can::IdError> {
/// let engine = CanId::standard(0x7E0)?;
/// let body = CanId::standard(0x740)?;
/// assert!(body.priority_beats(engine));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CanId {
    /// An 11-bit CAN 2.0A identifier.
    Standard(u16),
    /// A 29-bit CAN 2.0B identifier.
    Extended(u32),
}

impl CanId {
    /// Creates a standard 11-bit identifier.
    ///
    /// # Errors
    ///
    /// Returns [`IdError::StandardOutOfRange`] if `raw > 0x7FF`.
    pub fn standard(raw: u16) -> Result<Self, IdError> {
        if u32::from(raw) > MAX_STANDARD {
            Err(IdError::StandardOutOfRange(raw))
        } else {
            Ok(CanId::Standard(raw))
        }
    }

    /// Creates an extended 29-bit identifier.
    ///
    /// # Errors
    ///
    /// Returns [`IdError::ExtendedOutOfRange`] if `raw > 0x1FFF_FFFF`.
    pub fn extended(raw: u32) -> Result<Self, IdError> {
        if raw > MAX_EXTENDED {
            Err(IdError::ExtendedOutOfRange(raw))
        } else {
            Ok(CanId::Extended(raw))
        }
    }

    /// Returns the raw identifier bits.
    pub fn raw(self) -> u32 {
        match self {
            CanId::Standard(v) => u32::from(v),
            CanId::Extended(v) => v,
        }
    }

    /// Returns `true` for an extended (29-bit) identifier.
    pub fn is_extended(self) -> bool {
        matches!(self, CanId::Extended(_))
    }

    /// Returns `true` if `self` wins bus arbitration against `other`.
    ///
    /// Arbitration compares the identifier bits most-significant first with
    /// dominant-zero semantics; a standard frame beats an extended frame that
    /// shares its 11-bit prefix.
    pub fn priority_beats(self, other: CanId) -> bool {
        // Compare on the 11-bit base first (extended IDs transmit their top
        // 11 bits in the same arbitration slots as a standard ID).
        let base_self = self.base11();
        let base_other = other.base11();
        if base_self != base_other {
            return base_self < base_other;
        }
        match (self.is_extended(), other.is_extended()) {
            (false, true) => true,
            (true, false) => false,
            _ => self.raw() < other.raw(),
        }
    }

    /// The top 11 identifier bits as transmitted during arbitration.
    fn base11(self) -> u32 {
        match self {
            CanId::Standard(v) => u32::from(v),
            CanId::Extended(v) => v >> 18,
        }
    }
}

impl fmt::Display for CanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CanId::Standard(v) => write!(f, "0x{v:03X}"),
            CanId::Extended(v) => write!(f, "0x{v:08X}x"),
        }
    }
}

impl fmt::LowerHex for CanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.raw(), f)
    }
}

impl fmt::UpperHex for CanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.raw(), f)
    }
}

/// Error constructing a [`CanId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdError {
    /// The value does not fit in 11 bits.
    StandardOutOfRange(u16),
    /// The value does not fit in 29 bits.
    ExtendedOutOfRange(u32),
}

impl fmt::Display for IdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdError::StandardOutOfRange(v) => {
                write!(f, "standard CAN id 0x{v:X} exceeds 11 bits")
            }
            IdError::ExtendedOutOfRange(v) => {
                write!(f, "extended CAN id 0x{v:X} exceeds 29 bits")
            }
        }
    }
}

impl std::error::Error for IdError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_range_enforced() {
        assert!(CanId::standard(0x7FF).is_ok());
        assert_eq!(
            CanId::standard(0x800),
            Err(IdError::StandardOutOfRange(0x800))
        );
    }

    #[test]
    fn extended_range_enforced() {
        assert!(CanId::extended(0x1FFF_FFFF).is_ok());
        assert_eq!(
            CanId::extended(0x2000_0000),
            Err(IdError::ExtendedOutOfRange(0x2000_0000))
        );
    }

    #[test]
    fn lower_id_wins_arbitration() {
        let hi = CanId::standard(0x100).unwrap();
        let lo = CanId::standard(0x200).unwrap();
        assert!(hi.priority_beats(lo));
        assert!(!lo.priority_beats(hi));
    }

    #[test]
    fn standard_beats_extended_with_same_prefix() {
        let std_id = CanId::standard(0x123).unwrap();
        let ext_id = CanId::extended(0x123 << 18).unwrap();
        assert!(std_id.priority_beats(ext_id));
        assert!(!ext_id.priority_beats(std_id));
    }

    #[test]
    fn extended_arbitration_uses_full_width() {
        let a = CanId::extended((0x100 << 18) | 5).unwrap();
        let b = CanId::extended((0x100 << 18) | 9).unwrap();
        assert!(a.priority_beats(b));
    }

    #[test]
    fn display_formats() {
        assert_eq!(CanId::standard(0x7E0).unwrap().to_string(), "0x7E0");
        assert_eq!(
            CanId::extended(0x18DA_F110).unwrap().to_string(),
            "0x18DAF110x"
        );
        assert_eq!(format!("{:x}", CanId::standard(0x7E0).unwrap()), "7e0");
        assert_eq!(format!("{:X}", CanId::standard(0x7E0).unwrap()), "7E0");
    }

    #[test]
    fn id_never_beats_itself() {
        let id = CanId::standard(0x42).unwrap();
        assert!(!id.priority_beats(id));
    }
}
