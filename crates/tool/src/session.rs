//! Running a tool against a vehicle: the full closed loop.
//!
//! A [`ToolSession`] owns the bus, the attached vehicle, the tool, and one
//! transport endpoint per ECU. Clicks navigate the tool; while a
//! data-stream page is open, [`wait`](ToolSession::wait) makes the tool
//! poll the page over the bus the way a real device does. The session
//! produces the two artifacts the paper's data-collection module records:
//! the sniffed [`BusLog`] (the OBD-port capture) and the timestamped
//! [`UiFrame`]s (camera b's video).

use std::collections::BTreeMap;

use dpr_can::{BusLog, CanBus, Micros, NodeHandle};
use dpr_protocol::kwp::{KwpResponse, LocalId};
use dpr_protocol::obd;
use dpr_protocol::uds::{Did, UdsRequest, UdsResponse};
use dpr_transport::bmw::BmwRawEndpoint;
use dpr_transport::isotp::IsoTpEndpoint;
use dpr_transport::vwtp::VwTpEndpoint;
use dpr_transport::Endpoint;
use dpr_vehicle::ecu::{ComponentKey, TransportKind};
use dpr_vehicle::{run_exchange, SessionError};
use dpr_vehicle::{AttachedVehicle, Vehicle};

use crate::database::{StreamSource, VehicleDatabase};
use crate::profile::ToolProfile;
use crate::screen::{Screenshot, WidgetKind};
use crate::tool::{DiagnosticTool, ToolAction};

/// Maximum DIDs batched into one UDS read request (exercises the paper's
/// multi-DID response splitting). Two-DID batches produce the organic
/// single/multi frame mix of real UDS traffic: batches of one-byte records
/// fit a single frame, batches containing two-byte records spill into
/// first/consecutive frames.
const DID_BATCH: usize = 2;
/// The tester's address in the BMW raw scheme.
const TESTER_ADDRESS: u8 = 0xF1;

/// One frame of camera b's video: a timestamped screenshot.
#[derive(Debug, Clone, PartialEq)]
pub struct UiFrame {
    /// Capture time (logical).
    pub at: Micros,
    /// The rendered screen.
    pub screenshot: Screenshot,
}

/// A live diagnostic session: tool + vehicle + bus.
pub struct ToolSession {
    bus: CanBus,
    tool: DiagnosticTool,
    vehicle: AttachedVehicle,
    tester_node: NodeHandle,
    endpoints: BTreeMap<usize, Box<dyn Endpoint>>,
    frames: Vec<UiFrame>,
    /// Poll-round counter (alternates UDS batch sizes for a realistic
    /// single/multi frame mix).
    round: usize,
    /// Latency between a response arriving and the screen updating.
    pub display_latency: Micros,
}

impl std::fmt::Debug for ToolSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ToolSession")
            .field("tool", &self.tool.profile().name)
            .field("vehicle", &self.vehicle.name())
            .field("frames", &self.frames.len())
            .field("captured", &self.bus.log().len())
            .finish()
    }
}

impl ToolSession {
    /// Starts a session: builds the tool's database for the vehicle,
    /// attaches everything to a fresh bus.
    pub fn new(vehicle: Vehicle, profile: ToolProfile) -> Self {
        let db = VehicleDatabase::for_vehicle(&vehicle);
        Self::with_database(vehicle, profile, db)
    }

    /// Starts a session with an explicit database (e.g. the OBD app
    /// database for the Tab. 5 experiment).
    pub fn with_database(vehicle: Vehicle, profile: ToolProfile, db: VehicleDatabase) -> Self {
        let mut bus = CanBus::new();
        let tester_node = bus.attach(profile.name);
        let vehicle = vehicle.attach(&mut bus);
        ToolSession {
            bus,
            tool: DiagnosticTool::new(profile, db),
            vehicle,
            tester_node,
            endpoints: BTreeMap::new(),
            frames: Vec::new(),
            round: 0,
            display_latency: Micros::from_millis(30),
        }
    }

    /// The tool.
    pub fn tool(&self) -> &DiagnosticTool {
        &self.tool
    }

    /// Mutable tool access (scripted experiments jump menus directly).
    pub fn tool_mut(&mut self) -> &mut DiagnosticTool {
        &mut self.tool
    }

    /// The attached vehicle (ground truth access).
    pub fn vehicle(&self) -> &AttachedVehicle {
        &self.vehicle
    }

    /// Current logical time.
    pub fn now(&self) -> Micros {
        self.bus.now()
    }

    /// The sniffer capture so far.
    pub fn log(&self) -> &BusLog {
        self.bus.log()
    }

    /// Camera b's frames so far.
    pub fn frames(&self) -> &[UiFrame] {
        &self.frames
    }

    /// Renders the current screen (camera a's view).
    pub fn screenshot(&self) -> Screenshot {
        self.tool.render(self.bus.now())
    }

    /// Consumes the session, returning capture, video, and vehicle.
    pub fn into_artifacts(self) -> (BusLog, Vec<UiFrame>, AttachedVehicle) {
        (self.bus.into_log(), self.frames, self.vehicle)
    }

    fn record_frame(&mut self) {
        let shot = self.tool.render(self.bus.now());
        self.frames.push(UiFrame {
            at: shot.at,
            screenshot: shot,
        });
    }

    fn endpoint(&mut self, ecu: usize) -> &mut Box<dyn Endpoint> {
        let db_entry = &self.tool.database().ecus[ecu];
        let (request_id, response_id, transport, address) = (
            db_entry.request_id,
            db_entry.response_id,
            db_entry.transport,
            db_entry.address,
        );
        self.endpoints.entry(ecu).or_insert_with(|| match transport {
            TransportKind::IsoTp => Box::new(IsoTpEndpoint::new(request_id, response_id)),
            TransportKind::VwTp => {
                Box::new(VwTpEndpoint::initiator(request_id, response_id, address))
            }
            TransportKind::BmwRaw => Box::new(BmwRawEndpoint::new(
                request_id,
                response_id,
                address,
                TESTER_ADDRESS,
            )),
        })
    }

    /// Sends one application payload to an ECU and returns the (first)
    /// response payload.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn transact(&mut self, ecu: usize, payload: &[u8]) -> Result<Option<Vec<u8>>, SessionError> {
        let now = self.bus.now();
        {
            let ep = self.endpoint(ecu);
            ep.send(payload, now).map_err(SessionError::Transport)?;
        }
        // Split borrows: temporarily move the endpoint out.
        let mut ep = self.endpoints.remove(&ecu).expect("endpoint just created");
        let result = run_exchange(&mut self.bus, self.tester_node, ep.as_mut(), &mut self.vehicle);
        let response = ep.receive();
        self.endpoints.insert(ecu, ep);
        result?;
        Ok(response)
    }

    /// One poll round of the current data-stream page: requests every
    /// visible row, decodes responses, updates the display, records a
    /// frame.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn poll_current_page(&mut self) -> Result<(), SessionError> {
        let targets = self.tool.poll_targets();
        if targets.is_empty() {
            return Ok(());
        }
        let ecu = targets[0].0;
        // Group: UDS DIDs batched, KWP by block, OBD per PID.
        let mut uds_batch: Vec<(usize, Did)> = Vec::new();
        let mut kwp_blocks: Vec<LocalId> = Vec::new();
        let mut obd_pids: Vec<(usize, obd::Pid)> = Vec::new();
        for &(e, i) in &targets {
            debug_assert_eq!(e, ecu);
            match self.tool.database().ecus[ecu].streams[i].source {
                StreamSource::Uds(did) => uds_batch.push((i, did)),
                StreamSource::Kwp { local_id, .. } => {
                    if !kwp_blocks.contains(&local_id) {
                        kwp_blocks.push(local_id);
                    }
                }
                StreamSource::Obd(pid) => obd_pids.push((i, pid)),
            }
        }

        // Alternate batch sizes round to round, as real tools mix short
        // and combined reads.
        self.round += 1;
        let batch = if self.round.is_multiple_of(2) { DID_BATCH + 1 } else { DID_BATCH };
        for chunk in uds_batch.chunks(batch) {
            let dids: Vec<Did> = chunk.iter().map(|&(_, d)| d).collect();
            let request = UdsRequest::ReadDataById { dids: dids.clone() }.encode();
            let Some(payload) = self.transact(ecu, &request)? else {
                continue;
            };
            let Ok(UdsResponse::ReadDataById { records }) = UdsResponse::parse(&payload, &dids)
            else {
                continue;
            };
            let shown_at = self.bus.now() + self.display_latency;
            for ((stream_idx, _), (_, data)) in chunk.iter().zip(&records) {
                let formula = self.tool.database().ecus[ecu].streams[*stream_idx].formula;
                let x0 = f64::from(data[0]);
                let x1 = data.get(1).copied().map_or(0.0, f64::from);
                self.tool
                    .set_displayed(ecu, *stream_idx, formula.eval(x0, x1), shown_at);
            }
        }

        for local_id in kwp_blocks {
            let request = dpr_protocol::kwp::KwpRequest::ReadDataByLocalId { local_id }.encode();
            let Some(payload) = self.transact(ecu, &request)? else {
                continue;
            };
            let Ok(KwpResponse::ReadDataByLocalId { local_id: echoed, esvs }) =
                KwpResponse::parse(&payload)
            else {
                continue;
            };
            let shown_at = self.bus.now() + self.display_latency;
            // Update every stream of this ECU bound to a slot of the block
            // (the block response carries all slots).
            let updates: Vec<(usize, f64)> = self.tool.database().ecus[ecu]
                .streams
                .iter()
                .enumerate()
                .filter_map(|(idx, s)| match s.source {
                    StreamSource::Kwp { local_id: lid, slot } if lid == echoed => esvs
                        .get(slot)
                        .map(|esv| {
                            (idx, s.formula.eval(f64::from(esv.x0), f64::from(esv.x1)))
                        }),
                    _ => None,
                })
                .collect();
            for (idx, value) in updates {
                self.tool.set_displayed(ecu, idx, value, shown_at);
            }
        }

        for (stream_idx, pid) in obd_pids {
            let request = obd::encode_request(pid);
            let Some(payload) = self.transact(ecu, &request)? else {
                continue;
            };
            let Ok((_, data)) = obd::parse_response(&payload) else {
                continue;
            };
            let shown_at = self.bus.now() + self.display_latency;
            let formula = self.tool.database().ecus[ecu].streams[stream_idx].formula;
            let x0 = f64::from(data[0]);
            let x1 = data.get(1).copied().map_or(0.0, f64::from);
            self.tool
                .set_displayed(ecu, stream_idx, formula.eval(x0, x1), shown_at);
        }
        Ok(())
    }

    /// Lets the session run for `duration`: a data-stream page is polled
    /// at the tool's refresh interval; other screens just idle. Records a
    /// frame per poll round.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn wait(&mut self, duration: Micros) -> Result<(), SessionError> {
        let deadline = self.bus.now() + duration;
        let interval = Micros::from_millis(self.tool.profile().poll_interval_ms);
        loop {
            let round_start = self.bus.now();
            if round_start >= deadline {
                return Ok(());
            }
            if self.tool.poll_targets().is_empty() {
                self.bus.advance_to(deadline);
                self.record_frame();
                return Ok(());
            }
            self.poll_current_page()?;
            // The display updates shortly after the traffic settles.
            self.bus.advance_to(self.bus.now() + self.display_latency);
            self.record_frame();
            self.bus.advance_to(round_start + interval);
        }
    }

    /// Clicks the screen at `(x, y)`, executing any resulting action
    /// (active tests run their full three-message procedure).
    ///
    /// # Errors
    ///
    /// Propagates transport errors from an executed action.
    pub fn click(&mut self, x: usize, y: usize) -> Result<(), SessionError> {
        let now = self.bus.now();
        let action = self.tool.click(x, y, now);
        self.record_frame();
        match action {
            Some(ToolAction::RunTest { ecu, test }) => self.run_test(ecu, test)?,
            Some(ToolAction::ReadDtcs { ecu }) => {
                if let Some(payload) = self.transact(ecu, &[0x19, 0x02, 0xFF])? {
                    if let Ok(UdsResponse::DtcReport { dtcs }) =
                        UdsResponse::parse(&payload, &[])
                    {
                        self.tool.set_dtcs(ecu, &dtcs);
                        self.record_frame();
                    }
                }
            }
            Some(ToolAction::ClearDtcs { ecu }) => {
                self.transact(ecu, &[0x14, 0xFF, 0xFF, 0xFF])?;
            }
            None => {}
        }
        Ok(())
    }

    /// Convenience for tests and scripted experiments: clicks the button
    /// with the given text.
    ///
    /// # Errors
    ///
    /// Returns an error if the button is not on screen, and propagates
    /// transport errors.
    pub fn click_button(&mut self, text: &str) -> Result<(), SessionError> {
        let shot = self.screenshot();
        let widget = shot
            .widgets_of(WidgetKind::Button)
            .find(|w| w.text == text)
            .cloned();
        match widget {
            Some(w) => {
                let (x, y) = w.center();
                self.click(x, y)
            }
            None => Err(SessionError::Transport(
                dpr_transport::TransportError::MalformedFrame(format!(
                    "no button labelled {text:?} on the current screen"
                )),
            )),
        }
    }

    /// Performs the SecurityAccess handshake with the tool's embedded
    /// seed-key secret (level 0x01/0x02).
    fn unlock(&mut self, ecu: usize, secret: u16) -> Result<(), SessionError> {
        let Some(seed_rsp) = self.transact(ecu, &[0x27, 0x01])? else {
            return Ok(());
        };
        if seed_rsp.len() >= 4 && seed_rsp[0] == 0x67 {
            let seed = [seed_rsp[2], seed_rsp[3]];
            let key = (u16::from_be_bytes(seed) ^ secret).to_be_bytes();
            self.transact(ecu, &[0x27, 0x02, key[0], key[1]])?;
        }
        Ok(())
    }

    /// Runs one active test: the paper's three-message procedure with
    /// pauses between the messages.
    fn run_test(&mut self, ecu: usize, test: usize) -> Result<(), SessionError> {
        let entry = self.tool.database().ecus[ecu].tests[test].clone();
        if entry.secured {
            if let Some(secret) = self.tool.database().ecus[ecu].security_secret {
                self.unlock(ecu, secret)?;
            }
        }
        let messages: Vec<Vec<u8>> = match entry.key {
            ComponentKey::UdsDid(did) => {
                dpr_protocol::uds::io_control_procedure(did, entry.control_state.clone())
                    .iter()
                    .map(|r| r.encode())
                    .collect()
            }
            ComponentKey::KwpLocal(local_id) => {
                let mut adjust = vec![0x03];
                adjust.extend_from_slice(&entry.control_state);
                vec![
                    vec![0x30, local_id.0, 0x02],
                    {
                        let mut m = vec![0x30, local_id.0];
                        m.extend_from_slice(&adjust);
                        m
                    },
                    vec![0x30, local_id.0, 0x00],
                ]
            }
            ComponentKey::KwpCommon(common_id) => {
                let [hi, lo] = common_id.to_be_bytes();
                let mut adjust = vec![0x2F, hi, lo, 0x03];
                adjust.extend_from_slice(&entry.control_state);
                vec![
                    vec![0x2F, hi, lo, 0x02],
                    adjust,
                    vec![0x2F, hi, lo, 0x00],
                ]
            }
        };
        for message in messages {
            self.transact(ecu, &message)?;
            let next = self.bus.now() + Micros::from_millis(300);
            self.bus.advance_to(next);
            self.record_frame();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpr_vehicle::profiles::{self, CarId};

    fn session(id: CarId) -> ToolSession {
        let spec = profiles::spec(id);
        let car = profiles::build(id, 11);
        let profile = ToolProfile::by_name(spec.tool).expect("Tab. 3 tool exists");
        ToolSession::new(car, profile)
    }

    #[test]
    fn data_stream_polling_displays_values_and_captures_traffic() {
        let mut s = session(CarId::A);
        s.tool_mut().goto_data_stream(0, 0);
        s.wait(Micros::from_secs(3)).unwrap();
        // Values appeared on screen…
        let displayed = s.tool().displayed_text(0, 0);
        assert!(displayed.is_some_and(|t| t != "---"), "{displayed:?}");
        // …traffic was captured…
        assert!(s.log().len() > 10, "only {} frames captured", s.log().len());
        // …and camera b recorded frames.
        assert!(s.frames().len() >= 5);
    }

    #[test]
    fn kwp_car_polls_measuring_blocks() {
        let mut s = session(CarId::B);
        s.tool_mut().goto_data_stream(0, 0);
        s.wait(Micros::from_secs(3)).unwrap();
        let displayed = s.tool().displayed_text(0, 0);
        assert!(displayed.is_some_and(|t| t != "---"), "{displayed:?}");
    }

    #[test]
    fn bmw_raw_car_polls() {
        let mut s = session(CarId::G);
        s.tool_mut().goto_data_stream(0, 0);
        s.wait(Micros::from_secs(3)).unwrap();
        let displayed = s.tool().displayed_text(0, 0);
        assert!(displayed.is_some_and(|t| t != "---"), "{displayed:?}");
    }

    #[test]
    fn displayed_value_matches_ground_truth_through_formula() {
        let mut s = session(CarId::L);
        s.tool_mut().goto_data_stream(0, 0);
        s.wait(Micros::from_secs(2)).unwrap();
        // Row 0 on the engine ECU of Car L is the pinned coolant signal
        // with Y = 0.5·X; the displayed value must be within quantization
        // of the true sensor value at display time.
        let text = s.tool().displayed_text(0, 0).unwrap();
        let shown: f64 = text.parse().unwrap();
        let truth_now = {
            let id = s.tool().database().ecus[0].streams[0]
                .source
                .esv_id()
                .unwrap();
            s.vehicle().true_value(id, s.now()).unwrap()
        };
        assert!(
            (shown - truth_now).abs() < 3.0,
            "shown {shown} vs truth {truth_now}"
        );
    }

    #[test]
    fn active_test_drives_component_over_the_bus() {
        let mut s = session(CarId::A);
        let ecu_idx = s
            .tool()
            .database()
            .ecus
            .iter()
            .position(|e| !e.tests.is_empty())
            .unwrap();
        s.tool_mut().goto_active_test(ecu_idx);
        let label = s.tool().database().ecus[ecu_idx].tests[0].label.clone();
        let key = s.tool().database().ecus[ecu_idx].tests[0].key;
        s.click_button(&label).unwrap();

        // The component on the simulated vehicle actually moved.
        let adjusted = s
            .vehicle()
            .ecus()
            .filter_map(|e| e.component(key))
            .any(|c| c.was_adjusted());
        assert!(adjusted, "component should have been adjusted");
        // The capture contains the three-message pattern (2F xx xx 02/03/00).
        assert!(s.log().len() >= 6);
    }

    #[test]
    fn navigation_by_clicks_end_to_end() {
        let mut s = session(CarId::A);
        s.click_button("Engine").unwrap();
        s.click_button("Read Data Stream").unwrap();
        s.wait(Micros::from_secs(1)).unwrap();
        assert!(!s.log().is_empty());
        s.click_button("[Back]").unwrap();
        s.click_button("[Back]").unwrap();
        let shot = s.screenshot();
        assert!(shot
            .widgets_of(WidgetKind::Title)
            .any(|w| w.text.contains("Select System")));
    }

    #[test]
    fn obd_app_session_reads_pids() {
        use crate::database::obd_database;
        let car = profiles::build(CarId::L, 4);
        let (req, rsp) = car.obd_ids().expect("profile cars expose OBD-II");
        let db = obd_database("Simulator", req, rsp);
        let mut s = ToolSession::with_database(car, ToolProfile::chevrosys_app(), db);
        s.tool_mut().goto_data_stream(0, 0);
        s.wait(Micros::from_secs(3)).unwrap();
        for i in 0..7 {
            let text = s.tool().displayed_text(0, i);
            assert!(text.is_some_and(|t| t != "---"), "PID row {i}: {text:?}");
        }
    }

    #[test]
    fn dtc_read_flow_shows_codes() {
        let mut s = session(CarId::P);
        s.click_button("Engine").unwrap();
        s.click_button("Read Trouble Codes").unwrap();
        // Car P's engine ECU may or may not host a DTC; either the codes
        // or the empty notice must render, and if codes exist they follow
        // the P-code format.
        let shown = s.tool().dtcs_shown(0).map(|v| v.to_vec()).unwrap_or_default();
        let expected = s
            .vehicle()
            .ecus()
            .next()
            .map(|e| e.dtcs().len())
            .unwrap_or(0);
        assert_eq!(shown.len(), expected);
        for code in &shown {
            assert!(code.starts_with('P'), "{code}");
        }
        // The screen reflects the read.
        let shot = s.screenshot();
        assert!(shot
            .widgets_of(WidgetKind::Title)
            .any(|w| w.text.contains("Trouble Codes")));
    }

    #[test]
    fn clear_button_actually_clears() {
        let mut s = session(CarId::P);
        // Find an ECU with stored DTCs.
        let Some(idx) = s
            .vehicle()
            .ecus()
            .position(|e| !e.dtcs().is_empty())
        else {
            panic!("profile cars store at least one DTC");
        };
        let name = s.tool().database().ecus[idx].name.clone();
        s.click_button(&name).unwrap();
        s.click_button("Clear Trouble Codes").unwrap();
        let remaining = s
            .vehicle()
            .ecus()
            .nth(idx)
            .map(|e| e.dtcs().len())
            .unwrap();
        assert_eq!(remaining, 0, "clear must wipe the codes");
    }

    #[test]
    fn missing_button_is_an_error() {
        let mut s = session(CarId::A);
        assert!(s.click_button("No Such Button").is_err());
    }
}
