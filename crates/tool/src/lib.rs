//! Diagnostic tool simulator — the black box DP-Reverser observes.
//!
//! A professional diagnostic tool (AUTEL 919, LAUNCH X431, VCDS,
//! Techstream) ships the manufacturer's proprietary tables and exposes them
//! only through two surfaces: its **screen** and its **bus traffic**. This
//! crate reproduces exactly those two surfaces:
//!
//! * [`database`] — the tool's embedded knowledge of a vehicle (which
//!   ECUs exist, which identifiers read which labelled signal through
//!   which formula, which active tests are available). Built from the
//!   simulated vehicle's ground truth, mirroring how real tools embed
//!   manufacturer databases.
//! * [`screen`] — a textual screen model: widgets with text and pixel
//!   rectangles, rendered per tool profile (screen geometry differs
//!   between AUTEL and LAUNCH, which is what drives their different OCR
//!   precision in the paper's Tab. 4).
//! * [`tool`] — the menu state machine: ECU list → function menu →
//!   data-stream page (polls ESVs over the bus and displays decoded
//!   values) or active-test page (runs the three-message IO-control
//!   procedure).
//! * [`session`] — glue that runs a tool against an attached vehicle on a
//!   shared bus, producing the two artifacts the pipeline consumes: the
//!   sniffed [`BusLog`](dpr_can::BusLog) and the timestamped UI frames.
//!
//! The "ChevroSys Scan Free"-style telematics app of the paper's Tab. 5
//! experiment is modelled as one more profile whose database contains
//! OBD-II pages ([`database::obd_database`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod database;
pub mod profile;
pub mod screen;
pub mod session;
pub mod tool;

pub use database::{EcuEntry, StreamEntry, TestEntry, VehicleDatabase};
pub use profile::ToolProfile;
pub use screen::{Screenshot, Widget, WidgetKind};
pub use session::{ToolSession, UiFrame};
pub use tool::DiagnosticTool;
