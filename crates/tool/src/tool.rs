//! The tool's menu state machine and screen renderer.

use std::collections::BTreeMap;

use dpr_can::Micros;
use serde::{Deserialize, Serialize};


use crate::database::VehicleDatabase;
use crate::profile::ToolProfile;
use crate::screen::{Screenshot, WidgetKind};

/// Where the tool's UI currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScreenState {
    /// The ECU selection list.
    EcuList,
    /// The per-ECU function menu.
    FunctionMenu {
        /// Selected ECU index.
        ecu: usize,
    },
    /// A live data-stream page.
    DataStream {
        /// Selected ECU index.
        ecu: usize,
        /// Page number (0-based).
        page: usize,
    },
    /// The active-test page.
    ActiveTest {
        /// Selected ECU index.
        ecu: usize,
        /// Page number (0-based).
        page: usize,
    },
    /// The trouble-code view.
    DtcView {
        /// Selected ECU index.
        ecu: usize,
    },
}

/// A side effect requested by a click (executed by the session).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ToolAction {
    /// Run the three-message IO-control procedure for a test row.
    RunTest {
        /// ECU index in the database.
        ecu: usize,
        /// Test index within the ECU.
        test: usize,
    },
    /// Read the ECU's stored trouble codes (service 0x19).
    ReadDtcs {
        /// ECU index in the database.
        ecu: usize,
    },
    /// Clear the ECU's trouble codes (service 0x14) — the action the
    /// collector's UI blacklist exists to avoid.
    ClearDtcs {
        /// ECU index in the database.
        ecu: usize,
    },
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct DisplayedValue {
    text: String,
    updated_at: Micros,
}

/// The simulated diagnostic tool.
///
/// The tool is a pure UI state machine: clicks navigate menus, the
/// [`session`](crate::session) refreshes displayed values from the bus.
/// DP-Reverser only ever sees [`render`](DiagnosticTool::render)ed
/// screenshots and the resulting bus traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct DiagnosticTool {
    profile: ToolProfile,
    db: VehicleDatabase,
    state: ScreenState,
    displayed: BTreeMap<(usize, usize), DisplayedValue>,
    dtc_texts: BTreeMap<usize, Vec<String>>,
}

impl DiagnosticTool {
    /// Creates a tool showing the ECU list of the given database.
    pub fn new(profile: ToolProfile, db: VehicleDatabase) -> Self {
        DiagnosticTool {
            profile,
            db,
            state: ScreenState::EcuList,
            displayed: BTreeMap::new(),
            dtc_texts: BTreeMap::new(),
        }
    }

    /// The tool's profile.
    pub fn profile(&self) -> &ToolProfile {
        &self.profile
    }

    /// The embedded vehicle database.
    pub fn database(&self) -> &VehicleDatabase {
        &self.db
    }

    /// Current UI state.
    pub fn state(&self) -> ScreenState {
        self.state
    }

    /// Jumps directly to a data-stream page (used by scripted experiments;
    /// the CPS pipeline navigates by clicking instead).
    pub fn goto_data_stream(&mut self, ecu: usize, page: usize) {
        self.state = ScreenState::DataStream { ecu, page };
    }

    /// Jumps directly to the active-test page.
    pub fn goto_active_test(&mut self, ecu: usize) {
        self.state = ScreenState::ActiveTest { ecu, page: 0 };
    }

    /// The `(ecu, stream)` indices the current page polls.
    pub fn poll_targets(&self) -> Vec<(usize, usize)> {
        match self.state {
            ScreenState::DataStream { ecu, page } => {
                let streams = &self.db.ecus[ecu].streams;
                let per = self.profile.rows_per_page;
                (page * per..((page + 1) * per).min(streams.len()))
                    .map(|i| (ecu, i))
                    .collect()
            }
            _ => Vec::new(),
        }
    }

    /// Updates a displayed value (called by the session after decoding a
    /// response).
    pub fn set_displayed(&mut self, ecu: usize, stream: usize, value: f64, at: Micros) {
        let text = self.db.ecus[ecu].streams[stream].quantity.render(value);
        self.displayed.insert(
            (ecu, stream),
            DisplayedValue {
                text,
                updated_at: at,
            },
        );
    }

    /// Stores the trouble codes read for an ECU (displayed on its DTC
    /// view) in the conventional `P`-code rendering.
    pub fn set_dtcs(&mut self, ecu: usize, dtcs: &[(u16, u8)]) {
        self.dtc_texts.insert(
            ecu,
            dtcs.iter()
                .map(|(code, status)| format!("P{code:04X} [{status:02X}]"))
                .collect(),
        );
    }

    /// The rendered DTC strings for an ECU, if read.
    pub fn dtcs_shown(&self, ecu: usize) -> Option<&[String]> {
        self.dtc_texts.get(&ecu).map(|v| v.as_slice())
    }

    /// The currently displayed text of a stream row, if any.
    pub fn displayed_text(&self, ecu: usize, stream: usize) -> Option<&str> {
        self.displayed.get(&(ecu, stream)).map(|d| d.text.as_str())
    }

    /// Renders the current screen at time `now`.
    pub fn render(&self, now: Micros) -> Screenshot {
        let p = &self.profile;
        let mut s = Screenshot::new(now, p.cols, p.rows);
        // Camera-b style timestamp overlay, bottom-right.
        let ts = format!("{:.3}s", now.as_secs_f64());
        let ts_x = p.cols.saturating_sub(ts.len() + 1);
        match self.state {
            ScreenState::EcuList => {
                s.push(WidgetKind::Title, 1, 0, format!("{} - Select System", self.db.vehicle));
                for (i, ecu) in self.db.ecus.iter().enumerate() {
                    if 2 + i >= p.rows - 1 {
                        break;
                    }
                    s.push(WidgetKind::Button, 2, 2 + i, &ecu.name);
                }
            }
            ScreenState::FunctionMenu { ecu } => {
                let entry = &self.db.ecus[ecu];
                s.push(WidgetKind::Title, 1, 0, format!("{} - Functions", entry.name));
                s.push(WidgetKind::Button, 2, 2, "Read Data Stream");
                if !entry.tests.is_empty() {
                    s.push(WidgetKind::Button, 2, 4, "Active Test");
                }
                if entry.dtc_support {
                    s.push(WidgetKind::Button, 2, 6, "Read Trouble Codes");
                    s.push(WidgetKind::Button, 2, 8, "Clear Trouble Codes");
                }
                s.push(WidgetKind::Button, 2, p.rows - 2, "[Back]");
            }
            ScreenState::DtcView { ecu } => {
                let entry = &self.db.ecus[ecu];
                s.push(
                    WidgetKind::Title,
                    1,
                    0,
                    format!("{} - Trouble Codes", entry.name),
                );
                match self.dtc_texts.get(&ecu) {
                    Some(codes) if !codes.is_empty() => {
                        for (row, code) in codes.iter().take(p.rows - 4).enumerate() {
                            s.push(WidgetKind::Label, 2, 2 + row, code);
                        }
                    }
                    _ => {
                        s.push(WidgetKind::Label, 2, 2, "No trouble codes stored");
                    }
                }
                s.push(WidgetKind::Button, 2, p.rows - 2, "[Back]");
            }
            ScreenState::DataStream { ecu, page } => {
                let entry = &self.db.ecus[ecu];
                s.push(
                    WidgetKind::Title,
                    1,
                    0,
                    format!("{} - Data Stream p{}", entry.name, page + 1),
                );
                let value_col = p.cols.saturating_sub(18);
                for (row, (e, i)) in self.poll_targets().into_iter().enumerate() {
                    debug_assert_eq!(e, ecu);
                    let stream = &entry.streams[i];
                    s.push(WidgetKind::Label, 1, 2 + row, &stream.label);
                    let text = self
                        .displayed
                        .get(&(ecu, i))
                        .map(|d| d.text.clone())
                        .unwrap_or_else(|| "---".to_string());
                    s.push(WidgetKind::Value, value_col, 2 + row, text);
                    s.push(
                        WidgetKind::Label,
                        value_col + 10,
                        2 + row,
                        stream.quantity.unit(),
                    );
                }
                s.push(WidgetKind::Button, 2, p.rows - 2, "[Back]");
                let pages = entry.streams.len().div_ceil(p.rows_per_page);
                if page + 1 < pages {
                    s.push(WidgetKind::Button, 12, p.rows - 2, "[Next Page]");
                }
                if page > 0 {
                    s.push(WidgetKind::Button, 26, p.rows - 2, "[Prev Page]");
                }
            }
            ScreenState::ActiveTest { ecu, page } => {
                let entry = &self.db.ecus[ecu];
                s.push(
                    WidgetKind::Title,
                    1,
                    0,
                    format!("{} - Active Test p{}", entry.name, page + 1),
                );
                let per = p.rows_per_page;
                let start = page * per;
                for (row, i) in (start..(start + per).min(entry.tests.len())).enumerate() {
                    s.push(WidgetKind::Button, 2, 2 + row, &entry.tests[i].label);
                }
                s.push(WidgetKind::Button, 2, p.rows - 2, "[Back]");
                let pages = entry.tests.len().div_ceil(per);
                if page + 1 < pages {
                    s.push(WidgetKind::Button, 12, p.rows - 2, "[Next Page]");
                }
                if page > 0 {
                    s.push(WidgetKind::Button, 26, p.rows - 2, "[Prev Page]");
                }
            }
        }
        s.push(WidgetKind::Timestamp, ts_x, p.rows - 1, ts);
        s
    }

    /// Processes a click at `(x, y)` against the current screen. Returns
    /// the side effect the session must execute, if any.
    pub fn click(&mut self, x: usize, y: usize, now: Micros) -> Option<ToolAction> {
        let shot = self.render(now);
        let widget = shot.widget_at(x, y)?.clone();
        if widget.kind != WidgetKind::Button {
            return None;
        }
        match self.state {
            ScreenState::EcuList => {
                if let Some(idx) = self.db.ecus.iter().position(|e| e.name == widget.text) {
                    self.state = ScreenState::FunctionMenu { ecu: idx };
                }
                None
            }
            ScreenState::FunctionMenu { ecu } => {
                match widget.text.as_str() {
                    "Read Data Stream" => {
                        self.state = ScreenState::DataStream { ecu, page: 0 };
                        None
                    }
                    "Active Test" => {
                        self.state = ScreenState::ActiveTest { ecu, page: 0 };
                        None
                    }
                    "Read Trouble Codes" => {
                        self.state = ScreenState::DtcView { ecu };
                        Some(ToolAction::ReadDtcs { ecu })
                    }
                    "Clear Trouble Codes" => Some(ToolAction::ClearDtcs { ecu }),
                    "[Back]" => {
                        self.state = ScreenState::EcuList;
                        None
                    }
                    _ => None,
                }
            }
            ScreenState::DtcView { ecu } => {
                if widget.text == "[Back]" {
                    self.state = ScreenState::FunctionMenu { ecu };
                }
                None
            }
            ScreenState::DataStream { ecu, page } => {
                match widget.text.as_str() {
                    "[Back]" => {
                        self.state = ScreenState::FunctionMenu { ecu };
                        self.displayed.retain(|(e, _), _| *e != ecu);
                    }
                    "[Next Page]" => self.state = ScreenState::DataStream { ecu, page: page + 1 },
                    "[Prev Page]" => {
                        self.state = ScreenState::DataStream {
                            ecu,
                            page: page.saturating_sub(1),
                        }
                    }
                    _ => {}
                }
                None
            }
            ScreenState::ActiveTest { ecu, page } => match widget.text.as_str() {
                "[Back]" => {
                    self.state = ScreenState::FunctionMenu { ecu };
                    None
                }
                "[Next Page]" => {
                    self.state = ScreenState::ActiveTest { ecu, page: page + 1 };
                    None
                }
                "[Prev Page]" => {
                    self.state = ScreenState::ActiveTest {
                        ecu,
                        page: page.saturating_sub(1),
                    };
                    None
                }
                label => self.db.ecus[ecu]
                    .tests
                    .iter()
                    .position(|t| t.label == label)
                    .map(|test| ToolAction::RunTest { ecu, test }),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::VehicleDatabase;
    use dpr_vehicle::profiles::{self, CarId};

    fn tool() -> DiagnosticTool {
        let car = profiles::build(CarId::A, 3);
        let db = VehicleDatabase::for_vehicle(&car);
        DiagnosticTool::new(ToolProfile::autel_919(), db)
    }

    fn click_button(tool: &mut DiagnosticTool, text: &str, now: Micros) -> Option<ToolAction> {
        let shot = tool.render(now);
        let w = shot
            .widgets_of(WidgetKind::Button)
            .find(|w| w.text == text)
            .unwrap_or_else(|| panic!("button {text:?} not on screen"))
            .clone();
        let (x, y) = w.center();
        tool.click(x, y, now)
    }

    #[test]
    fn navigation_walks_menus() {
        let mut t = tool();
        assert_eq!(t.state(), ScreenState::EcuList);
        click_button(&mut t, "Engine", Micros::ZERO);
        assert!(matches!(t.state(), ScreenState::FunctionMenu { ecu: 0 }));
        click_button(&mut t, "Read Data Stream", Micros::ZERO);
        assert!(matches!(t.state(), ScreenState::DataStream { ecu: 0, page: 0 }));
        click_button(&mut t, "[Back]", Micros::ZERO);
        assert!(matches!(t.state(), ScreenState::FunctionMenu { ecu: 0 }));
        click_button(&mut t, "[Back]", Micros::ZERO);
        assert_eq!(t.state(), ScreenState::EcuList);
    }

    #[test]
    fn data_stream_pages_and_poll_targets() {
        let mut t = tool();
        t.goto_data_stream(0, 0);
        let targets = t.poll_targets();
        assert!(!targets.is_empty());
        assert!(targets.len() <= t.profile().rows_per_page);
        assert!(targets.iter().all(|&(e, _)| e == 0));
    }

    #[test]
    fn displayed_values_render_on_screen() {
        let mut t = tool();
        t.goto_data_stream(0, 0);
        t.set_displayed(0, 0, 2497.3, Micros::from_secs(1));
        let shot = t.render(Micros::from_secs(1));
        let label = &t.database().ecus[0].streams[0].label.clone();
        let value = shot.value_for_label(label).expect("value rendered");
        assert_ne!(value.text, "---");
        // Unpolled rows show the placeholder.
        let second_label = &t.database().ecus[0].streams[1].label.clone();
        assert_eq!(shot.value_for_label(second_label).unwrap().text, "---");
    }

    #[test]
    fn active_test_click_emits_action() {
        let mut t = tool();
        // Find an ECU with tests (Car A has 11 spread over body ECUs).
        let ecu_with_tests = t
            .database()
            .ecus
            .iter()
            .position(|e| !e.tests.is_empty())
            .expect("Car A has active tests");
        t.goto_active_test(ecu_with_tests);
        let first_test = t.database().ecus[ecu_with_tests].tests[0].label.clone();
        let action = click_button(&mut t, &first_test, Micros::ZERO);
        assert_eq!(
            action,
            Some(ToolAction::RunTest {
                ecu: ecu_with_tests,
                test: 0
            })
        );
    }

    #[test]
    fn timestamp_overlay_always_present() {
        let mut t = tool();
        for state in [
            ScreenState::EcuList,
            ScreenState::FunctionMenu { ecu: 0 },
            ScreenState::DataStream { ecu: 0, page: 0 },
        ] {
            t.state = state;
            let shot = t.render(Micros::from_millis(12345));
            let ts: Vec<_> = shot.widgets_of(WidgetKind::Timestamp).collect();
            assert_eq!(ts.len(), 1);
            assert_eq!(ts[0].text, "12.345s");
        }
    }

    #[test]
    fn leaving_data_stream_clears_displayed_values() {
        let mut t = tool();
        t.goto_data_stream(0, 0);
        t.set_displayed(0, 0, 42.0, Micros::ZERO);
        click_button(&mut t, "[Back]", Micros::ZERO);
        assert_eq!(t.displayed_text(0, 0), None);
    }

    #[test]
    fn clicks_outside_buttons_do_nothing() {
        let mut t = tool();
        let before = t.state();
        assert_eq!(t.click(0, 1, Micros::ZERO), None);
        assert_eq!(t.state(), before);
    }
}
