//! The rendered screen: what camera a/b film and the robotic clicker taps.
//!
//! A [`Screenshot`] is a character grid plus a widget list. The widget
//! rectangles give the (X, Y) coordinates the paper's UI analyzer feeds to
//! the planner; the widget texts are what the OCR channel (with noise)
//! extracts. A timestamp overlay in the corner models the "Timestamp
//! Camera Free" app the paper uses on camera b.

use dpr_can::Micros;
use serde::{Deserialize, Serialize};

/// What role a widget plays on screen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WidgetKind {
    /// Page title / header.
    Title,
    /// A tappable button or menu row.
    Button,
    /// A static label (e.g. a signal name).
    Label,
    /// A live value cell (the OCR targets).
    Value,
    /// The camera timestamp overlay.
    Timestamp,
}

/// One rectangle of text on the screen.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Widget {
    /// The rendered text.
    pub text: String,
    /// Left edge (character column).
    pub x: usize,
    /// Top edge (character row).
    pub y: usize,
    /// Width in characters.
    pub w: usize,
    /// The widget's role.
    pub kind: WidgetKind,
}

impl Widget {
    /// The click point at the widget's center.
    pub fn center(&self) -> (usize, usize) {
        (self.x + self.w / 2, self.y)
    }

    /// Whether a click at `(x, y)` hits this widget.
    pub fn hit(&self, x: usize, y: usize) -> bool {
        y == self.y && x >= self.x && x < self.x + self.w
    }
}

/// A rendered screen at one instant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Screenshot {
    /// When the frame was captured (the tool's wall clock — the camera
    /// timestamp overlay renders this same value).
    pub at: Micros,
    /// Grid width in characters.
    pub cols: usize,
    /// Grid height in characters.
    pub rows: usize,
    /// All widgets, in render order.
    pub widgets: Vec<Widget>,
}

impl Screenshot {
    /// Creates an empty screen.
    pub fn new(at: Micros, cols: usize, rows: usize) -> Self {
        Screenshot {
            at,
            cols,
            rows,
            widgets: Vec::new(),
        }
    }

    /// Adds a widget, clipping its text to the grid width.
    pub fn push(&mut self, kind: WidgetKind, x: usize, y: usize, text: impl Into<String>) {
        let mut text: String = text.into();
        let max = self.cols.saturating_sub(x);
        if text.len() > max {
            text.truncate(max);
        }
        if text.is_empty() || y >= self.rows {
            return;
        }
        let w = text.len();
        self.widgets.push(Widget { text, x, y, w, kind });
    }

    /// The widget hit by a click, topmost last-rendered first.
    pub fn widget_at(&self, x: usize, y: usize) -> Option<&Widget> {
        self.widgets.iter().rev().find(|w| w.hit(x, y))
    }

    /// All widgets of one kind.
    pub fn widgets_of(&self, kind: WidgetKind) -> impl Iterator<Item = &Widget> {
        self.widgets.iter().filter(move |w| w.kind == kind)
    }

    /// Renders the grid as text lines (for debugging and golden tests).
    pub fn render_text(&self) -> Vec<String> {
        let mut grid = vec![vec![' '; self.cols]; self.rows];
        for w in &self.widgets {
            for (i, ch) in w.text.chars().enumerate() {
                if w.x + i < self.cols && w.y < self.rows {
                    grid[w.y][w.x + i] = ch;
                }
            }
        }
        grid.into_iter().map(|row| row.into_iter().collect()).collect()
    }

    /// The value widget on the same row as a label widget, if any — how
    /// the screenshot-analysis module pairs names with readings.
    pub fn value_for_label(&self, label: &str) -> Option<&Widget> {
        let row = self
            .widgets
            .iter()
            .find(|w| w.kind == WidgetKind::Label && w.text == label)?
            .y;
        self.widgets
            .iter()
            .find(|w| w.kind == WidgetKind::Value && w.y == row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shot() -> Screenshot {
        let mut s = Screenshot::new(Micros::from_secs(1), 40, 10);
        s.push(WidgetKind::Title, 0, 0, "Read Data Stream");
        s.push(WidgetKind::Label, 1, 2, "Engine Speed");
        s.push(WidgetKind::Value, 25, 2, "2497");
        s.push(WidgetKind::Button, 1, 9, "[Back]");
        s.push(WidgetKind::Timestamp, 30, 9, "1.000s");
        s
    }

    #[test]
    fn hit_testing() {
        let s = shot();
        assert_eq!(s.widget_at(3, 9).unwrap().text, "[Back]");
        assert_eq!(s.widget_at(26, 2).unwrap().text, "2497");
        assert!(s.widget_at(39, 5).is_none());
    }

    #[test]
    fn clipping_at_grid_edge() {
        let mut s = Screenshot::new(Micros::ZERO, 10, 3);
        s.push(WidgetKind::Label, 6, 1, "longtext!!");
        assert_eq!(s.widgets[0].text, "long");
        // Entirely off-grid widgets are dropped.
        s.push(WidgetKind::Label, 10, 1, "gone");
        s.push(WidgetKind::Label, 0, 5, "gone");
        assert_eq!(s.widgets.len(), 1);
    }

    #[test]
    fn label_value_pairing() {
        let s = shot();
        assert_eq!(s.value_for_label("Engine Speed").unwrap().text, "2497");
        assert!(s.value_for_label("Coolant").is_none());
    }

    #[test]
    fn render_text_places_characters() {
        let s = shot();
        let lines = s.render_text();
        assert_eq!(lines.len(), 10);
        assert!(lines[0].starts_with("Read Data Stream"));
        assert!(lines[2].contains("Engine Speed"));
        assert!(lines[2].contains("2497"));
    }

    #[test]
    fn widget_center_and_kind_filter() {
        let s = shot();
        let back = s.widgets_of(WidgetKind::Button).next().unwrap();
        assert_eq!(back.center(), (1 + 3, 9));
        assert_eq!(s.widgets_of(WidgetKind::Value).count(), 1);
    }
}
