//! Tool profiles: the four devices of the paper's Tab. 3 plus the
//! telematics app used in the Tab. 5 OBD-II experiment.

use serde::Serialize;

/// Static characteristics of a diagnostic tool.
///
/// Screen geometry matters: the paper's Tab. 4 attributes AUTEL 919's
/// higher OCR precision (97.6% vs. 85.0%) to its larger, higher-resolution
/// screen; the OCR simulation keys its noise profile off
/// [`ocr_quality`](ToolProfile::ocr_quality).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ToolProfile {
    /// Display name.
    pub name: &'static str,
    /// Character-grid width of the rendered screen.
    pub cols: usize,
    /// Character-grid height of the rendered screen.
    pub rows: usize,
    /// Data-stream rows shown per page.
    pub rows_per_page: usize,
    /// Probability that one displayed value is read correctly by OCR when
    /// filming this screen, in `0..=1`. Calibrated so Tab. 4's per-device
    /// frame precisions reproduce: a frame is correct when all of its
    /// `rows_per_page` values are read correctly, so AUTEL's
    /// 0.9976^10 ≈ 97.6% and LAUNCH's 0.9799^8 ≈ 85.0%.
    pub ocr_quality: f64,
    /// How often the tool refreshes a data-stream page.
    pub poll_interval_ms: u64,
}

impl ToolProfile {
    /// AUTEL 919 (AUTEL MaxiSys): large high-resolution tablet.
    pub fn autel_919() -> Self {
        ToolProfile {
            name: "AUTEL 919",
            cols: 64,
            rows: 20,
            rows_per_page: 10,
            ocr_quality: 0.9976,
            poll_interval_ms: 250,
        }
    }

    /// LAUNCH X431: smaller handheld with a lower-resolution screen.
    pub fn launch_x431() -> Self {
        ToolProfile {
            name: "LAUNCH X431",
            cols: 48,
            rows: 16,
            rows_per_page: 8,
            ocr_quality: 0.9799,
            poll_interval_ms: 300,
        }
    }

    /// ROSS-Tech VCDS, diagnostic software on a laptop.
    pub fn vcds() -> Self {
        ToolProfile {
            name: "VCDS",
            cols: 80,
            rows: 24,
            rows_per_page: 12,
            ocr_quality: 0.998,
            poll_interval_ms: 200,
        }
    }

    /// Toyota TIS Techstream, diagnostic software on a laptop.
    pub fn techstream() -> Self {
        ToolProfile {
            name: "Techstream",
            cols: 80,
            rows: 24,
            rows_per_page: 12,
            ocr_quality: 0.998,
            poll_interval_ms: 200,
        }
    }

    /// "ChevroSys Scan Free"-style OBD telematics app on a phone.
    pub fn chevrosys_app() -> Self {
        ToolProfile {
            name: "ChevroSys Scan Free",
            cols: 40,
            rows: 18,
            rows_per_page: 8,
            ocr_quality: 0.996,
            poll_interval_ms: 400,
        }
    }

    /// Looks a profile up by the name used in Tab. 3.
    pub fn by_name(name: &str) -> Option<ToolProfile> {
        match name {
            "AUTEL 919" => Some(Self::autel_919()),
            "LAUNCH X431" => Some(Self::launch_x431()),
            "VCDS" => Some(Self::vcds()),
            "Techstream" => Some(Self::techstream()),
            "ChevroSys Scan Free" => Some(Self::chevrosys_app()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn autel_screen_larger_than_launch() {
        let autel = ToolProfile::autel_919();
        let launch = ToolProfile::launch_x431();
        assert!(autel.cols > launch.cols);
        assert!(autel.ocr_quality > launch.ocr_quality);
    }

    #[test]
    fn lookup_by_table3_names() {
        for name in ["AUTEL 919", "LAUNCH X431", "VCDS", "Techstream"] {
            let p = ToolProfile::by_name(name).unwrap();
            assert_eq!(p.name, name);
        }
        assert!(ToolProfile::by_name("Bosch KTS").is_none());
    }

    #[test]
    fn all_profiles_have_sane_geometry() {
        for p in [
            ToolProfile::autel_919(),
            ToolProfile::launch_x431(),
            ToolProfile::vcds(),
            ToolProfile::techstream(),
            ToolProfile::chevrosys_app(),
        ] {
            assert!(p.rows_per_page < p.rows);
            assert!(p.cols >= 40);
            assert!(p.ocr_quality > 0.9 && p.ocr_quality <= 1.0);
            assert!(p.poll_interval_ms >= 100);
        }
    }
}
