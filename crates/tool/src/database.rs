//! The tool's embedded vehicle database.
//!
//! Real professional tools ship per-manufacturer databases mapping
//! diagnostic identifiers to labelled signals, decoding formulas, and
//! active tests. The simulator builds the equivalent database from the
//! simulated vehicle's ground truth — this is *not* cheating: it models
//! the knowledge the tool vendor licensed from the manufacturer, which is
//! exactly the knowledge DP-Reverser extracts from the outside without
//! ever reading this structure.

use dpr_can::CanId;
use dpr_protocol::kwp::LocalId;
use dpr_protocol::obd::{self, Pid};
use dpr_protocol::uds::Did;
use dpr_protocol::{EsvFormula, Quantity};
use dpr_vehicle::ecu::{ComponentKey, EsvId, Protocol, TransportKind};
use dpr_vehicle::Vehicle;
use serde::{Deserialize, Serialize};

/// What a data-stream row reads and how it is displayed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamEntry {
    /// The label shown on screen (e.g. "Engine Speed").
    pub label: String,
    /// What to request on the bus.
    pub source: StreamSource,
    /// The proprietary decoding formula.
    pub formula: EsvFormula,
    /// Display quantity (unit, range, decimals).
    pub quantity: Quantity,
}

/// The request needed to refresh one stream row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StreamSource {
    /// UDS read data by identifier.
    Uds(Did),
    /// One slot of a KWP read-data-by-local-identifier block.
    Kwp {
        /// The measuring block to request.
        local_id: LocalId,
        /// Which ESV of the block this row shows.
        slot: usize,
    },
    /// OBD-II mode 01.
    Obd(Pid),
}

impl StreamSource {
    /// The ESV identity this source corresponds to (None for OBD).
    pub fn esv_id(&self) -> Option<EsvId> {
        match self {
            StreamSource::Uds(did) => Some(EsvId::Uds(*did)),
            StreamSource::Kwp { local_id, slot } => Some(EsvId::Kwp {
                local_id: *local_id,
                slot: *slot,
            }),
            StreamSource::Obd(_) => None,
        }
    }
}

/// One active test (component control) the tool offers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestEntry {
    /// The label shown on screen (e.g. "Fog Light Left").
    pub label: String,
    /// The component key addressed on the bus.
    pub key: ComponentKey,
    /// Control-state bytes for the short-term adjustment.
    pub control_state: Vec<u8>,
    /// Whether the tool must perform the SecurityAccess handshake first.
    pub secured: bool,
}

/// Everything the tool knows about one ECU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EcuEntry {
    /// Display name.
    pub name: String,
    /// CAN id the tool transmits requests on.
    pub request_id: CanId,
    /// CAN id the ECU answers on.
    pub response_id: CanId,
    /// Transport scheme.
    pub transport: TransportKind,
    /// ECU address byte (VW TP / BMW raw).
    pub address: u8,
    /// Application protocol.
    pub protocol: Protocol,
    /// Readable signals.
    pub streams: Vec<StreamEntry>,
    /// Active tests.
    pub tests: Vec<TestEntry>,
    /// The manufacturer's seed-key secret, when the ECU gates actuators
    /// behind SecurityAccess (professional tools embed these algorithms).
    pub security_secret: Option<u16>,
    /// Whether the ECU supports the DTC services (0x19 / 0x14).
    pub dtc_support: bool,
}

/// The tool's database for one vehicle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VehicleDatabase {
    /// The vehicle model name shown in the tool's header.
    pub vehicle: String,
    /// Known ECUs.
    pub ecus: Vec<EcuEntry>,
}

impl VehicleDatabase {
    /// Builds the database a professional tool would ship for this
    /// vehicle, from the vehicle's ground truth.
    pub fn for_vehicle(vehicle: &Vehicle) -> Self {
        let ecus = vehicle
            .ecus()
            .iter()
            .map(|ecu| {
                let mut streams: Vec<StreamEntry> = Vec::new();
                let mut label_counts = std::collections::BTreeMap::new();
                for point in ecu.esv_points() {
                    let base = point.quantity.name().to_string();
                    let n = label_counts
                        .entry(base.clone())
                        .and_modify(|c| *c += 1)
                        .or_insert(1usize);
                    let label = if *n > 1 { format!("{base} {n}") } else { base };
                    let source = match point.id {
                        EsvId::Uds(did) => StreamSource::Uds(did),
                        EsvId::Kwp { local_id, slot } => StreamSource::Kwp { local_id, slot },
                    };
                    streams.push(StreamEntry {
                        label,
                        source,
                        formula: point.formula,
                        quantity: point.quantity.clone(),
                    });
                }
                let mut test_label_counts = std::collections::BTreeMap::new();
                let tests = ecu
                    .component_keys()
                    .enumerate()
                    .map(|(i, key)| {
                        let base = ecu
                            .component(key)
                            .map(|c| c.name().to_string())
                            .unwrap_or_else(|| format!("Component {i}"));
                        // Labels must be unique per ECU: the UI resolves a
                        // tapped button back to its test by text.
                        let n = test_label_counts
                            .entry(base.clone())
                            .and_modify(|c| *c += 1)
                            .or_insert(1usize);
                        let name = if *n > 1 { format!("{base} {n}") } else { base };
                        TestEntry {
                            label: name,
                            key,
                            // A plausible proprietary control state: a
                            // duration byte plus a selector byte, then
                            // padding — the 2-modified-bytes shape the
                            // paper reports for the fog-light ECR.
                            control_state: vec![0x05, (i % 2) as u8 + 1, 0x00, 0x00],
                            secured: ecu.is_secured(key),
                        }
                    })
                    .collect();
                EcuEntry {
                    name: ecu.name().to_string(),
                    request_id: ecu.request_id(),
                    response_id: ecu.response_id(),
                    transport: ecu.transport(),
                    address: ecu.address,
                    protocol: ecu.protocol(),
                    streams,
                    tests,
                    security_secret: ecu.security_secret,
                    dtc_support: matches!(ecu.protocol(), Protocol::Uds),
                }
            })
            .collect();
        VehicleDatabase {
            vehicle: vehicle.name().to_string(),
            ecus,
        }
    }

    /// Total stream rows across all ECUs.
    pub fn stream_count(&self) -> usize {
        self.ecus.iter().map(|e| e.streams.len()).sum()
    }

    /// Total active tests across all ECUs.
    pub fn test_count(&self) -> usize {
        self.ecus.iter().map(|e| e.tests.len()).sum()
    }
}

/// The database of an OBD telematics app ("ChevroSys Scan Free"): a single
/// virtual "Engine" entry whose rows are the seven Tab. 5 PIDs decoded
/// with the unit choices the paper observed the app make (mph for speed,
/// Fahrenheit for coolant, inHg for manifold pressure).
pub fn obd_database(vehicle_name: &str, engine_request_id: CanId, engine_response_id: CanId) -> VehicleDatabase {
    let entry = |pid: u8, label: &str, formula: EsvFormula, quantity: Quantity| StreamEntry {
        label: label.to_string(),
        source: StreamSource::Obd(Pid(pid)),
        formula,
        quantity,
    };
    let streams = vec![
        entry(
            0x11,
            "Absolute Throttle Position",
            EsvFormula::Linear { a: 100.0 / 255.0, b: 0.0 },
            Quantity::new("Absolute Throttle Position", "%", 0.0, 100.0),
        ),
        entry(
            0x04,
            "Calculated Engine Load",
            EsvFormula::Linear { a: 100.0 / 255.0, b: 0.0 },
            Quantity::new("Calculated Engine Load", "%", 0.0, 100.0),
        ),
        entry(
            0x2F,
            "Fuel Tank Level Input",
            EsvFormula::Linear { a: 0.392, b: 0.0 },
            Quantity::new("Fuel Tank Level Input", "%", 0.0, 100.0),
        ),
        entry(
            0x0C,
            "Engine Speed",
            EsvFormula::Affine2 { a: 64.0, b: 0.25, c: 0.0 },
            Quantity::new("Engine Speed", "rpm", 0.0, 16383.75).with_decimals(0),
        ),
        // The app displays mph: Y = 0.621·X.
        entry(
            0x0D,
            "Vehicle Speed",
            EsvFormula::Linear { a: 0.621, b: 0.0 },
            Quantity::new("Vehicle Speed", "mph", 0.0, 158.4),
        ),
        // The app displays Fahrenheit: Y = 1.8·X − 40.
        entry(
            0x05,
            "Engine Coolant Temperature",
            EsvFormula::Linear { a: 1.8, b: -40.0 },
            Quantity::new("Engine Coolant Temperature", "degF", -40.0, 419.0),
        ),
        // The app displays inHg: Y = X/3.39.
        entry(
            0x0B,
            "Intake Manifold Absolute Pressure",
            EsvFormula::Linear { a: 1.0 / 3.39, b: 0.0 },
            Quantity::new("Intake Manifold Absolute Pressure", "inHg", 0.0, 75.3),
        ),
    ];
    // Sanity: every PID the app reads exists in the standard table.
    debug_assert!(streams.iter().all(|s| match s.source {
        StreamSource::Obd(pid) => obd::pid_spec(pid).is_some(),
        _ => false,
    }));
    VehicleDatabase {
        vehicle: vehicle_name.to_string(),
        ecus: vec![EcuEntry {
            name: "Engine (OBD-II)".to_string(),
            request_id: engine_request_id,
            response_id: engine_response_id,
            transport: TransportKind::IsoTp,
            address: 0x01,
            protocol: Protocol::Uds,
            streams,
            tests: Vec::new(),
            security_secret: None,
            dtc_support: false,
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpr_vehicle::profiles::{self, CarId};

    #[test]
    fn database_covers_every_esv_and_test() {
        let car = profiles::build(CarId::A, 3);
        let expected_streams = car.esv_points().count();
        let db = VehicleDatabase::for_vehicle(&car);
        assert_eq!(db.stream_count(), expected_streams);
        assert_eq!(db.test_count(), 11, "Car A has 11 ECRs (Tab. 11)");
        assert_eq!(db.vehicle, "Skoda Octavia");
    }

    #[test]
    fn duplicate_labels_get_suffixes() {
        let car = profiles::build(CarId::K, 3);
        let db = VehicleDatabase::for_vehicle(&car);
        // Labels must be unique within each ECU: that is the scope within
        // which the pipeline pairs a screen label with a request id.
        for ecu in &db.ecus {
            let mut labels: Vec<&str> = ecu.streams.iter().map(|s| s.label.as_str()).collect();
            let before = labels.len();
            labels.sort_unstable();
            labels.dedup();
            assert_eq!(labels.len(), before, "{}: duplicate label", ecu.name);
        }
    }

    #[test]
    fn obd_database_has_the_seven_tab5_rows() {
        let db = obd_database(
            "Simulator",
            CanId::standard(0x7E0).unwrap(),
            CanId::standard(0x7E8).unwrap(),
        );
        assert_eq!(db.stream_count(), 7);
        let pids: Vec<u8> = db.ecus[0]
            .streams
            .iter()
            .map(|s| match s.source {
                StreamSource::Obd(p) => p.0,
                _ => panic!("OBD database must only contain OBD sources"),
            })
            .collect();
        assert_eq!(pids, vec![0x11, 0x04, 0x2F, 0x0C, 0x0D, 0x05, 0x0B]);
    }

    #[test]
    fn stream_source_esv_ids() {
        assert_eq!(
            StreamSource::Uds(Did(0xF40D)).esv_id(),
            Some(EsvId::Uds(Did(0xF40D)))
        );
        assert_eq!(StreamSource::Obd(Pid(0x0C)).esv_id(), None);
        let kwp = StreamSource::Kwp {
            local_id: LocalId(0x07),
            slot: 1,
        };
        assert!(matches!(kwp.esv_id(), Some(EsvId::Kwp { .. })));
    }
}
