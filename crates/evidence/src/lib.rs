//! Per-formula provenance: the evidence ledger.
//!
//! Every stage of the DP-Reverser pipeline emits typed [`Event`]s while
//! a recorder is active — which CAN frames fed each reassembled
//! payload, which reassembly attempts were rejected (and why), which
//! OCR samples were read and kept, which alignment candidates were
//! considered with what score, and the generation-by-generation lineage
//! of the winning GP expression. [`assemble`] links those events by
//! their stable ids into one [`EvidenceChain`] per recovered sensor,
//! and [`render`] prints a chain as the human-readable story from raw
//! frame to final formula.
//!
//! The recorder is a thread-local buffer stack ([`capture`]): recording
//! costs nothing unless a capture is active, and every event carries
//! only simulation-clock data, so a ledger from a live run is
//! bit-identical to one from a `.dprcap` replay of the same session.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::BTreeMap;

// ———————————————————————————— recorder ————————————————————————————

thread_local! {
    static BUFFERS: RefCell<Vec<Vec<Event>>> = const { RefCell::new(Vec::new()) };
    static SUBJECTS: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with an active evidence recorder on this thread, returning
/// its result plus every [`Event`] recorded while it ran. Nestable; the
/// innermost capture receives the events. Panic-safe: the buffer is
/// popped even if `f` unwinds.
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, Vec<Event>) {
    struct PopGuard;
    impl Drop for PopGuard {
        fn drop(&mut self) {
            BUFFERS.with(|b| b.borrow_mut().pop());
        }
    }
    BUFFERS.with(|b| b.borrow_mut().push(Vec::new()));
    let guard = PopGuard;
    let result = f();
    let events = BUFFERS.with(|b| b.borrow_mut().pop()).unwrap_or_default();
    std::mem::forget(guard);
    (result, events)
}

/// Appends an event to the innermost active capture on this thread.
/// A no-op (the event is dropped) when no capture is active.
pub fn record(event: Event) {
    BUFFERS.with(|b| {
        if let Some(buffer) = b.borrow_mut().last_mut() {
            buffer.push(event);
        }
    });
}

/// Whether a capture is active on this thread — gate expensive
/// event construction on this.
pub fn active() -> bool {
    BUFFERS.with(|b| !b.borrow().is_empty())
}

/// Runs `f` with `subject` as the current evidence subject (the sensor
/// key a nested stage, e.g. a GP fit, should tag its events with).
pub fn with_subject<R>(subject: &str, f: impl FnOnce() -> R) -> R {
    struct PopGuard;
    impl Drop for PopGuard {
        fn drop(&mut self) {
            SUBJECTS.with(|s| s.borrow_mut().pop());
        }
    }
    SUBJECTS.with(|s| s.borrow_mut().push(subject.to_string()));
    let _guard = PopGuard;
    f()
}

/// The innermost subject set by [`with_subject`], if any.
pub fn subject() -> Option<String> {
    SUBJECTS.with(|s| s.borrow().last().cloned())
}

/// Maps a possibly non-finite float into the serializable domain:
/// NaN and ±inf become `None` (JSON has no spelling for them).
pub fn finite(f: f64) -> Option<f64> {
    f.is_finite().then_some(f)
}

// ———————————————————————————— events ————————————————————————————

/// One wide event from one pipeline stage. Events are linked into
/// chains by stable ids: reassembled payloads by `(id, at_us)`, OCR
/// samples by `sample_id`, alignment candidates by
/// `(series_idx, label_idx)`, and GP lineages by sensor `subject`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A transport-layer reassembly completed (`dpr-frames` over
    /// `dpr-transport`): `frame_times_us` are the raw CAN frames that
    /// fed this payload.
    Reassembled(Reassembled),
    /// A reassembly attempt was rejected, tagged with the
    /// `TransportError` kind the metrics taxonomy uses
    /// (`transport.<scheme>.reject.<kind>`).
    ReassemblyReject(ReassemblyReject),
    /// A sensor value was extracted from a reassembled payload
    /// (`dpr-frames::extract`), linked to the diagnostic request that
    /// elicited it.
    FieldSample(FieldSample),
    /// One OCR reading of one screen widget (`dpr-ocr`), with the
    /// channel's calibrated confidence.
    OcrSample(OcrSample),
    /// The filter's verdict on one OCR sample (`kept`,
    /// `rejected_unparsed`, `rejected_range`, `rejected_outlier`).
    OcrVerdict(OcrVerdict),
    /// One alignment candidate considered by `associate` with its
    /// match score and accept/reject reason. Later events for the same
    /// `(series_idx, label_idx)` supersede earlier ones (e.g. a
    /// second-pass rescue overrides a first-pass rejection).
    Candidate(Candidate),
    /// The winning GP expression's generation-by-generation lineage.
    Lineage(Lineage),
}

/// See [`Event::Reassembled`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Reassembled {
    /// Transport scheme: `isotp`, `vwtp`, or `bmw`.
    pub scheme: String,
    /// Raw CAN arbitration id the payload arrived on.
    pub id: u32,
    /// Completion timestamp (simulation microseconds).
    pub at_us: u64,
    /// Timestamps of the raw frames that fed this payload.
    pub frame_times_us: Vec<u64>,
    /// Reassembled payload length in bytes.
    pub len: u32,
}

/// See [`Event::ReassemblyReject`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReassemblyReject {
    /// Transport scheme: `isotp`, `vwtp`, or `bmw`.
    pub scheme: String,
    /// Error kind, matching `TransportError::kind()` plus the
    /// pseudo-kind `superseded` (an in-flight reassembly displaced by
    /// a new first/single frame).
    pub kind: String,
    /// Raw CAN id, when the rejecting layer knows it.
    pub id: Option<u32>,
    /// Rejection timestamp, when the rejecting layer knows it.
    pub at_us: Option<u64>,
}

/// See [`Event::FieldSample`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FieldSample {
    /// Sensor key (the `SourceKey` display form, e.g. `DID 0xF40D`).
    pub key: String,
    /// Raw CAN id of the response payload.
    pub id: u32,
    /// Response timestamp — joins to [`Reassembled`] on `(id, at_us)`.
    pub at_us: u64,
    /// Timestamp of the diagnostic request that elicited the response.
    pub request_at_us: Option<u64>,
}

/// See [`Event::OcrSample`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OcrSample {
    /// Stable sample id: the reading's index in the OCR output stream.
    pub sample_id: u32,
    /// Screenshot timestamp (simulation microseconds).
    pub at_us: u64,
    /// Screen the widget was read from.
    pub screen: String,
    /// Widget label.
    pub label: String,
    /// The text the OCR channel produced.
    pub text: String,
    /// The text parsed as a number, when it parses.
    pub value: Option<f64>,
    /// Whether the read reproduced the widget text exactly.
    pub exact: bool,
    /// The OCR channel's calibrated per-value accuracy.
    pub confidence: f64,
}

/// See [`Event::OcrVerdict`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OcrVerdict {
    /// The sample this verdict applies to.
    pub sample_id: u32,
    /// `kept`, `rejected_unparsed`, `rejected_range`, or
    /// `rejected_outlier`.
    pub verdict: String,
}

/// Why an alignment candidate was accepted or rejected. [`code`]
/// (CandidateDecision::code) is the stable string the ledger, tests,
/// and `dpr-bench explain` all share.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CandidateDecision {
    /// Above threshold and won the greedy assignment in pass one.
    AcceptedStrict,
    /// Below the strict threshold but rescued by the relaxed second
    /// pass over unclaimed series and labels.
    AcceptedRescued,
    /// Scored below the (possibly relaxed) threshold.
    BelowThreshold,
    /// Scored well, but its series was already claimed by a better
    /// candidate.
    SeriesClaimed,
    /// Scored well, but its label was already claimed by a better
    /// candidate.
    LabelClaimed,
    /// Accepted by association but dropped by the pipeline: too few
    /// aligned pairs to attempt inference.
    TooFewPairs,
}

impl CandidateDecision {
    /// The stable reason code (`accepted_strict`, `accepted_rescued`,
    /// `below_threshold`, `series_claimed`, `label_claimed`,
    /// `too_few_pairs`).
    pub fn code(self) -> &'static str {
        match self {
            CandidateDecision::AcceptedStrict => "accepted_strict",
            CandidateDecision::AcceptedRescued => "accepted_rescued",
            CandidateDecision::BelowThreshold => "below_threshold",
            CandidateDecision::SeriesClaimed => "series_claimed",
            CandidateDecision::LabelClaimed => "label_claimed",
            CandidateDecision::TooFewPairs => "too_few_pairs",
        }
    }

    /// Whether this decision means the candidate made it into the
    /// final assignment.
    pub fn accepted(self) -> bool {
        matches!(
            self,
            CandidateDecision::AcceptedStrict | CandidateDecision::AcceptedRescued
        )
    }
}

/// See [`Event::Candidate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// Index of the extracted series in the association input.
    pub series_idx: u32,
    /// Index of the label series in the association input.
    pub label_idx: u32,
    /// Sensor key of the extracted series.
    pub key: String,
    /// Screen of the label series.
    pub screen: String,
    /// Label of the label series.
    pub label: String,
    /// Match score; `None` when the score was not finite.
    pub score: Option<f64>,
    /// Number of time-aligned pairs the score was computed over.
    pub pairs: u32,
    /// The decision and its reason.
    pub decision: CandidateDecision,
}

/// One step in a winning expression's ancestry: the operation that
/// produced the ancestor alive in `generation`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LineageStep {
    /// The generation this ancestor belongs to (0 = initial population).
    pub generation: u32,
    /// The operator that produced it: `seed-template`, `init-full`,
    /// `init-grow`, `elite`, `crossover`, `subtree-mutation`,
    /// `hoist-mutation`, `point-mutation`, `reproduction`,
    /// `depth-fallback`, or a post-run refinement (`polish`,
    /// `refit-residual`, `refit-loworder`).
    pub op: String,
    /// Population index of the parent in the previous generation.
    pub parent: Option<u32>,
    /// Population index of the crossover donor, when applicable.
    pub donor: Option<u32>,
    /// The parent's training error at breeding time.
    pub parent_error: Option<f64>,
}

/// See [`Event::Lineage`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lineage {
    /// The sensor key this fit belongs to (set via [`with_subject`]).
    pub subject: String,
    /// The winner's ancestry from generation 0 to the final
    /// expression, including post-run refinement steps.
    pub steps: Vec<LineageStep>,
    /// Best training error after each generation (`None` = not finite).
    pub best_error_history: Vec<Option<f64>>,
    /// Training error of the final expression.
    pub final_error: Option<f64>,
    /// Fitness-cache hits during this fit.
    pub cache_hits: u64,
    /// Expression evaluations during this fit.
    pub evaluations: u64,
    /// Generations actually run.
    pub generations: u32,
    /// Whether the fit stopped early on the error threshold.
    pub stopped_by_threshold: bool,
    /// The final expression, canonically formatted.
    pub expression: String,
}

// ———————————————————————————— chains ————————————————————————————

/// What the pipeline knows about one recovered sensor — the join keys
/// [`assemble`] uses to pull that sensor's events out of the log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensorDesc {
    /// Sensor key (`SourceKey` display form).
    pub key: String,
    /// Screen the matched label lives on.
    pub screen: String,
    /// The matched widget label.
    pub label: String,
    /// `formula` or `enumeration`.
    pub kind: String,
    /// The recovered formula (or enumeration summary), pretty-printed.
    pub formula: String,
    /// Association series index (joins [`Candidate`] events).
    pub series_idx: u32,
    /// Association label index (joins [`Candidate`] events).
    pub label_idx: u32,
    /// The winning match score.
    pub score: Option<f64>,
    /// Aligned pairs behind the winning match.
    pub pairs: u32,
}

/// One extracted sample's provenance: when it arrived, on which CAN
/// id, which request elicited it, and which raw frames fed it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleProvenance {
    /// Response timestamp (simulation microseconds).
    pub at_us: u64,
    /// Raw CAN id the response arrived on.
    pub can_id: u32,
    /// Timestamp of the eliciting diagnostic request.
    pub request_at_us: Option<u64>,
    /// Raw frame timestamps feeding the reassembled response payload.
    pub frame_times_us: Vec<u64>,
}

/// One OCR sample relevant to a chain, with its filter verdict
/// (`unfiltered` when the pipeline ran without the OCR filter).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OcrRecord {
    /// The sample as read.
    pub sample: OcrSample,
    /// The filter's verdict on it.
    pub verdict: String,
}

/// The full per-sensor provenance chain: raw frames → reassembly →
/// field extraction → OCR samples → alignment decision → GP lineage →
/// final formula.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvidenceChain {
    /// Sensor key (`SourceKey` display form).
    pub sensor: String,
    /// URL-safe slug of the sensor key (`did-0xf40d`).
    pub slug: String,
    /// Screen the matched label lives on.
    pub screen: String,
    /// The matched widget label.
    pub label: String,
    /// `formula` or `enumeration`.
    pub kind: String,
    /// The recovered formula, pretty-printed.
    pub formula: String,
    /// The winning match score.
    pub match_score: Option<f64>,
    /// Aligned pairs behind the winning match.
    pub match_pairs: u32,
    /// Every extracted sample of this sensor with its frame provenance.
    pub samples: Vec<SampleProvenance>,
    /// Every OCR sample of the matched widget with its filter verdict.
    pub ocr: Vec<OcrRecord>,
    /// Every alignment candidate that touched this sensor's series or
    /// label, with final (superseding) decisions.
    pub candidates: Vec<Candidate>,
    /// The winning GP expression's lineage (formula sensors only).
    pub lineage: Option<Lineage>,
}

/// The whole run's evidence: one chain per recovered sensor plus the
/// run-level transport reject tallies (keyed `<scheme>.<kind>`, the
/// same taxonomy as the `transport.<scheme>.reject.<kind>` counters).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EvidenceLedger {
    /// One chain per recovered sensor, in report order.
    pub chains: Vec<EvidenceChain>,
    /// Reassembly rejects tallied by `<scheme>.<kind>`.
    pub rejects: BTreeMap<String, u64>,
}

impl EvidenceLedger {
    /// The chain whose slug is `slug`, if any.
    pub fn chain(&self, slug: &str) -> Option<&EvidenceChain> {
        self.chains.iter().find(|c| c.slug == slug)
    }
}

/// Lowercases a sensor name into a URL-safe slug: alphanumerics are
/// kept, every other run of characters becomes one `-`.
///
/// ```
/// assert_eq!(dpr_evidence::slug("DID 0xF40D"), "did-0xf40d");
/// assert_eq!(dpr_evidence::slug("local id 0x01 slot 2"), "local-id-0x01-slot-2");
/// ```
pub fn slug(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else if !out.ends_with('-') && !out.is_empty() {
            out.push('-');
        }
    }
    while out.ends_with('-') {
        out.pop();
    }
    out
}

/// Links a run's recorded events into one [`EvidenceChain`] per sensor
/// in `sensors`, plus run-level reject tallies.
pub fn assemble(events: &[Event], sensors: &[SensorDesc]) -> EvidenceLedger {
    // Join indexes. Later events supersede earlier ones where the ids
    // collide (OCR verdicts, candidate decisions).
    let mut reassembled: BTreeMap<(u32, u64), &Reassembled> = BTreeMap::new();
    let mut fields: BTreeMap<&str, Vec<&FieldSample>> = BTreeMap::new();
    let mut ocr_samples: Vec<&OcrSample> = Vec::new();
    let mut verdicts: BTreeMap<u32, &str> = BTreeMap::new();
    let mut candidates: BTreeMap<(u32, u32), &Candidate> = BTreeMap::new();
    let mut lineages: BTreeMap<&str, &Lineage> = BTreeMap::new();
    let mut rejects: BTreeMap<String, u64> = BTreeMap::new();

    for event in events {
        match event {
            Event::Reassembled(r) => {
                reassembled.insert((r.id, r.at_us), r);
            }
            Event::ReassemblyReject(r) => {
                *rejects.entry(format!("{}.{}", r.scheme, r.kind)).or_default() += 1;
            }
            Event::FieldSample(f) => fields.entry(&f.key).or_default().push(f),
            Event::OcrSample(s) => ocr_samples.push(s),
            Event::OcrVerdict(v) => {
                verdicts.insert(v.sample_id, &v.verdict);
            }
            Event::Candidate(c) => {
                candidates.insert((c.series_idx, c.label_idx), c);
            }
            Event::Lineage(l) => {
                lineages.insert(&l.subject, l);
            }
        }
    }

    let chains = sensors
        .iter()
        .map(|desc| {
            let samples = fields
                .get(desc.key.as_str())
                .map(|list| {
                    list.iter()
                        .map(|f| SampleProvenance {
                            at_us: f.at_us,
                            can_id: f.id,
                            request_at_us: f.request_at_us,
                            frame_times_us: reassembled
                                .get(&(f.id, f.at_us))
                                .map(|r| r.frame_times_us.clone())
                                .unwrap_or_default(),
                        })
                        .collect()
                })
                .unwrap_or_default();
            let ocr = ocr_samples
                .iter()
                .filter(|s| s.screen == desc.screen && s.label == desc.label)
                .map(|s| OcrRecord {
                    sample: (*s).clone(),
                    verdict: verdicts
                        .get(&s.sample_id)
                        .map_or_else(|| "unfiltered".to_string(), |v| v.to_string()),
                })
                .collect();
            let candidates: Vec<Candidate> = candidates
                .values()
                .filter(|c| {
                    c.series_idx == desc.series_idx
                        || (c.screen == desc.screen && c.label == desc.label)
                })
                .map(|c| (*c).clone())
                .collect();
            EvidenceChain {
                sensor: desc.key.clone(),
                slug: slug(&desc.key),
                screen: desc.screen.clone(),
                label: desc.label.clone(),
                kind: desc.kind.clone(),
                formula: desc.formula.clone(),
                match_score: desc.score,
                match_pairs: desc.pairs,
                samples,
                ocr,
                candidates,
                lineage: lineages.get(desc.key.as_str()).map(|l| (*l).clone()),
            }
        })
        .collect();

    EvidenceLedger { chains, rejects }
}

// ———————————————————————————— rendering ————————————————————————————

fn fmt_score(score: Option<f64>) -> String {
    score.map_or_else(|| "n/a".to_string(), |s| format!("{s:.3}"))
}

fn fmt_us(us: u64) -> String {
    format!("{:.3}s", us as f64 / 1e6)
}

/// Renders one chain as the human-readable story `dpr-bench explain`
/// prints: frames → reassembly → OCR → alignment → lineage → formula.
pub fn render(chain: &EvidenceChain) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "sensor {} ({} on screen {:?})", chain.sensor, chain.label, chain.screen);
    let _ = writeln!(
        out,
        "  verdict: {} — {}  (match score {}, {} aligned pairs)",
        chain.kind,
        chain.formula,
        fmt_score(chain.match_score),
        chain.match_pairs,
    );

    let frames: usize = chain.samples.iter().map(|s| s.frame_times_us.len()).sum();
    let _ = writeln!(
        out,
        "  bus evidence: {} samples reassembled from {} raw CAN frames",
        chain.samples.len(),
        frames,
    );
    for sample in chain.samples.iter().take(3) {
        let req = sample
            .request_at_us
            .map_or_else(|| "?".to_string(), fmt_us);
        let _ = writeln!(
            out,
            "    {} on 0x{:03X}: request at {}, {} frame(s) {}",
            fmt_us(sample.at_us),
            sample.can_id,
            req,
            sample.frame_times_us.len(),
            sample
                .frame_times_us
                .iter()
                .take(4)
                .map(|&t| fmt_us(t))
                .collect::<Vec<_>>()
                .join(" "),
        );
    }
    if chain.samples.len() > 3 {
        let _ = writeln!(out, "    … {} more samples", chain.samples.len() - 3);
    }

    let kept = chain.ocr.iter().filter(|r| r.verdict == "kept").count();
    let exact = chain.ocr.iter().filter(|r| r.sample.exact).count();
    let confidence = chain.ocr.first().map_or(0.0, |r| r.sample.confidence);
    let _ = writeln!(
        out,
        "  screen evidence: {} OCR samples of {:?} ({} kept, {} exact, confidence {confidence})",
        chain.ocr.len(),
        chain.label,
        kept,
        exact,
    );
    for record in chain.ocr.iter().take(3) {
        let _ = writeln!(
            out,
            "    sample {} at {}: {:?} → {} [{}]",
            record.sample.sample_id,
            fmt_us(record.sample.at_us),
            record.sample.text,
            record
                .sample
                .value
                .map_or_else(|| "unparsed".to_string(), |v| v.to_string()),
            record.verdict,
        );
    }
    if chain.ocr.len() > 3 {
        let _ = writeln!(out, "    … {} more samples", chain.ocr.len() - 3);
    }

    let _ = writeln!(out, "  alignment: {} candidate(s) considered", chain.candidates.len());
    for c in &chain.candidates {
        let _ = writeln!(
            out,
            "    {} ↔ {:?}: score {} over {} pairs → {}",
            c.key,
            c.label,
            fmt_score(c.score),
            c.pairs,
            c.decision.code(),
        );
    }

    match &chain.lineage {
        Some(l) => {
            let _ = writeln!(
                out,
                "  GP lineage: {} generations, {} evaluations, {} cache hits{}",
                l.generations,
                l.evaluations,
                l.cache_hits,
                if l.stopped_by_threshold { ", stopped by threshold" } else { "" },
            );
            for step in &l.steps {
                let parent = step
                    .parent
                    .map_or_else(|| "-".to_string(), |p| format!("#{p}"));
                let donor = step
                    .donor
                    .map_or_else(String::new, |d| format!(" × #{d}"));
                let _ = writeln!(
                    out,
                    "    gen {:>3}: {} (parent {parent}{donor}, parent error {})",
                    step.generation,
                    step.op,
                    fmt_score(step.parent_error),
                );
            }
            let _ = writeln!(
                out,
                "    final error {} → {}",
                fmt_score(l.final_error),
                l.expression,
            );
        }
        None if chain.kind == "formula" => {
            let _ = writeln!(out, "  GP lineage: (not recorded)");
        }
        None => {
            let _ = writeln!(out, "  GP lineage: none (recovered by enumeration, not GP)");
        }
    }
    out
}

/// Renders the run-level reject tallies (one line per
/// `<scheme>.<kind>`), or a placeholder when there were none.
pub fn render_rejects(rejects: &BTreeMap<String, u64>) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    if rejects.is_empty() {
        let _ = writeln!(out, "transport rejects: none");
    } else {
        let _ = writeln!(out, "transport rejects:");
        for (kind, n) in rejects {
            let _ = writeln!(out, "  {kind}: {n}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_collects_and_pops() {
        assert!(!active());
        let ((), events) = capture(|| {
            assert!(active());
            record(Event::OcrVerdict(OcrVerdict {
                sample_id: 7,
                verdict: "kept".to_string(),
            }));
        });
        assert_eq!(events.len(), 1);
        assert!(!active());
        // Recording without a capture is a silent no-op.
        record(Event::OcrVerdict(OcrVerdict {
            sample_id: 8,
            verdict: "kept".to_string(),
        }));
    }

    #[test]
    fn nested_capture_gets_inner_events() {
        let (inner, outer) = capture(|| {
            record(Event::OcrVerdict(OcrVerdict {
                sample_id: 1,
                verdict: "kept".to_string(),
            }));
            let ((), inner) = capture(|| {
                record(Event::OcrVerdict(OcrVerdict {
                    sample_id: 2,
                    verdict: "kept".to_string(),
                }));
            });
            inner
        });
        assert_eq!(outer.len(), 1);
        assert_eq!(inner.len(), 1);
    }

    #[test]
    fn subject_nests() {
        assert_eq!(subject(), None);
        with_subject("DID 0x01", || {
            assert_eq!(subject().as_deref(), Some("DID 0x01"));
            with_subject("DID 0x02", || {
                assert_eq!(subject().as_deref(), Some("DID 0x02"));
            });
            assert_eq!(subject().as_deref(), Some("DID 0x01"));
        });
        assert_eq!(subject(), None);
    }

    #[test]
    fn slug_is_url_safe() {
        assert_eq!(slug("DID 0xF40D"), "did-0xf40d");
        assert_eq!(slug("PID 0x0C"), "pid-0x0c");
        assert_eq!(slug("local id 0x01 slot 2"), "local-id-0x01-slot-2");
        assert_eq!(slug("  weird//name  "), "weird-name");
        assert_eq!(slug(""), "");
    }

    #[test]
    fn finite_maps_non_finite_to_none() {
        assert_eq!(finite(1.5), Some(1.5));
        assert_eq!(finite(f64::NAN), None);
        assert_eq!(finite(f64::INFINITY), None);
    }

    fn sample_events() -> Vec<Event> {
        vec![
            Event::Reassembled(Reassembled {
                scheme: "isotp".to_string(),
                id: 0x7E8,
                at_us: 1_000,
                frame_times_us: vec![900, 950, 1_000],
                len: 12,
            }),
            Event::ReassemblyReject(ReassemblyReject {
                scheme: "isotp".to_string(),
                kind: "sequence_mismatch".to_string(),
                id: None,
                at_us: None,
            }),
            Event::ReassemblyReject(ReassemblyReject {
                scheme: "isotp".to_string(),
                kind: "sequence_mismatch".to_string(),
                id: None,
                at_us: None,
            }),
            Event::FieldSample(FieldSample {
                key: "DID 0xF40D".to_string(),
                id: 0x7E8,
                at_us: 1_000,
                request_at_us: Some(800),
            }),
            Event::OcrSample(OcrSample {
                sample_id: 0,
                at_us: 1_100,
                screen: "Live Data".to_string(),
                label: "Speed".to_string(),
                text: "42".to_string(),
                value: Some(42.0),
                exact: true,
                confidence: 0.998,
            }),
            Event::OcrVerdict(OcrVerdict {
                sample_id: 0,
                verdict: "kept".to_string(),
            }),
            // Superseded decision: first below threshold, then rescued.
            Event::Candidate(Candidate {
                series_idx: 0,
                label_idx: 0,
                key: "DID 0xF40D".to_string(),
                screen: "Live Data".to_string(),
                label: "Speed".to_string(),
                score: Some(0.4),
                pairs: 9,
                decision: CandidateDecision::BelowThreshold,
            }),
            Event::Candidate(Candidate {
                series_idx: 0,
                label_idx: 0,
                key: "DID 0xF40D".to_string(),
                screen: "Live Data".to_string(),
                label: "Speed".to_string(),
                score: Some(0.4),
                pairs: 9,
                decision: CandidateDecision::AcceptedRescued,
            }),
            Event::Lineage(Lineage {
                subject: "DID 0xF40D".to_string(),
                steps: vec![LineageStep {
                    generation: 0,
                    op: "seed-template".to_string(),
                    parent: None,
                    donor: None,
                    parent_error: None,
                }],
                best_error_history: vec![Some(0.5), Some(0.0)],
                final_error: Some(0.0),
                cache_hits: 3,
                evaluations: 100,
                generations: 2,
                stopped_by_threshold: true,
                expression: "x0 / 2".to_string(),
            }),
        ]
    }

    fn sample_desc() -> SensorDesc {
        SensorDesc {
            key: "DID 0xF40D".to_string(),
            screen: "Live Data".to_string(),
            label: "Speed".to_string(),
            kind: "formula".to_string(),
            formula: "X0 / 2".to_string(),
            series_idx: 0,
            label_idx: 0,
            score: Some(0.4),
            pairs: 9,
        }
    }

    #[test]
    fn assemble_links_events_into_a_chain() {
        let ledger = assemble(&sample_events(), &[sample_desc()]);
        assert_eq!(ledger.rejects.get("isotp.sequence_mismatch"), Some(&2));
        assert_eq!(ledger.chains.len(), 1);
        let chain = &ledger.chains[0];
        assert_eq!(chain.slug, "did-0xf40d");
        assert_eq!(chain.samples.len(), 1);
        assert_eq!(chain.samples[0].frame_times_us, vec![900, 950, 1_000]);
        assert_eq!(chain.samples[0].request_at_us, Some(800));
        assert_eq!(chain.ocr.len(), 1);
        assert_eq!(chain.ocr[0].verdict, "kept");
        // The later (rescued) decision supersedes the earlier rejection.
        assert_eq!(chain.candidates.len(), 1);
        assert_eq!(chain.candidates[0].decision, CandidateDecision::AcceptedRescued);
        assert_eq!(chain.lineage.as_ref().unwrap().expression, "x0 / 2");
        assert!(ledger.chain("did-0xf40d").is_some());
        assert!(ledger.chain("nope").is_none());
    }

    #[test]
    fn render_tells_the_whole_story() {
        let ledger = assemble(&sample_events(), &[sample_desc()]);
        let text = render(&ledger.chains[0]);
        for needle in [
            "DID 0xF40D",
            "X0 / 2",
            "raw CAN frames",
            "OCR samples",
            "accepted_rescued",
            "GP lineage",
            "seed-template",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        let rejects = render_rejects(&ledger.rejects);
        assert!(rejects.contains("isotp.sequence_mismatch: 2"), "{rejects}");
        assert!(render_rejects(&BTreeMap::new()).contains("none"));
    }

    #[test]
    fn decision_codes_are_stable() {
        let all = [
            (CandidateDecision::AcceptedStrict, "accepted_strict"),
            (CandidateDecision::AcceptedRescued, "accepted_rescued"),
            (CandidateDecision::BelowThreshold, "below_threshold"),
            (CandidateDecision::SeriesClaimed, "series_claimed"),
            (CandidateDecision::LabelClaimed, "label_claimed"),
            (CandidateDecision::TooFewPairs, "too_few_pairs"),
        ];
        for (decision, code) in all {
            assert_eq!(decision.code(), code);
        }
        assert!(CandidateDecision::AcceptedStrict.accepted());
        assert!(CandidateDecision::AcceptedRescued.accepted());
        assert!(!CandidateDecision::BelowThreshold.accepted());
    }

    #[test]
    fn ledger_round_trips_through_json() {
        let ledger = assemble(&sample_events(), &[sample_desc()]);
        let text = dpr_telemetry::json::to_string(&ledger).expect("serialize");
        let back: EvidenceLedger = dpr_telemetry::json::from_str(&text).expect("parse");
        assert_eq!(back, ledger);
        // And once more: serialization is deterministic.
        assert_eq!(dpr_telemetry::json::to_string(&back).unwrap(), text);
    }
}
