//! The bounded in-memory record ring.
//!
//! Every record the logger accepts lands here regardless of which
//! sinks are enabled, so `GET /debug/snapshot` can always show the
//! recent history of a process that was started with no logging
//! configured at all. The ring is a single short-critical-section
//! mutex around a `VecDeque`: a push is one lock, one `push_back`,
//! and at most one `pop_front` — overwritten records are counted,
//! never silently lost.

use crate::Record;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// One retained record plus its global sequence number. Sequence
/// numbers are assigned under the ring lock, so snapshot order ==
/// sequence order even under concurrent writers.
#[derive(Debug, Clone)]
pub struct RingEntry {
    /// Position in the total push order (0-based).
    pub seq: u64,
    /// The record itself.
    pub record: Arc<Record>,
}

struct RingInner {
    buf: VecDeque<RingEntry>,
    pushed: u64,
    overwritten: u64,
}

/// A bounded ring of the most recent log records.
pub struct Ring {
    inner: Mutex<RingInner>,
    capacity: usize,
}

impl Ring {
    /// A ring retaining at most `capacity` records (floored to 1).
    pub fn new(capacity: usize) -> Ring {
        Ring {
            inner: Mutex::new(RingInner {
                buf: VecDeque::new(),
                pushed: 0,
                overwritten: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// The retention bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends a record, evicting (and counting) the oldest when full.
    /// Returns the record's sequence number.
    pub fn push(&self, record: Arc<Record>) -> u64 {
        let mut inner = self.inner.lock();
        let seq = inner.pushed;
        inner.pushed += 1;
        if inner.buf.len() >= self.capacity {
            inner.buf.pop_front();
            inner.overwritten += 1;
        }
        inner.buf.push_back(RingEntry { seq, record });
        seq
    }

    /// The retained records, oldest first, in sequence order.
    pub fn snapshot(&self) -> Vec<RingEntry> {
        self.inner.lock().buf.iter().cloned().collect()
    }

    /// Total records ever pushed.
    pub fn pushed(&self) -> u64 {
        self.inner.lock().pushed
    }

    /// Records evicted to respect the capacity bound.
    pub fn overwritten(&self) -> u64 {
        self.inner.lock().overwritten
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().buf.len()
    }

    /// Whether nothing has been retained yet.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().buf.is_empty()
    }
}

impl std::fmt::Debug for Ring {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Ring")
            .field("len", &inner.buf.len())
            .field("capacity", &self.capacity)
            .field("pushed", &inner.pushed)
            .field("overwritten", &inner.overwritten)
            .finish()
    }
}
