//! Structured wide-event logging for the DP-Reverser workspace,
//! std-only like everything else.
//!
//! A log record is a *wide event*: a level, a `target` (the subsystem
//! emitting it), a human message, and typed key/value fields — plus
//! whatever correlation fields (`req_id`, `job_id`) are on the calling
//! thread's context stack at emit time. Timestamps are monotonic and
//! run-relative, microseconds since the process epoch shared with
//! `dpr-telemetry` ([`dpr_telemetry::process_epoch`]), so log lines,
//! span traces, and metrics all sit on one timeline.
//!
//! Sinks, all optional and all cheap when off:
//!
//! * a bounded in-memory [`Ring`] (always on) that `GET /debug/snapshot`
//!   serves, with overwritten records counted;
//! * human-readable stderr, enabled by `DPR_LOG=trace|debug|info|warn|error`;
//! * JSON-lines to a file, enabled by `DPR_LOG_JSON=<path>` — one JSON
//!   object per line, flushed per record so `grep job-000042` over the
//!   file reconstructs a job's full story even after a crash;
//! * dynamic [`LogSink`] taps, added and removed at runtime — this is
//!   how `dpr-serve` streams one job's records to `GET /jobs/<id>/events`
//!   subscribers without the logger knowing the service exists.
//!
//! The correlation context is a thread-local stack ([`push_context`])
//! with an explicit snapshot/re-enter API ([`context_snapshot`],
//! [`with_context`]) so thread pools (`dpr-par`) can carry the
//! submitting thread's `job_id` onto their workers.
//!
//! Logging must never change analysis output: nothing in this crate
//! feeds back into the pipeline, and `tests/log_identity.rs` pins the
//! canonical result JSON byte-identical with logging on and off.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ring;

pub use ring::{Ring, RingEntry};

use dpr_telemetry::json::Value;
use parking_lot::{Mutex, RwLock};
use std::cell::RefCell;
use std::fs::File;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Environment variable selecting the stderr sink level
/// (`trace|debug|info|warn|error`, or `off`/unset for none).
pub const LOG_ENV: &str = "DPR_LOG";

/// Environment variable naming the JSON-lines sink file.
pub const LOG_JSON_ENV: &str = "DPR_LOG_JSON";

/// How many records the in-memory ring retains by default.
pub const DEFAULT_RING_CAPACITY: usize = 512;

/// Severity of a record, ordered `Trace < Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Finest-grained tracing.
    Trace = 0,
    /// Diagnostic detail (per-request HTTP access lines live here).
    Debug = 1,
    /// Normal operational events (job lifecycle, stage transitions).
    Info = 2,
    /// Something surprising but survivable.
    Warn = 3,
    /// Something failed.
    Error = 4,
}

/// The stderr sink's "disabled" sentinel, one past [`Level::Error`].
const LEVEL_OFF: u8 = 5;

impl Level {
    /// The lowercase name JSON lines and stderr use.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Trace => "trace",
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Parses a `DPR_LOG`-style level name (case-insensitive).
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "trace" => Some(Level::Trace),
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" | "warning" => Some(Level::Warn),
            "error" => Some(Level::Error),
            _ => None,
        }
    }

    /// The level with this discriminant (`0..=4`), `None` otherwise.
    pub fn from_u8(v: u8) -> Option<Level> {
        match v {
            0 => Some(Level::Trace),
            1 => Some(Level::Debug),
            2 => Some(Level::Info),
            3 => Some(Level::Warn),
            4 => Some(Level::Error),
            _ => None,
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A typed field value. Every variant round-trips through the
/// JSON-lines sink (`crates/log/tests` holds the property test).
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// A string.
    Str(String),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (non-finite values serialize as JSON `null`).
    F64(f64),
    /// A boolean.
    Bool(bool),
}

impl FieldValue {
    /// The JSON value this field serializes as.
    pub fn to_value(&self) -> Value {
        match self {
            FieldValue::Str(s) => Value::Str(s.clone()),
            FieldValue::U64(n) => Value::UInt(*n),
            FieldValue::I64(n) => {
                if *n >= 0 {
                    Value::UInt(*n as u64)
                } else {
                    Value::Int(*n)
                }
            }
            FieldValue::F64(f) => Value::Float(*f),
            FieldValue::Bool(b) => Value::Bool(*b),
        }
    }

    /// Reads a field back from parsed JSON (signed/unsigned integers
    /// normalize to whichever variant the JSON number landed in).
    pub fn from_value(value: &Value) -> Option<FieldValue> {
        match value {
            Value::Str(s) => Some(FieldValue::Str(s.clone())),
            Value::UInt(n) => Some(FieldValue::U64(*n)),
            Value::Int(n) => Some(FieldValue::I64(*n)),
            Value::Float(f) => Some(FieldValue::F64(*f)),
            Value::Bool(b) => Some(FieldValue::Bool(*b)),
            _ => None,
        }
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> FieldValue {
        FieldValue::U64(v)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> FieldValue {
        FieldValue::I64(v)
    }
}

impl From<i32> for FieldValue {
    fn from(v: i32) -> FieldValue {
        FieldValue::I64(v as i64)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> FieldValue {
        FieldValue::F64(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}

/// One structured log record: the wide event.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Microseconds since [`dpr_telemetry::process_epoch`].
    pub t_us: u64,
    /// Severity.
    pub level: Level,
    /// The emitting subsystem (`http`, `serve.worker`, `pipeline`, …).
    pub target: String,
    /// Human message.
    pub message: String,
    /// Context fields (innermost last) followed by call-site fields.
    pub fields: Vec<(String, FieldValue)>,
}

impl Record {
    /// The first field with this key (context fields included).
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// The JSON object this record serializes as: keys `t_us`, `level`,
    /// `target`, `msg`, `fields`.
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("t_us".to_string(), Value::UInt(self.t_us)),
            ("level".to_string(), Value::Str(self.level.as_str().to_string())),
            ("target".to_string(), Value::Str(self.target.clone())),
            ("msg".to_string(), Value::Str(self.message.clone())),
            (
                "fields".to_string(),
                Value::Object(
                    self.fields
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_value()))
                        .collect(),
                ),
            ),
        ])
    }

    /// One compact JSON line (no trailing newline) — the JSON-lines
    /// sink's grammar.
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }

    /// Parses a JSON line back into a record (used by tests and the
    /// snapshot pretty-printer; unknown field value shapes are skipped).
    pub fn from_json(line: &str) -> Option<Record> {
        let Value::Object(entries) = dpr_telemetry::json::parse(line).ok()? else {
            return None;
        };
        let get = |key: &str| entries.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let t_us = match get("t_us")? {
            Value::UInt(n) => *n,
            _ => return None,
        };
        let level = match get("level")? {
            Value::Str(s) => Level::parse(s)?,
            _ => return None,
        };
        let (Some(Value::Str(target)), Some(Value::Str(message))) = (get("target"), get("msg"))
        else {
            return None;
        };
        let fields = match get("fields") {
            Some(Value::Object(pairs)) => pairs
                .iter()
                .filter_map(|(k, v)| FieldValue::from_value(v).map(|fv| (k.clone(), fv)))
                .collect(),
            _ => Vec::new(),
        };
        Some(Record {
            t_us,
            level,
            target: target.clone(),
            message: message.clone(),
            fields,
        })
    }
}

/// Microseconds since the process epoch — the timestamp every record
/// carries, shared with `dpr-telemetry` span timelines.
pub fn now_us() -> u64 {
    dpr_telemetry::process_epoch().elapsed().as_micros() as u64
}

// ———————————————————————— correlation context ————————————————————————

thread_local! {
    static CONTEXT: RefCell<Vec<(&'static str, String)>> = const { RefCell::new(Vec::new()) };
}

/// Pops the pushed context frame on drop.
#[must_use = "the context pops when this guard drops"]
#[derive(Debug)]
pub struct ContextGuard {
    restore_len: usize,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CONTEXT.with(|ctx| ctx.borrow_mut().truncate(self.restore_len));
    }
}

/// Pushes one correlation field (e.g. `("job_id", "job-000042")`) onto
/// this thread's context stack; every record emitted on this thread
/// carries it until the returned guard drops.
pub fn push_context(key: &'static str, value: impl Into<String>) -> ContextGuard {
    CONTEXT.with(|ctx| {
        let mut ctx = ctx.borrow_mut();
        let guard = ContextGuard {
            restore_len: ctx.len(),
        };
        ctx.push((key, value.into()));
        guard
    })
}

/// A copy of this thread's current context stack, outermost first —
/// hand it to [`with_context`] on another thread to inherit it
/// (`dpr-par` does this for its pool workers).
pub fn context_snapshot() -> Vec<(&'static str, String)> {
    CONTEXT.with(|ctx| ctx.borrow().clone())
}

/// Runs `f` with `inherited` appended to this thread's context stack.
pub fn with_context<R>(inherited: &[(&'static str, String)], f: impl FnOnce() -> R) -> R {
    let restore_len = CONTEXT.with(|ctx| {
        let mut ctx = ctx.borrow_mut();
        let len = ctx.len();
        ctx.extend(inherited.iter().cloned());
        len
    });
    let _guard = ContextGuard { restore_len };
    f()
}

// ———————————————————————————— sinks ————————————————————————————

/// A dynamic record tap: added and removed at runtime, called for
/// every accepted record at [`Level::Debug`] or above. Must not block —
/// taps run on the emitting thread.
pub trait LogSink: Send + Sync {
    /// Observe one record.
    fn record(&self, record: &Arc<Record>);
}

/// Tuning for a standalone [`Logger`] (the global one configures
/// itself from `DPR_LOG` / `DPR_LOG_JSON`).
#[derive(Debug, Default)]
pub struct LogConfig {
    /// Stderr sink level, `None` for off.
    pub stderr: Option<Level>,
    /// JSON-lines sink path, `None` for off.
    pub json_path: Option<std::path::PathBuf>,
    /// Ring capacity; 0 means [`DEFAULT_RING_CAPACITY`].
    pub ring_capacity: usize,
}

/// The logging pipeline: level gate, ring, static sinks, dynamic taps.
pub struct Logger {
    ring: Ring,
    /// Records below this never enter the ring (Info by default).
    ring_level: Level,
    /// Stderr sink level, [`LEVEL_OFF`] when disabled.
    stderr_level: AtomicU8,
    /// JSON-lines sink level as a gate: presence of the file enables it.
    json: Mutex<Option<File>>,
    json_active: AtomicU8,
    taps: RwLock<Vec<(u64, Arc<dyn LogSink>)>>,
    next_tap: AtomicU64,
    tap_count: AtomicUsize,
}

impl Logger {
    /// A logger with explicit configuration (tests; the process-global
    /// [`logger`] reads the environment instead).
    pub fn new(config: LogConfig) -> Logger {
        let capacity = if config.ring_capacity == 0 {
            DEFAULT_RING_CAPACITY
        } else {
            config.ring_capacity
        };
        let logger = Logger {
            ring: Ring::new(capacity),
            ring_level: Level::Info,
            stderr_level: AtomicU8::new(config.stderr.map_or(LEVEL_OFF, |l| l as u8)),
            json: Mutex::new(None),
            json_active: AtomicU8::new(0),
            taps: RwLock::new(Vec::new()),
            next_tap: AtomicU64::new(1),
            tap_count: AtomicUsize::new(0),
        };
        if let Some(path) = &config.json_path {
            let _ = logger.set_json_path(Some(path));
        }
        logger
    }

    /// A logger configured from `DPR_LOG` and `DPR_LOG_JSON`.
    pub fn from_env() -> Logger {
        Logger::new(LogConfig {
            stderr: std::env::var(LOG_ENV).ok().and_then(|v| Level::parse(&v)),
            json_path: std::env::var(LOG_JSON_ENV)
                .ok()
                .filter(|v| !v.trim().is_empty())
                .map(std::path::PathBuf::from),
            ring_capacity: 0,
        })
    }

    /// The always-on record ring.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// Changes the stderr sink level at runtime (`None` disables).
    pub fn set_stderr_level(&self, level: Option<Level>) {
        self.stderr_level
            .store(level.map_or(LEVEL_OFF, |l| l as u8), Ordering::Relaxed);
    }

    /// Points the JSON-lines sink at `path` (truncating), or disables
    /// it with `None`.
    pub fn set_json_path(&self, path: Option<&Path>) -> std::io::Result<()> {
        let file = match path {
            Some(p) => Some(File::create(p)?),
            None => None,
        };
        self.json_active
            .store(u8::from(file.is_some()), Ordering::Relaxed);
        *self.json.lock() = file;
        Ok(())
    }

    /// Whether a record at `level` would go anywhere. The ring accepts
    /// Info and above, so only Trace/Debug records can be gated out
    /// entirely.
    pub fn enabled(&self, level: Level) -> bool {
        if level >= self.ring_level {
            return true;
        }
        if (level as u8) >= self.stderr_level.load(Ordering::Relaxed) {
            return true;
        }
        if self.json_active.load(Ordering::Relaxed) != 0 {
            return true;
        }
        self.tap_count.load(Ordering::Relaxed) > 0
    }

    /// Attaches a dynamic tap; returns the id [`Logger::remove_sink`]
    /// takes.
    pub fn add_sink(&self, sink: Arc<dyn LogSink>) -> u64 {
        let id = self.next_tap.fetch_add(1, Ordering::Relaxed);
        let mut taps = self.taps.write();
        taps.push((id, sink));
        self.tap_count.store(taps.len(), Ordering::Relaxed);
        id
    }

    /// Detaches a tap added by [`Logger::add_sink`].
    pub fn remove_sink(&self, id: u64) {
        let mut taps = self.taps.write();
        taps.retain(|(tap_id, _)| *tap_id != id);
        self.tap_count.store(taps.len(), Ordering::Relaxed);
    }

    /// Emits one record: context fields are prepended, the timestamp is
    /// taken now, and every enabled sink sees it.
    pub fn log(&self, level: Level, target: &str, message: &str, fields: &[(&str, FieldValue)]) {
        if !self.enabled(level) {
            return;
        }
        let mut all = CONTEXT.with(|ctx| {
            ctx.borrow()
                .iter()
                .map(|(k, v)| ((*k).to_string(), FieldValue::Str(v.clone())))
                .collect::<Vec<_>>()
        });
        all.extend(
            fields
                .iter()
                .map(|(k, v)| ((*k).to_string(), v.clone())),
        );
        let record = Arc::new(Record {
            t_us: now_us(),
            level,
            target: target.to_string(),
            message: message.to_string(),
            fields: all,
        });
        if level >= self.ring_level {
            self.ring.push(Arc::clone(&record));
        }
        if (level as u8) >= self.stderr_level.load(Ordering::Relaxed) {
            let mut line = format!(
                "[{:>10.3}ms {:>5} {}] {}",
                record.t_us as f64 / 1000.0,
                level.as_str(),
                record.target,
                record.message
            );
            for (k, v) in &record.fields {
                match v {
                    FieldValue::Str(s) => line.push_str(&format!(" {k}={s}")),
                    other => line.push_str(&format!(" {k}={}", other.to_value().to_json())),
                }
            }
            eprintln!("{line}");
        }
        if self.json_active.load(Ordering::Relaxed) != 0 {
            let line = record.to_json();
            let mut json = self.json.lock();
            if let Some(file) = json.as_mut() {
                // Write-plus-flush per record: the file is greppable
                // mid-run and survives an abrupt kill.
                let _ = writeln!(file, "{line}").and_then(|()| file.flush());
            }
        }
        if self.tap_count.load(Ordering::Relaxed) > 0 {
            for (_, tap) in self.taps.read().iter() {
                tap.record(&record);
            }
        }
    }
}

impl std::fmt::Debug for Logger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Logger")
            .field("ring", &self.ring)
            .field("stderr_level", &self.stderr_level.load(Ordering::Relaxed))
            .field("json", &(self.json_active.load(Ordering::Relaxed) != 0))
            .field("taps", &self.tap_count.load(Ordering::Relaxed))
            .finish()
    }
}

// ———————————————————————— process-global logger ————————————————————————

static GLOBAL: OnceLock<Logger> = OnceLock::new();

/// The process-global logger, configured from the environment on first
/// use. Runtime changes go through [`set_stderr_level`] /
/// [`set_json_path`].
pub fn logger() -> &'static Logger {
    GLOBAL.get_or_init(Logger::from_env)
}

/// Whether a record at `level` would reach any sink of the global
/// logger (cheap pre-check for call sites that format eagerly).
pub fn enabled(level: Level) -> bool {
    logger().enabled(level)
}

/// Emits a record through the global logger.
pub fn log(level: Level, target: &str, message: &str, fields: &[(&str, FieldValue)]) {
    logger().log(level, target, message, fields);
}

/// [`log`] at [`Level::Trace`].
pub fn trace(target: &str, message: &str, fields: &[(&str, FieldValue)]) {
    log(Level::Trace, target, message, fields);
}

/// [`log`] at [`Level::Debug`].
pub fn debug(target: &str, message: &str, fields: &[(&str, FieldValue)]) {
    log(Level::Debug, target, message, fields);
}

/// [`log`] at [`Level::Info`].
pub fn info(target: &str, message: &str, fields: &[(&str, FieldValue)]) {
    log(Level::Info, target, message, fields);
}

/// [`log`] at [`Level::Warn`].
pub fn warn(target: &str, message: &str, fields: &[(&str, FieldValue)]) {
    log(Level::Warn, target, message, fields);
}

/// [`log`] at [`Level::Error`].
pub fn error(target: &str, message: &str, fields: &[(&str, FieldValue)]) {
    log(Level::Error, target, message, fields);
}

/// Attaches a dynamic tap to the global logger.
pub fn add_sink(sink: Arc<dyn LogSink>) -> u64 {
    logger().add_sink(sink)
}

/// Detaches a global-logger tap.
pub fn remove_sink(id: u64) {
    logger().remove_sink(id);
}

/// Changes the global stderr sink level at runtime.
pub fn set_stderr_level(level: Option<Level>) {
    logger().set_stderr_level(level);
}

/// Points the global JSON-lines sink at a new path (or disables it).
pub fn set_json_path(path: Option<&Path>) -> std::io::Result<()> {
    logger().set_json_path(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parse_and_order() {
        assert_eq!(Level::parse("INFO"), Some(Level::Info));
        assert_eq!(Level::parse(" warn "), Some(Level::Warn));
        assert_eq!(Level::parse("nope"), None);
        assert!(Level::Trace < Level::Debug && Level::Warn < Level::Error);
        for v in 0..5 {
            assert_eq!(Level::from_u8(v).map(|l| l as u8), Some(v));
        }
        assert_eq!(Level::from_u8(LEVEL_OFF), None);
    }

    #[test]
    fn records_carry_context_fields() {
        let logger = Logger::new(LogConfig::default());
        {
            let _req = push_context("req_id", "req-000007");
            let _job = push_context("job_id", "job-000042");
            logger.log(
                Level::Info,
                "test",
                "hello",
                &[("n", FieldValue::U64(3))],
            );
        }
        logger.log(Level::Info, "test", "after", &[]);
        let entries = logger.ring().snapshot();
        assert_eq!(entries.len(), 2);
        let first = &entries[0].record;
        assert_eq!(first.field("req_id"), Some(&FieldValue::Str("req-000007".into())));
        assert_eq!(first.field("job_id"), Some(&FieldValue::Str("job-000042".into())));
        assert_eq!(first.field("n"), Some(&FieldValue::U64(3)));
        // The guards dropped: the second record has no context.
        assert!(entries[1].record.field("req_id").is_none());
    }

    #[test]
    fn with_context_inherits_a_snapshot() {
        let _outer = push_context("job_id", "job-000001");
        let snapshot = context_snapshot();
        let inherited = std::thread::spawn(move || {
            with_context(&snapshot, || {
                assert_eq!(context_snapshot().len(), 1);
                context_snapshot()[0].1.clone()
            })
        })
        .join()
        .unwrap();
        assert_eq!(inherited, "job-000001");
    }

    #[test]
    fn debug_records_are_gated_without_sinks() {
        let logger = Logger::new(LogConfig::default());
        assert!(!logger.enabled(Level::Debug));
        assert!(logger.enabled(Level::Info));
        logger.log(Level::Debug, "test", "dropped", &[]);
        assert!(logger.ring().is_empty());
        logger.set_stderr_level(Some(Level::Debug));
        assert!(logger.enabled(Level::Debug));
        logger.set_stderr_level(None);
        assert!(!logger.enabled(Level::Debug));
    }

    #[test]
    fn taps_see_records_and_detach() {
        struct Collect(Mutex<Vec<String>>);
        impl LogSink for Collect {
            fn record(&self, record: &Arc<Record>) {
                self.0.lock().push(record.message.clone());
            }
        }
        let logger = Logger::new(LogConfig::default());
        let tap = Arc::new(Collect(Mutex::new(Vec::new())));
        let id = logger.add_sink(Arc::clone(&tap) as Arc<dyn LogSink>);
        // A tap makes Debug reachable.
        assert!(logger.enabled(Level::Debug));
        logger.log(Level::Debug, "test", "seen", &[]);
        logger.remove_sink(id);
        logger.log(Level::Info, "test", "unseen", &[]);
        assert_eq!(tap.0.lock().clone(), vec!["seen".to_string()]);
    }

    #[test]
    fn json_line_grammar_has_required_keys() {
        let record = Record {
            t_us: 42,
            level: Level::Warn,
            target: "serve.worker".into(),
            message: "job \"quoted\" done".into(),
            fields: vec![
                ("job_id".into(), FieldValue::Str("job-000001".into())),
                ("ok".into(), FieldValue::Bool(true)),
                ("delta".into(), FieldValue::I64(-3)),
            ],
        };
        let line = record.to_json();
        let back = Record::from_json(&line).expect("line parses");
        assert_eq!(back, record);
        for key in ["\"t_us\"", "\"level\"", "\"target\"", "\"msg\"", "\"fields\""] {
            assert!(line.contains(key), "{line}");
        }
    }
}
