//! The ring buffer's bounded-loss contract under contention:
//! concurrent writers with a small capacity must never deadlock,
//! never lose a record silently (overwritten == pushed - retained),
//! and the retained records must be the *most recent* tail of the
//! total push order.

use dpr_log::{FieldValue, Level, Record, Ring};
use std::sync::Arc;

fn record(writer: usize, n: usize) -> Arc<Record> {
    Arc::new(Record {
        t_us: n as u64,
        level: Level::Info,
        target: "test".into(),
        message: format!("w{writer}-{n}"),
        fields: vec![("writer".into(), FieldValue::U64(writer as u64))],
    })
}

#[test]
fn concurrent_writers_account_for_every_record() {
    const WRITERS: usize = 8;
    const PER_WRITER: usize = 500;
    const CAPACITY: usize = 32;
    let ring = Arc::new(Ring::new(CAPACITY));
    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for n in 0..PER_WRITER {
                    ring.push(record(w, n));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let total = (WRITERS * PER_WRITER) as u64;
    assert_eq!(ring.pushed(), total);
    assert_eq!(ring.len(), CAPACITY);
    // Drop counting: everything not retained was counted overwritten.
    assert_eq!(ring.overwritten(), total - CAPACITY as u64);

    // Wrap-around ordering: the snapshot is the contiguous tail of the
    // push order — strictly increasing seq, ending at pushed - 1.
    let entries = ring.snapshot();
    assert_eq!(entries.len(), CAPACITY);
    for pair in entries.windows(2) {
        assert_eq!(pair[1].seq, pair[0].seq + 1, "non-contiguous ring");
    }
    assert_eq!(entries.last().unwrap().seq, total - 1);
    assert_eq!(entries.first().unwrap().seq, total - CAPACITY as u64);

    // Per-writer order is preserved within the retained tail: each
    // writer's surviving records appear in its own push order.
    for w in 0..WRITERS {
        let ns: Vec<u64> = entries
            .iter()
            .filter(|e| e.record.field("writer") == Some(&FieldValue::U64(w as u64)))
            .map(|e| e.record.t_us)
            .collect();
        assert!(ns.windows(2).all(|p| p[0] < p[1]), "writer {w} reordered: {ns:?}");
    }
}

#[test]
fn wrap_around_keeps_newest_and_counts_drops_exactly() {
    let ring = Ring::new(4);
    for n in 0..10u64 {
        let seq = ring.push(record(0, n as usize));
        assert_eq!(seq, n);
    }
    assert_eq!(ring.capacity(), 4);
    assert_eq!(ring.overwritten(), 6);
    let kept: Vec<String> = ring
        .snapshot()
        .iter()
        .map(|e| e.record.message.clone())
        .collect();
    assert_eq!(kept, vec!["w0-6", "w0-7", "w0-8", "w0-9"]);
}

#[test]
fn under_capacity_nothing_is_dropped() {
    let ring = Ring::new(16);
    for n in 0..5 {
        ring.push(record(1, n));
    }
    assert_eq!(ring.len(), 5);
    assert_eq!(ring.overwritten(), 0);
    assert!(!ring.is_empty());
}
