//! Property: the JSON-lines sink grammar round-trips every field
//! type — strings (including quotes, backslashes, control characters,
//! and non-ASCII), unsigned/signed integers, finite floats, and
//! booleans — plus the record envelope itself.

use dpr_log::{FieldValue, Level, Record};
use proptest::prelude::*;

/// A character palette that stresses JSON string escaping.
const PALETTE: &[char] = &[
    'a', 'Z', '0', ' ', '"', '\\', '/', '\n', '\r', '\t', '\u{8}', '\u{c}', '\u{1}', 'é', '√',
    '🚗', '{', '}', ':', ',',
];

fn string_strategy() -> BoxedStrategy<String> {
    proptest::collection::vec(0usize..PALETTE.len(), 0..12)
        .prop_map(|picks| picks.into_iter().map(|i| PALETTE[i]).collect())
        .boxed()
}

fn field_strategy() -> BoxedStrategy<FieldValue> {
    prop_oneof![
        string_strategy().prop_map(FieldValue::Str),
        any::<u64>().prop_map(FieldValue::U64),
        any::<i64>().prop_map(FieldValue::I64),
        any::<u64>()
            .prop_map(f64::from_bits)
            .prop_filter("finite floats only (JSON has no NaN/Inf)", |f| f.is_finite())
            .prop_map(FieldValue::F64),
        any::<bool>().prop_map(FieldValue::Bool),
    ]
    .boxed()
}

/// JSON numbers erase the signed/unsigned distinction for
/// non-negative values: `I64(3)` comes back as `U64(3)`. Everything
/// else must be exact (floats bit-exact thanks to shortest-round-trip
/// formatting; `-0.0 == 0.0` is accepted as equal).
fn semantically_equal(sent: &FieldValue, got: &FieldValue) -> bool {
    match (sent, got) {
        (FieldValue::I64(a), FieldValue::U64(b)) => *a >= 0 && *a as u64 == *b,
        (FieldValue::U64(a), FieldValue::I64(b)) => *b >= 0 && *b as u64 == *a,
        (FieldValue::F64(a), FieldValue::F64(b)) => a == b,
        (a, b) => a == b,
    }
}

proptest! {
    #[test]
    fn every_field_type_round_trips(
        t_us in any::<u64>(),
        level in 0u8..5,
        target in string_strategy(),
        message in string_strategy(),
        fields in proptest::collection::vec((string_strategy(), field_strategy()), 0..8),
    ) {
        let record = Record {
            t_us,
            level: Level::from_u8(level).unwrap(),
            target,
            message,
            fields,
        };
        let line = record.to_json();
        prop_assert!(!line.contains('\n'), "a JSON line must be one line: {line:?}");
        let back = Record::from_json(&line).expect("line parses");
        prop_assert_eq!(back.t_us, record.t_us);
        prop_assert_eq!(back.level, record.level);
        prop_assert_eq!(&back.target, &record.target);
        prop_assert_eq!(&back.message, &record.message);
        prop_assert_eq!(back.fields.len(), record.fields.len());
        for ((sk, sv), (gk, gv)) in record.fields.iter().zip(back.fields.iter()) {
            prop_assert_eq!(sk, gk);
            prop_assert!(
                semantically_equal(sv, gv),
                "field {:?}: sent {:?}, got {:?} via {}", sk, sv, gv, line
            );
        }
    }
}
