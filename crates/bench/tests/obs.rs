//! End-to-end observability check: a fleet run with `DPR_TRACE_EVENTS`
//! set produces a Chrome Trace Event JSON whose complete events include
//! a `pipeline`-rooted span and, under `DPR_THREADS=2`, at least two
//! distinct thread ids (the `dpr-par` workers record as their own rows).
//!
//! One test function on purpose: it mutates process environment
//! variables, which must not race a sibling test.

use dpr_bench::fleet_traced;
use dpr_telemetry::json::{self, Value};
use dpr_vehicle::profiles::CarId;
use std::collections::BTreeSet;
use std::time::Duration;

fn field(event: &Value, key: &str) -> Option<Value> {
    let Value::Object(entries) = event else {
        return None;
    };
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone())
}

#[test]
fn fleet_trace_export_has_pipeline_events_across_threads() {
    let out = std::env::temp_dir().join(format!("dpr-obs-fleet-{}.json", std::process::id()));
    std::env::set_var("DPR_QUICK", "1");
    std::env::set_var("DPR_THREADS", "2");
    // Force pool dispatch: the adaptive batch policy (correctly) drains
    // quick-mode populations inline — especially on 1-core CI hosts —
    // and this test exists to see worker spans in the trace.
    std::env::set_var(dpr_gp::BATCH_ENV, "0");
    std::env::set_var("DPR_TRACE_EVENTS", &out);

    let run = fleet_traced(&[CarId::M], 1, Duration::ZERO);

    std::env::remove_var("DPR_TRACE_EVENTS");
    std::env::remove_var(dpr_gp::BATCH_ENV);
    std::env::remove_var("DPR_THREADS");
    std::env::remove_var("DPR_QUICK");

    assert_eq!(run.results.len(), 1);
    assert_eq!(run.trace_events.as_deref(), Some(out.as_path()));
    assert!(run.metrics_addr.is_none(), "no DPR_METRICS_ADDR was set");

    let text = std::fs::read_to_string(&out).expect("trace file written");
    let doc = json::parse(&text).expect("trace file is valid JSON");
    let events = match field(&doc, "traceEvents") {
        Some(Value::Array(events)) => events,
        other => panic!("expected traceEvents array, got {other:?}"),
    };

    let complete: Vec<&Value> = events
        .iter()
        .filter(|e| field(e, "ph") == Some(Value::Str("X".into())))
        .collect();
    assert!(
        complete
            .iter()
            .any(|e| field(e, "name") == Some(Value::Str("pipeline".into()))),
        "no pipeline-rooted complete event in {} events",
        complete.len()
    );

    let tids: BTreeSet<u64> = complete
        .iter()
        .filter_map(|e| match field(e, "tid") {
            Some(Value::UInt(tid)) => Some(tid),
            _ => None,
        })
        .collect();
    assert!(
        tids.len() >= 2,
        "expected spans from at least two threads under DPR_THREADS=2, got tids {tids:?}"
    );

    // Every complete event carries the timeline fields Perfetto needs.
    for event in &complete {
        assert!(matches!(field(event, "ts"), Some(Value::UInt(_))), "ts missing");
        assert!(matches!(field(event, "dur"), Some(Value::UInt(_))), "dur missing");
        assert!(matches!(field(event, "pid"), Some(Value::UInt(_))), "pid missing");
    }

    let _ = std::fs::remove_file(&out);
}
