//! Metric-name drift guard: every metric the pipeline emits must appear
//! in the "Metrics taxonomy" table in `DESIGN.md`. A rename (or a new
//! signal) that skips the documentation fails here with the list of
//! undocumented names, so dashboards and the regression gate never
//! chase metrics that silently changed spelling.
//!
//! Env-test pattern: one test per file — it owns `DPR_QUICK` for the
//! whole process.

use dp_reverser::DpReverser;
use dpr_bench::{car_seed, collect_car, experiment_config};
use dpr_capture::{record_report, CaptureReader, CaptureWriter};
use dpr_telemetry::Registry;
use dpr_vehicle::profiles::CarId;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Does `name` match `pattern`? Patterns are dotted metric names whose
/// `<placeholder>` segments match one name segment each — except in
/// final position, where a placeholder swallows the rest of the name
/// (so `span.<path>` covers `span.pipeline.inference.gp.fit`).
fn matches(pattern: &str, name: &str) -> bool {
    let pats: Vec<&str> = pattern.split('.').collect();
    let segs: Vec<&str> = name.split('.').collect();
    if segs.len() < pats.len() {
        return false;
    }
    for (i, pat) in pats.iter().enumerate() {
        let wild = pat.starts_with('<');
        let last = i == pats.len() - 1;
        match (wild, last) {
            (true, true) => return true, // swallows the tail
            (true, false) => continue,
            (false, _) => {
                if segs.get(i) != Some(pat) {
                    return false;
                }
            }
        }
    }
    segs.len() == pats.len()
}

/// Pulls the documented metric patterns out of DESIGN.md: every
/// backtick-quoted token in the first column of the taxonomy table rows.
fn documented_patterns() -> Vec<String> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../DESIGN.md");
    let text = std::fs::read_to_string(path).expect("read DESIGN.md");
    let section = text
        .split("### Metrics taxonomy")
        .nth(1)
        .expect("DESIGN.md has a 'Metrics taxonomy' section");
    let mut patterns = Vec::new();
    for line in section.lines() {
        if line.starts_with("## ") || line.starts_with("### ") {
            break; // next section
        }
        let Some(row) = line.strip_prefix('|') else {
            continue;
        };
        let Some(cell) = row.split('|').next() else {
            continue;
        };
        let cell = cell.trim();
        if let Some(name) = cell.strip_prefix('`').and_then(|c| c.strip_suffix('`')) {
            patterns.push(name.to_string());
        }
    }
    assert!(
        patterns.len() >= 10,
        "taxonomy table looks truncated: only {} rows parsed",
        patterns.len()
    );
    patterns
}

#[test]
fn every_emitted_metric_is_documented_in_design_md() {
    std::env::set_var("DPR_QUICK", "1");

    let registry = Arc::new(Registry::new());
    dpr_telemetry::scoped(Arc::clone(&registry), || {
        // Car M (IsoTp, formula + enum ESVs) and car B (VwTp) together
        // exercise both transport schemes, OCR, association, and GP.
        for id in [CarId::M, CarId::B] {
            let seed = car_seed(id);
            let report = collect_car(id, seed, 4);
            let pipeline = DpReverser::new(experiment_config(id, seed));
            pipeline.analyze(&report.log, &report.frames, Some(&report.execution));

            if id == CarId::M {
                // Round-trip through a capture (with a damaged span so
                // the CRC-skip path lights up) to emit the capture.*
                // family too.
                let mut writer = CaptureWriter::new(Vec::new()).unwrap();
                record_report(&report, &mut writer).unwrap();
                let mut bytes = writer.finish().unwrap();
                let start = bytes.len() / 3;
                for b in &mut bytes[start..start + 200] {
                    *b ^= 0x55;
                }
                let reader = CaptureReader::new(bytes.as_slice()).unwrap();
                pipeline.analyze_capture(reader);
            }
        }
    });

    let snapshot = registry.snapshot();
    let emitted: BTreeSet<&String> = snapshot
        .counters
        .keys()
        .chain(snapshot.gauges.keys())
        .chain(snapshot.histograms.keys())
        .collect();
    assert!(
        emitted.len() >= 20,
        "suspiciously few metrics emitted ({}) — did telemetry get disabled?",
        emitted.len()
    );

    let patterns = documented_patterns();
    let undocumented: Vec<&str> = emitted
        .iter()
        .filter(|name| !patterns.iter().any(|p| matches(p, name)))
        .map(|name| name.as_str())
        .collect();
    assert!(
        undocumented.is_empty(),
        "metrics emitted but missing from DESIGN.md's 'Metrics taxonomy' table:\n  {}",
        undocumented.join("\n  ")
    );
}
