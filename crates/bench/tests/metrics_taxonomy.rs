//! Metric-name drift guard: every metric the pipeline emits must appear
//! in the "Metrics taxonomy" table in `DESIGN.md`. A rename (or a new
//! signal) that skips the documentation fails here with the list of
//! undocumented names, so dashboards and the regression gate never
//! chase metrics that silently changed spelling.
//!
//! Env-test pattern: one test per file — it owns `DPR_QUICK` for the
//! whole process.

use dp_reverser::DpReverser;
use dpr_bench::{car_seed, collect_car, experiment_config};
use dpr_capture::{record_report, CaptureReader, CaptureWriter};
use dpr_serve::{AnalysisService, Analyzer, JobInput, ServiceConfig};
use dpr_telemetry::Registry;
use dpr_vehicle::profiles::CarId;
use std::collections::BTreeSet;
use std::io::{Read, Write};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Does `name` match `pattern`? Patterns are dotted metric names whose
/// `<placeholder>` segments match one name segment each — except in
/// final position, where a placeholder swallows the rest of the name
/// (so `span.<path>` covers `span.pipeline.inference.gp.fit`). A
/// placeholder embedded after a literal prefix (`http_<status>`)
/// matches the remainder of its own segment only.
fn matches(pattern: &str, name: &str) -> bool {
    let pats: Vec<&str> = pattern.split('.').collect();
    let segs: Vec<&str> = name.split('.').collect();
    if segs.len() < pats.len() {
        return false;
    }
    for (i, pat) in pats.iter().enumerate() {
        let last = i == pats.len() - 1;
        match pat.find('<') {
            Some(0) if last => return true, // swallows the tail
            Some(0) => continue,
            Some(at) => {
                if !segs.get(i).is_some_and(|seg| seg.starts_with(&pat[..at])) {
                    return false;
                }
            }
            None => {
                if segs.get(i) != Some(pat) {
                    return false;
                }
            }
        }
    }
    segs.len() == pats.len()
}

/// Pulls the documented metric patterns out of DESIGN.md: every
/// backtick-quoted token in the first column of the taxonomy table rows.
fn documented_patterns() -> Vec<String> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../DESIGN.md");
    let text = std::fs::read_to_string(path).expect("read DESIGN.md");
    let section = text
        .split("### Metrics taxonomy")
        .nth(1)
        .expect("DESIGN.md has a 'Metrics taxonomy' section");
    let mut patterns = Vec::new();
    for line in section.lines() {
        if line.starts_with("## ") || line.starts_with("### ") {
            break; // next section
        }
        let Some(row) = line.strip_prefix('|') else {
            continue;
        };
        let Some(cell) = row.split('|').next() else {
            continue;
        };
        let cell = cell.trim();
        if let Some(name) = cell.strip_prefix('`').and_then(|c| c.strip_suffix('`')) {
            patterns.push(name.to_string());
        }
    }
    assert!(
        patterns.len() >= 10,
        "taxonomy table looks truncated: only {} rows parsed",
        patterns.len()
    );
    patterns
}

/// Starts an [`AnalysisService`] on a no-op analyzer, drives one of
/// every kind of request through it, and returns the names of all the
/// metrics that landed in the service registry.
fn service_request_cycle() -> BTreeSet<String> {
    struct NoopAnalyzer;
    impl Analyzer for NoopAnalyzer {
        fn analyze(
            &self,
            _input: JobInput,
        ) -> Result<dp_reverser::ReverseEngineeringResult, String> {
            Ok(dp_reverser::ReverseEngineeringResult {
                esvs: Vec::new(),
                ecrs: Vec::new(),
                stats: Default::default(),
                negatives: 0,
                alignment_offset_us: 0,
                trace: Default::default(),
                evidence: Default::default(),
            })
        }
    }

    fn request(addr: std::net::SocketAddr, raw: &str) -> String {
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .unwrap();
        stream.write_all(raw.as_bytes()).unwrap();
        let mut out = Vec::new();
        stream.read_to_end(&mut out).unwrap();
        String::from_utf8_lossy(&out).into_owned()
    }
    fn get(addr: std::net::SocketAddr, path: &str) -> String {
        request(
            addr,
            &format!("GET {path} HTTP/1.1\r\nHost: tax\r\nConnection: close\r\n\r\n"),
        )
    }

    let service = AnalysisService::start(
        "127.0.0.1:0",
        ServiceConfig::default(),
        Arc::new(NoopAnalyzer),
    )
    .unwrap();
    let addr = service.addr();

    let body = "{\"car\":\"M\"}";
    let accepted = request(
        addr,
        &format!(
            "POST /jobs HTTP/1.1\r\nHost: tax\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    );
    assert!(accepted.starts_with("HTTP/1.1 202"), "{accepted}");
    let deadline = Instant::now() + Duration::from_secs(30);
    while !get(addr, "/jobs/job-1").contains("\"state\":\"done\"") {
        assert!(Instant::now() < deadline, "taxonomy job never finished");
        std::thread::sleep(Duration::from_millis(10));
    }
    for path in [
        "/jobs",
        "/jobs/job-1/result",
        "/jobs/job-1/events",
        "/metrics",
        "/metrics/history",
        "/trace",
        "/runs",
        "/healthz",
        "/debug/snapshot",
        "/no-such-route",
    ] {
        get(addr, path);
    }

    let snapshot = service.registry().snapshot();
    let names: BTreeSet<String> = snapshot
        .counters
        .keys()
        .chain(snapshot.gauges.keys())
        .chain(snapshot.histograms.keys())
        .cloned()
        .collect();
    service.stop();
    names
}

#[test]
fn every_emitted_metric_is_documented_in_design_md() {
    std::env::set_var("DPR_QUICK", "1");

    let registry = Arc::new(Registry::new());
    dpr_telemetry::scoped(Arc::clone(&registry), || {
        // Car M (IsoTp, formula + enum ESVs) and car B (VwTp) together
        // exercise both transport schemes, OCR, association, and GP.
        for id in [CarId::M, CarId::B] {
            let seed = car_seed(id);
            let report = collect_car(id, seed, 4);
            let pipeline = DpReverser::new(experiment_config(id, seed));
            pipeline.analyze(&report.log, &report.frames, Some(&report.execution));

            if id == CarId::M {
                // Round-trip through a capture (with a damaged span so
                // the CRC-skip path lights up) to emit the capture.*
                // family too.
                let mut writer = CaptureWriter::new(Vec::new()).unwrap();
                record_report(&report, &mut writer).unwrap();
                let mut bytes = writer.finish().unwrap();
                let start = bytes.len() / 3;
                for b in &mut bytes[start..start + 200] {
                    *b ^= 0x55;
                }
                let reader = CaptureReader::new(bytes.as_slice()).unwrap();
                pipeline.analyze_capture(reader);
            }
        }
    });

    // The service side of the taxonomy: one full request cycle against
    // a live AnalysisService (submit → poll → events → snapshot → 404)
    // lights up the `serve.*`, `jobs.*`, and `http.*` families.
    let service_metrics = service_request_cycle();

    let snapshot = registry.snapshot();
    let emitted: BTreeSet<String> = snapshot
        .counters
        .keys()
        .chain(snapshot.gauges.keys())
        .chain(snapshot.histograms.keys())
        .cloned()
        .chain(service_metrics)
        .collect();
    for expected in [
        "http.jobs.requests",
        "http.healthz.requests",
        "http.debug_snapshot.requests",
        "http.job_events.requests",
        "http.metrics_history.requests",
        "http.requests_in_flight",
        "http.bytes_in",
        "http.bytes_out",
        "serve.requests",
        "series.samples",
        "series.tracked",
        "series.sample_us",
        "slo.evaluations",
        "slo.http_errors.state",
        "slo.burning",
    ] {
        assert!(
            emitted.contains(expected),
            "the service request cycle no longer emits {expected}"
        );
    }
    assert!(
        emitted.len() >= 20,
        "suspiciously few metrics emitted ({}) — did telemetry get disabled?",
        emitted.len()
    );

    let patterns = documented_patterns();
    let undocumented: Vec<&str> = emitted
        .iter()
        .filter(|name| !patterns.iter().any(|p| matches(p, name)))
        .map(|name| name.as_str())
        .collect();
    assert!(
        undocumented.is_empty(),
        "metrics emitted but missing from DESIGN.md's 'Metrics taxonomy' table:\n  {}",
        undocumented.join("\n  ")
    );
}
