//! `dpr-bench serve-load`: a closed-loop load bench for the analysis
//! service.
//!
//! N client threads hammer a freshly started [`AnalysisService`] with
//! `POST /jobs` submissions over real `TcpStream`s while a synthetic
//! analyzer charges a fixed per-job cost. The bench measures the
//! *submit path* — the part the service itself owns: accept, parse the
//! bounded head, check backpressure, read the tiny body, enqueue,
//! answer. It reports p50/p99 submit latency, sustained submit
//! throughput, the share of requests refused with `429` (backpressure
//! working as designed, not an error), and client-side allocations per
//! request, and renders all of it into `BENCH_serve.json` for
//! `dpr-bench regress` to gate.

use dp_reverser::ReverseEngineeringResult;
use dpr_serve::{AnalysisService, Analyzer, JobInput, ServiceConfig, ServiceHealth};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning for one load run.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent client threads.
    pub clients: usize,
    /// Submissions per client.
    pub requests: usize,
    /// Analysis worker threads in the service under test.
    pub workers: usize,
    /// Bounded job-queue capacity.
    pub queue: usize,
    /// Synthetic per-job analysis cost, microseconds.
    pub cost_us: u64,
}

impl LoadConfig {
    /// The default load shape: `quick` shrinks it for CI smoke runs.
    pub fn defaults(quick: bool) -> LoadConfig {
        if quick {
            LoadConfig {
                clients: 4,
                requests: 50,
                workers: 2,
                queue: 16,
                cost_us: 500,
            }
        } else {
            LoadConfig {
                clients: 8,
                requests: 250,
                workers: 2,
                queue: 16,
                cost_us: 2_000,
            }
        }
    }
}

/// What one load run measured.
#[derive(Debug, Clone)]
pub struct LoadRun {
    /// The configuration the run used.
    pub config: LoadConfig,
    /// Whether quick mode was on.
    pub quick: bool,
    /// Submissions answered `202 Accepted`.
    pub accepted: u64,
    /// Submissions answered `429 Too Many Requests`.
    pub rejected: u64,
    /// Any other outcome (I/O error, unexpected status) — should be 0.
    pub errors: u64,
    /// Median submit latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile submit latency, microseconds.
    pub p99_us: u64,
    /// Wall time of the whole submission phase.
    pub elapsed: Duration,
    /// Answered submissions per second across all clients.
    pub submits_per_sec: f64,
    /// Share of submissions refused with `429` (0.0 – 1.0).
    pub http_429_share: f64,
    /// Client-side heap allocations per request on the submit path.
    pub allocs_per_request: f64,
    /// Server-side per-route latency, read back from the service's
    /// `http.<route>.latency_us` histograms after the run.
    pub route_latency: Vec<RouteLatency>,
    /// Median of the busiest `http.jobs.latency_us` sampling window,
    /// pulled from `GET /metrics/history` after the run — the same
    /// numbers an operator's dashboard would show.
    pub server_window_p50_us: f64,
    /// 99th percentile of that same busiest window.
    pub server_window_p99: f64,
    /// Sampling windows that saw submit traffic during the run.
    pub server_windows: u64,
}

/// One route's server-side latency summary.
#[derive(Debug, Clone)]
pub struct RouteLatency {
    /// The route slug (`jobs`, `healthz`, …).
    pub route: String,
    /// Requests the route's histogram recorded.
    pub count: u64,
    /// Estimated median service time, microseconds.
    pub p50_us: f64,
    /// Estimated 99th-percentile service time, microseconds.
    pub p99_us: f64,
}

/// The stand-in analyzer: charges a fixed cost, recovers nothing. The
/// bench exercises the service machinery, not the pipeline.
struct SyntheticAnalyzer {
    cost: Duration,
}

impl Analyzer for SyntheticAnalyzer {
    fn analyze(&self, _input: JobInput) -> Result<ReverseEngineeringResult, String> {
        if !self.cost.is_zero() {
            std::thread::sleep(self.cost);
        }
        Ok(ReverseEngineeringResult {
            esvs: Vec::new(),
            ecrs: Vec::new(),
            stats: Default::default(),
            negatives: 0,
            alignment_offset_us: 0,
            trace: Default::default(),
            evidence: Default::default(),
        })
    }
}

struct ClientTally {
    latencies_us: Vec<u64>,
    accepted: u64,
    rejected: u64,
    errors: u64,
    allocs: u64,
}

/// One submission over a fresh connection; returns the status code.
fn submit_once(addr: SocketAddr, request: &[u8], response: &mut Vec<u8>) -> Option<u16> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .ok()?;
    stream.write_all(request).ok()?;
    response.clear();
    stream.read_to_end(response).ok()?;
    // "HTTP/1.1 NNN ..."
    let code = response.get(9..12)?;
    std::str::from_utf8(code).ok()?.parse().ok()
}

fn client_loop(addr: SocketAddr, requests: usize) -> ClientTally {
    let request =
        b"POST /jobs HTTP/1.1\r\nHost: bench\r\nContent-Length: 14\r\n\r\n{\"car\":\"load\"}".to_vec();
    let mut tally = ClientTally {
        latencies_us: Vec::with_capacity(requests),
        accepted: 0,
        rejected: 0,
        errors: 0,
        allocs: 0,
    };
    let mut response = Vec::with_capacity(512);
    let before = dpr_prof::alloc::thread_alloc_stats();
    for _ in 0..requests {
        let started = Instant::now();
        match submit_once(addr, &request, &mut response) {
            Some(202) => tally.accepted += 1,
            Some(429) => tally.rejected += 1,
            _ => tally.errors += 1,
        }
        tally.latencies_us.push(started.elapsed().as_micros() as u64);
    }
    tally.allocs = dpr_prof::alloc::thread_alloc_stats().since(before).allocs;
    tally
}

fn percentile(sorted: &[u64], pct: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let at = (sorted.len() * pct / 100).min(sorted.len() - 1);
    sorted[at]
}

/// Runs the load: starts a service with a synthetic analyzer, fans the
/// clients out, aggregates, drains the service.
pub fn run_load(config: &LoadConfig, quick: bool) -> LoadRun {
    let service_config = ServiceConfig {
        analysis_workers: config.workers.max(1),
        queue_capacity: config.queue.max(1),
        // Tight sampling so even the quick run spans several windows;
        // ignores `DPR_SERIES_*` on purpose — bench numbers should not
        // move with ambient environment tuning.
        series: Some(dpr_series::SeriesConfig {
            interval: Duration::from_millis(50),
            capacity: 256,
        }),
        ..ServiceConfig::default()
    };
    let service = AnalysisService::start(
        "127.0.0.1:0",
        service_config,
        Arc::new(SyntheticAnalyzer {
            cost: Duration::from_micros(config.cost_us),
        }),
    )
    .expect("loopback bind");
    let addr = service.addr();
    // Pre-flight (which doubles as path warm-up: thread-pool spin-up,
    // first-connection costs happen outside the measured window).
    preflight_health(addr);

    dpr_prof::alloc::set_counting(true);
    let started = Instant::now();
    let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.clients.max(1))
            .map(|_| scope.spawn(|| client_loop(addr, config.requests)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = started.elapsed();
    dpr_prof::alloc::set_counting(false);
    // Close the last sampling window, then read the history back over
    // the wire — the bench checks the endpoint, not just the store.
    service
        .series()
        .expect("load services run with a sampler")
        .force_tick();
    let history = fetch_history(addr);
    let (server_windows, server_window_p50_us, server_window_p99) = summarize_windows(&history);
    let metrics = service.registry().snapshot();
    let route_latency: Vec<RouteLatency> = metrics
        .histograms
        .iter()
        .filter_map(|(name, h)| {
            let route = name.strip_prefix("http.")?.strip_suffix(".latency_us")?;
            Some(RouteLatency {
                route: route.to_string(),
                count: h.count,
                p50_us: h.quantile(0.5),
                p99_us: h.quantile(0.99),
            })
        })
        .collect();
    service.stop();

    let mut latencies: Vec<u64> = tallies.iter().flat_map(|t| t.latencies_us.clone()).collect();
    latencies.sort_unstable();
    let accepted: u64 = tallies.iter().map(|t| t.accepted).sum();
    let rejected: u64 = tallies.iter().map(|t| t.rejected).sum();
    let errors: u64 = tallies.iter().map(|t| t.errors).sum();
    let allocs: u64 = tallies.iter().map(|t| t.allocs).sum();
    let total = (accepted + rejected + errors).max(1);
    LoadRun {
        config: config.clone(),
        quick,
        accepted,
        rejected,
        errors,
        p50_us: percentile(&latencies, 50),
        p99_us: percentile(&latencies, 99),
        elapsed,
        submits_per_sec: (accepted + rejected) as f64 / elapsed.as_secs_f64().max(1e-9),
        http_429_share: rejected as f64 / total as f64,
        allocs_per_request: allocs as f64 / total as f64,
        route_latency,
        server_window_p50_us,
        server_window_p99,
        server_windows,
    }
}

/// Fetches `GET /metrics/history` and parses the series document.
fn fetch_history(addr: SocketAddr) -> dpr_series::History {
    let mut response = Vec::with_capacity(4096);
    let status = submit_once(
        addr,
        b"GET /metrics/history HTTP/1.1\r\nHost: bench\r\n\r\n",
        &mut response,
    );
    let text = String::from_utf8_lossy(&response);
    let body = text.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("");
    assert_eq!(status, Some(200), "metrics/history fetch failed: {text}");
    dpr_telemetry::json::from_str(body)
        .unwrap_or_else(|e| panic!("metrics/history payload does not parse ({e}): {body}"))
}

/// The busiest (most-observations) window of the submit route's
/// sliding-window latency series, plus how many windows saw traffic.
fn summarize_windows(history: &dpr_series::History) -> (u64, f64, f64) {
    let Some(series) = history.histograms.get("http.jobs.latency_us") else {
        return (0, 0.0, 0.0);
    };
    let windows = series.iter().filter(|w| w.count > 0).count() as u64;
    match series.iter().max_by_key(|w| w.count) {
        Some(busiest) if busiest.count > 0 => (windows, busiest.p50, busiest.p99),
        _ => (0, 0.0, 0.0),
    }
}

/// `GET /healthz` before the load starts. A service that is already
/// unhealthy (no workers, stuck queue) would only produce a garbage
/// measurement — refuse to run and fail fast *with the health payload*
/// so the operator sees what the service saw.
fn preflight_health(addr: SocketAddr) {
    let mut response = Vec::with_capacity(512);
    let status = submit_once(
        addr,
        b"GET /healthz HTTP/1.1\r\nHost: bench\r\n\r\n",
        &mut response,
    );
    let text = String::from_utf8_lossy(&response);
    let body = text.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("");
    assert_eq!(status, Some(200), "healthz pre-flight failed: {text}");
    let health: ServiceHealth = dpr_telemetry::json::from_str(body)
        .unwrap_or_else(|e| panic!("healthz payload does not parse ({e}): {body}"));
    assert_eq!(
        health.status, "ok",
        "service unhealthy before load; refusing to run: {body}"
    );
}

/// Renders the run as the human-readable table the CLI prints.
pub fn render_load(run: &LoadRun) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "serve load: {} client(s) x {} request(s), {} worker(s), queue {}, job cost {}us\n",
        run.config.clients, run.config.requests, run.config.workers, run.config.queue, run.config.cost_us
    ));
    out.push_str(&format!(
        "  accepted {:>7}    rejected(429) {:>7}    errors {:>3}\n",
        run.accepted, run.rejected, run.errors
    ));
    out.push_str(&format!(
        "  submit p50 {:>6}us    p99 {:>6}us    {:>9.0} submits/s    429 share {:>5.1}%\n",
        run.p50_us,
        run.p99_us,
        run.submits_per_sec,
        run.http_429_share * 100.0
    ));
    out.push_str(&format!(
        "  client allocs/request {:.0}    wall {:?}\n",
        run.allocs_per_request, run.elapsed
    ));
    for route in &run.route_latency {
        out.push_str(&format!(
            "  http.{:<14} {:>7} request(s)    server p50 {:>7.0}us    p99 {:>7.0}us\n",
            route.route, route.count, route.p50_us, route.p99_us
        ));
    }
    out.push_str(&format!(
        "  busiest window (of {} active)    server p50 {:>7.0}us    p99 {:>7.0}us    via /metrics/history\n",
        run.server_windows, run.server_window_p50_us, run.server_window_p99
    ));
    out
}

/// Renders the run as `BENCH_serve.json` for `dpr-bench regress`.
///
/// Key naming is deliberate about gating direction: `submit_p50_us` and
/// `allocs_per_request` gate as lower-is-better, `submits_per_sec` as
/// higher-is-better. `http_429_share` stays informational (a 429 is
/// correct backpressure, not a regression — the word `rate` is avoided
/// so direction inference does not gate it), and so does `submit_p99`
/// (microseconds, but tail latency on a small shared CI box is too
/// jittery to gate; the unit suffix is dropped so inference skips it).
/// The server-side window numbers follow the same split:
/// `server_window_p50_us` gates lower-is-better, `server_window_p99`
/// (tail, suffix dropped) and `server_windows` (a sample count, not a
/// quality) stay informational.
pub fn serve_json(run: &LoadRun) -> String {
    format!(
        concat!(
            "{{\n",
            "  \"bench\": \"serve_load\",\n",
            "  \"quick\": {quick},\n",
            "  \"clients\": {clients},\n",
            "  \"requests_per_client\": {requests},\n",
            "  \"analysis_workers\": {workers},\n",
            "  \"queue_capacity\": {queue},\n",
            "  \"job_cost_us\": {cost},\n",
            "  \"submit_p50_us\": {p50},\n",
            "  \"submit_p99\": {p99},\n",
            "  \"submits_per_sec\": {sps:.0},\n",
            "  \"http_429_share\": {share:.4},\n",
            "  \"allocs_per_request\": {apr:.0},\n",
            "  \"server_window_p50_us\": {wp50:.0},\n",
            "  \"server_window_p99\": {wp99:.0},\n",
            "  \"server_windows\": {windows}\n",
            "}}\n",
        ),
        quick = run.quick,
        clients = run.config.clients,
        requests = run.config.requests,
        workers = run.config.workers,
        queue = run.config.queue,
        cost = run.config.cost_us,
        p50 = run.p50_us,
        p99 = run.p99_us,
        sps = run.submits_per_sec,
        share = run.http_429_share,
        apr = run.allocs_per_request,
        wp50 = run.server_window_p50_us,
        wp99 = run.server_window_p99,
        windows = run.server_windows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_load_run_round_trips_through_json() {
        let config = LoadConfig {
            clients: 2,
            requests: 5,
            workers: 1,
            queue: 2,
            cost_us: 0,
        };
        let run = run_load(&config, true);
        assert_eq!(
            run.accepted + run.rejected + run.errors,
            10,
            "every request is answered: {run:?}"
        );
        assert_eq!(run.errors, 0, "{run:?}");
        let jobs_route = run
            .route_latency
            .iter()
            .find(|r| r.route == "jobs")
            .expect("per-route latency for the submit route");
        assert_eq!(jobs_route.count, 10, "{:?}", run.route_latency);
        assert!(
            run.server_windows >= 1,
            "the sampler saw the submit traffic: {run:?}"
        );
        assert!(
            run.server_window_p99 >= run.server_window_p50_us,
            "{run:?}"
        );
        let json = serve_json(&run);
        let doc = dpr_telemetry::json::parse(&json).expect("serve_json emits valid JSON");
        let flat = format!("{doc:?}");
        for key in [
            "submit_p50_us",
            "submit_p99",
            "submits_per_sec",
            "http_429_share",
            "allocs_per_request",
            "server_window_p50_us",
            "server_window_p99",
            "server_windows",
        ] {
            assert!(flat.contains(key), "{key} missing from {json}");
        }
    }

    #[test]
    fn percentile_clamps_to_range() {
        assert_eq!(percentile(&[], 99), 0);
        assert_eq!(percentile(&[7], 50), 7);
        let v: Vec<u64> = (0..100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 99), 99);
    }
}
