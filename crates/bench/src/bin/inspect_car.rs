//! Inspection utility: run the full pipeline on one Tab. 3 car and dump
//! per-ESV verdicts, association scores, and (optionally) raw `(X, Y)`
//! pairs for a specific identifier.
//!
//! ```text
//! cargo run --release -p dpr-bench --bin inspect_car -- K 10
//! DPR_DEBUG=1 DPR_DUMP=kwp:04:0 cargo run --release -p dpr-bench --bin inspect_car -- K 10
//! DPR_DEBUG=1 DPR_DUMP=F40D   cargo run --release -p dpr-bench --bin inspect_car -- A 10
//! ```
//!
//! Arguments: the car letter (A–R) and the per-page read dwell in
//! seconds. `DPR_DEBUG=1` prints extraction series and screen label
//! inventories; `DPR_DUMP=<did hex | kwp:<lid hex>:<slot>>` dumps the
//! paired samples for one identifier.

use dp_reverser::evaluate;
use dpr_bench::{analyze_traced, collect_car, print_trace, EXPERIMENT_SEED};
use dpr_vehicle::profiles::CarId;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(|s| s.as_str()).unwrap_or("P");
    let read = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(10);
    let Some(id) = which
        .bytes()
        .next()
        .filter(|b| b.is_ascii_uppercase())
        .and_then(|b| CarId::ALL.get((b - b'A') as usize).copied())
    else {
        eprintln!("error: unknown car {which:?} — pass a letter A..R (paper Tab. 3)");
        std::process::exit(2);
    };
    let seed = EXPERIMENT_SEED ^ (id as u64 + 1);
    let report = collect_car(id, seed, read);
    let result = analyze_traced(id, seed, &report);
    print_trace(&result);
    let precision = evaluate(&result, &report.vehicle);
    for v in &precision.verdicts {
        if !v.correct {
            println!("WRONG {} [{}] truth: {} got: {}", v.key, v.label, v.truth, v.recovered);
            if let Some(esv) = result.esvs.iter().find(|e| e.key == v.key) {
                println!("   score {:.3} pairs {} ranges {:?} screen {:?}",
                    esv.match_score, esv.pairs, esv.x_ranges, esv.screen);
                if let dp_reverser::RecoveredKind::Formula(m) = &esv.kind {
                    println!("   train_error {:.4}", m.train_error);
                }
            }
        }
    }
    println!("formula {}/{} enum {}/{} missed {}", precision.formula_correct, precision.formula_total, precision.enum_correct, precision.enum_total, precision.missed);
    if std::env::var("DPR_DEBUG").is_ok() {
        use dpr_frames::{analyze_capture};
        use dpr_ocr::{read_frames, filter_readings, OcrChannel, RangeBook};
        let cap = analyze_capture(&report.log, dpr_bench::scheme_for(id));
        println!("extraction series:");
        for s in &cap.extraction.series {
            println!("  {:?} samples={} cols={}", s.key, s.samples.len(), s.samples[0].1.len());
        }
        let readings = filter_readings(&read_frames(&report.frames, &OcrChannel::perfect()), &RangeBook::standard());
        let mut keys: Vec<(String,String)> = readings.iter().map(|r| (r.screen.clone(), r.label.clone())).collect();
        keys.sort(); keys.dedup();
        println!("y series:");
        for k in &keys {
            let n = readings.iter().filter(|r| r.screen==k.0 && r.label==k.1).count();
            println!("  {:?} n={}", k, n);
        }
        // probe: score every series against every label
        let y_series: Vec<dp_reverser::LabelSeries> = keys.iter().map(|k| {
            (k.clone(), readings.iter().filter(|r| r.screen==k.0 && r.label==k.1)
                .filter_map(|r| r.value.map(|v| (r.at, v))).collect())
        }).collect();
        let matches = dp_reverser::match_series(&cap.extraction.series, &y_series, dpr_can::Micros::from_secs(1), 0.0);
        for m in &matches {
            println!("match {:?} <-> {:?} score {:.3} pairs {}", cap.extraction.series[m.series_idx].key, y_series[m.label_idx].0.1, m.score, m.pairs.len());
        }
        if let Ok(which) = std::env::var("DPR_DUMP") {
            let key = if let Some(rest) = which.strip_prefix("kwp:") {
                let mut it = rest.split(':');
                let lid = u8::from_str_radix(it.next().unwrap(), 16).unwrap();
                let slot: usize = it.next().unwrap().parse().unwrap();
                dpr_frames::SourceKey::Kwp { local_id: lid, slot }
            } else {
                dpr_frames::SourceKey::UdsDid(u16::from_str_radix(&which, 16).unwrap())
            };
            for m in &matches {
                if cap.extraction.series[m.series_idx].key == key {
                    println!("pairs for {:?} <-> {:?}:", key, y_series[m.label_idx].0);
                    for (x, y) in m.pairs.iter() {
                        println!("   x={:?} y={}", x, y);
                    }
                }
            }
        }
    }

    // show what was missed
    let recovered: Vec<_> = result.esvs.iter().map(|e| e.key).collect();
    for p in report.vehicle.esv_points() {
        let key = match p.id {
            dpr_vehicle::ecu::EsvId::Uds(d) => dpr_frames::SourceKey::UdsDid(d.0),
            dpr_vehicle::ecu::EsvId::Kwp { local_id, slot } => dpr_frames::SourceKey::Kwp { local_id: local_id.0, slot },
        };
        if !recovered.contains(&key) {
            println!("MISSED {:?} [{}] {}", key, p.quantity.name(), p.formula);
        }
    }
}
// (extended diagnostics in main via env var DPR_DEBUG)
