//! Capture tooling: record a collection session to disk, inspect a
//! capture file, replay one offline through the analysis pipeline.
//!
//! ```text
//! cargo run --release -p dpr-bench --bin capture -- record M /tmp/m.dprcap 4
//! cargo run --release -p dpr-bench --bin capture -- info /tmp/m.dprcap
//! cargo run --release -p dpr-bench --bin capture -- replay /tmp/m.dprcap --diff-live
//! ```
//!
//! `record` collects car `<A..R>` with the robotic clicker and streams
//! the session into `<path>` (optional dwell seconds and seed follow).
//! `info` prints the header, per-kind record counts, time span, session
//! metadata, and damage tallies. `replay` reruns the full analysis from
//! the capture alone; `--diff-live` re-collects the same car live and
//! exits non-zero unless the replayed result is identical.

use std::process::ExitCode;
use std::sync::Arc;

use dp_reverser::{DpReverser, ReverseEngineeringResult};
use dpr_bench::{collect_car, experiment_config, parse_car, print_trace, EXPERIMENT_SEED};
use dpr_capture::{
    record_report, CaptureEvent, CaptureReader, CaptureSession, CaptureWriter, CorruptionStats,
};
use dpr_telemetry::Registry;
use dpr_vehicle::profiles::{self, CarId};

fn usage() -> ExitCode {
    eprintln!("usage: capture record <car A..R> <path> [read_secs] [seed]");
    eprintln!("       capture info   <path>");
    eprintln!("       capture replay <path> [--diff-live]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("record") => record(&args[1..]),
        Some("info") => info(&args[1..]),
        Some("replay") => replay(&args[1..]),
        _ => usage(),
    }
}

fn record(args: &[String]) -> ExitCode {
    let (Some(car_arg), Some(path)) = (args.first(), args.get(1)) else {
        return usage();
    };
    let Some(id) = parse_car(car_arg) else {
        eprintln!("error: unknown car {car_arg:?} — pass a letter A..R (paper Tab. 3)");
        return ExitCode::from(2);
    };
    let read_secs: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let seed: u64 = args
        .get(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or(EXPERIMENT_SEED ^ (id as u64 + 1));

    let spec = profiles::spec(id);
    println!("recording car {car_arg} (tool {}, dwell {read_secs}s, seed {seed})…", spec.tool);
    let report = collect_car(id, seed, read_secs);

    let file = match std::fs::File::create(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: cannot create {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let written = (|| {
        let mut writer = CaptureWriter::new(file)?;
        writer.write_meta("car", car_arg)?;
        writer.write_meta("seed", &seed.to_string())?;
        writer.write_meta("read_secs", &read_secs.to_string())?;
        writer.write_meta("tool", spec.tool)?;
        let (records, bytes) = (writer.records_written(), writer.bytes_written());
        record_report(&report, &mut writer)?;
        let payload_records = writer.records_written() - records;
        let payload_bytes = writer.bytes_written() - bytes;
        writer.finish()?;
        Ok::<_, std::io::Error>((payload_records, payload_bytes))
    })();
    match written {
        Ok((records, bytes)) => {
            println!(
                "wrote {path}: {records} session records, {bytes} payload bytes \
                 ({} CAN frames, {} screen frames, {} actions)",
                report.log.len(),
                report.frames.len(),
                report.execution.entries.len(),
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: writing {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn open(path: &str) -> Option<CaptureReader<std::io::BufReader<std::fs::File>>> {
    match CaptureReader::open(path) {
        Ok(reader) => Some(reader),
        Err(e) => {
            eprintln!("error: {path}: {e}");
            None
        }
    }
}

fn info(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    let Some(mut reader) = open(path) else {
        return ExitCode::FAILURE;
    };
    println!("{path}: DPRCAP format v{}", reader.version());

    let (mut can, mut screen, mut action, mut clock, mut meta) = (0u64, 0u64, 0u64, 0u64, 0u64);
    let mut first = None;
    let mut last = None;
    let mut session = CaptureSession::default();
    // Drain inside a fresh scoped registry so the `capture.*` counters
    // this inspection publishes are this file's alone.
    let registry = Arc::new(Registry::new());
    dpr_telemetry::scoped(Arc::clone(&registry), || {
        while let Some(event) = reader.next_event() {
            let at = match &event {
                CaptureEvent::Can(tf) => {
                    can += 1;
                    Some(tf.at)
                }
                CaptureEvent::Screen(f) => {
                    screen += 1;
                    Some(f.at)
                }
                CaptureEvent::Action(e) => {
                    action += 1;
                    Some(e.at)
                }
                CaptureEvent::ClockSync(s) => {
                    clock += 1;
                    Some(s.bus_at)
                }
                CaptureEvent::Meta { .. } => {
                    meta += 1;
                    None
                }
            };
            if let Some(at) = at {
                first.get_or_insert(at);
                last = Some(at);
            }
            session.absorb(event);
        }
        reader.stats().publish_telemetry();
    });
    let stats = reader.stats();
    println!("  records    {:>8} valid (incl. sync markers)", stats.records_read);
    println!("  can        {can:>8}");
    println!("  screen     {screen:>8}");
    println!("  action     {action:>8}");
    println!("  clock-sync {clock:>8}");
    println!("  meta       {meta:>8}");
    if let (Some(first), Some(last)) = (first, last) {
        println!(
            "  span       {:.3}s – {:.3}s ({:.3}s of session time)",
            first.as_secs_f64(),
            last.as_secs_f64(),
            last.saturating_sub(first).as_secs_f64()
        );
    }
    if let Some(offset) = session.estimated_offset_us() {
        println!("  clock offset (camera − bus) median: {offset} µs");
    }
    for (key, value) in &session.meta {
        println!("  meta[{key}] = {value}");
    }
    for (name, value) in &registry.snapshot().counters {
        if name.starts_with("capture.") {
            println!("  counter    {name} = {value}");
        }
    }
    print_damage(stats);
    ExitCode::SUCCESS
}

fn print_damage(stats: &CorruptionStats) {
    if stats.is_clean() {
        println!("  damage     none");
    } else {
        println!(
            "  damage     {} bad-crc, {} malformed, {} truncated, {} resyncs, {} bytes skipped",
            stats.crc_skipped, stats.malformed, stats.truncated, stats.resyncs, stats.bytes_skipped
        );
    }
}

/// Pulls the car id and seed a capture was recorded with out of its
/// metadata.
fn recorded_identity(session: &CaptureSession) -> Option<(CarId, u64, u64)> {
    let id = parse_car(session.meta.get("car")?)?;
    let seed = session.meta.get("seed")?.parse().ok()?;
    let read_secs = session.meta.get("read_secs")?.parse().ok()?;
    Some((id, seed, read_secs))
}

fn summarize(result: &ReverseEngineeringResult) {
    println!(
        "recovered: {} formula ESVs, {} enum ESVs, {} ECRs, {} negatives filtered",
        result.formula_esvs().count(),
        result.enum_esvs().count(),
        result.ecrs.len(),
        result.negatives,
    );
}

fn replay(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    let diff_live = args.iter().any(|a| a == "--diff-live");
    let Some(reader) = open(path) else {
        return ExitCode::FAILURE;
    };
    let (session, stats) = reader.read_session();
    print_damage(&stats);
    let Some((id, seed, read_secs)) = recorded_identity(&session) else {
        eprintln!("error: capture carries no car/seed/read_secs metadata; cannot configure the pipeline");
        return ExitCode::FAILURE;
    };
    println!("replaying car {:?} seed {seed} offline…", id);

    let pipeline = DpReverser::new(experiment_config(id, seed));
    // Re-open and run through `analyze_capture` so the reader's
    // counters land on the trace's `capture` stage.
    let Some(reader) = open(path) else {
        return ExitCode::FAILURE;
    };
    let registry = Arc::new(Registry::new());
    let result = dpr_telemetry::scoped(Arc::clone(&registry), || pipeline.analyze_capture(reader));
    print_trace(&result);
    summarize(&result);

    if diff_live {
        println!("re-collecting live for the diff (dwell {read_secs}s)…");
        let report = collect_car(id, seed, read_secs);
        let live = dpr_telemetry::scoped(Arc::new(Registry::new()), || {
            pipeline.analyze(&report.log, &report.frames, Some(&report.execution))
        });
        if live == result {
            println!("VERDICT: replay is identical to the live run");
        } else {
            eprintln!("VERDICT: replay DIVERGED from the live run");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
