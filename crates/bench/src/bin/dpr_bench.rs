//! The observability front door for the experiment harness.
//!
//! ```text
//! cargo run --release -p dpr-bench --bin dpr-bench -- profile M --folded /tmp/m.folded
//! cargo run --release -p dpr-bench --bin dpr-bench -- profile /tmp/m.dprcap
//! cargo run --release -p dpr-bench --bin dpr-bench -- regress --baseline old.json --current new.json --max-regress 15%
//! cargo run --release -p dpr-bench --bin dpr-bench -- fleet M N P --hold 30
//! cargo run --release -p dpr-bench --bin dpr-bench -- scale --threads 1,2,4,8
//! cargo run --release -p dpr-bench --bin dpr-bench -- serve --addr 127.0.0.1:8080
//! cargo run --release -p dpr-bench --bin dpr-bench -- serve-load --clients 8
//! cargo run --release -p dpr-bench --bin dpr-bench -- top 127.0.0.1:8080 --interval 2
//! cargo run --release -p dpr-bench --bin dpr-bench -- analyze /tmp/m.dprcap --json
//! ```
//!
//! `profile` runs the pipeline on one car (live, by Tab. 3 letter) or on
//! a `.dprcap` capture (offline) and prints a self-time flamegraph
//! profile plus the worker-pool report; `--folded <path>` also writes
//! inferno-compatible folded stack lines. `regress` compares two
//! `BENCH_*.json` snapshots and exits non-zero when a gated metric
//! regressed beyond the tolerance. `fleet` collects and analyzes
//! several cars under one registry. `scale` sweeps GP scoring across
//! pool sizes and writes `BENCH_scale.json`. All honor
//! `DPR_TRACE_EVENTS=<path.json>` (Chrome trace-event export) and the
//! run subcommands honor `DPR_METRICS_ADDR=<addr>` (live Prometheus
//! scrape endpoint).

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use dp_reverser::{DpReverser, ReverseEngineeringResult};
use dpr_bench::{
    car_seed, collect_car, experiment_config, fleet_traced, parse_car, print_trace, quick,
    EXPERIMENT_SEED,
};
use dpr_capture::CaptureReader;
use dpr_obs::{flame, ObsSession};
use dpr_telemetry::{Collector, Registry};
use dpr_vehicle::profiles::CarId;

/// The counting allocator shim: free when `DPR_PROF` is unset, and the
/// reason `dpr-bench profile` / `dpr-bench scale` can attribute heap
/// traffic to pool workers when it is.
#[global_allocator]
static ALLOC: dpr_prof::alloc::CountingAlloc = dpr_prof::alloc::CountingAlloc;

fn usage() -> ExitCode {
    eprintln!("usage: dpr-bench profile <car A..R | capture.dprcap> [--folded <path>] [read_secs]");
    eprintln!("       dpr-bench regress --baseline <old.json> --current <new.json> [--max-regress <pct>]");
    eprintln!("       dpr-bench fleet <car A..R>... [--read-secs <n>] [--hold <secs>]");
    eprintln!("       dpr-bench explain <car A..R> <sensor | all> [read_secs]");
    eprintln!("       dpr-bench scale [--threads 1,2,4,8] [--out <BENCH_scale.json>]");
    eprintln!("       dpr-bench serve [--addr <ip:port>] [--workers <n>] [--queue <n>] [--addr-file <path>]");
    eprintln!("       dpr-bench serve-load [--clients <n>] [--requests <n>] [--workers <n>] [--queue <n>] [--cost-us <n>] [--out <BENCH_serve.json>]");
    eprintln!("       dpr-bench snapshot <ip:port> [--raw] [--watch <secs>]");
    eprintln!("       dpr-bench top <ip:port> [--interval <secs>] [--once]");
    eprintln!("       dpr-bench analyze <capture.dprcap> [--json]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("profile") => profile(&args[1..]),
        Some("regress") => regress(&args[1..]),
        Some("fleet") => fleet(&args[1..]),
        Some("explain") => explain(&args[1..]),
        Some("scale") => scale(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("serve-load") => serve_load_cmd(&args[1..]),
        Some("snapshot") => snapshot_cmd(&args[1..]),
        Some("top") => top_cmd(&args[1..]),
        Some("analyze") => analyze_capture_cmd(&args[1..]),
        _ => usage(),
    }
}

/// Pulls `--flag value` out of `args`, returning the remaining
/// positional arguments and the flag's value (if present).
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let at = args.iter().position(|a| a == flag)?;
    if at + 1 >= args.len() {
        return None;
    }
    let value = args.remove(at + 1);
    args.remove(at);
    Some(value)
}

// ———————————————————————————— profile ————————————————————————————

fn profile(args: &[String]) -> ExitCode {
    let mut args = args.to_vec();
    let folded_path = take_flag(&mut args, "--folded");
    let Some(target) = args.first().cloned() else {
        return usage();
    };

    let registry = Arc::new(Registry::new());
    let collector = Arc::new(Collector::new());
    registry.add_sink(Arc::clone(&collector) as _);
    let session = ObsSession::from_env(&registry);

    let result = if let Some(id) = parse_car(&target) {
        let read_secs: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4);
        println!(
            "profiling car {target} live (dwell {read_secs}s, seed {}, quick {})…",
            car_seed(id),
            quick()
        );
        profile_live(id, read_secs, &registry)
    } else {
        println!("profiling capture {target} offline…");
        match profile_capture(&target, &registry) {
            Some(result) => result,
            None => return ExitCode::FAILURE,
        }
    };
    session.publish_run(&result.trace, &result.evidence);
    print_trace(&result);

    let profile = flame::aggregate(&collector.records());
    print!("{}", profile.report());
    print!(
        "{}",
        dpr_prof::render_report(&dpr_prof::snapshot(), "pool report").text
    );
    if let Some(path) = folded_path {
        if let Err(e) = std::fs::write(&path, profile.folded()) {
            eprintln!("error: writing folded stacks to {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote folded stacks to {path} (render with inferno-flamegraph or speedscope)");
    }
    session.finish();
    ExitCode::SUCCESS
}

fn profile_live(id: CarId, read_secs: u64, registry: &Arc<Registry>) -> ReverseEngineeringResult {
    let seed = car_seed(id);
    dpr_telemetry::scoped(Arc::clone(registry), || {
        let report = collect_car(id, seed, read_secs);
        let pipeline = DpReverser::new(experiment_config(id, seed));
        pipeline.analyze(&report.log, &report.frames, Some(&report.execution))
    })
}

fn profile_capture(path: &str, registry: &Arc<Registry>) -> Option<ReverseEngineeringResult> {
    // First pass recovers the recorded car/seed so the pipeline config
    // matches the capture; the second, traced pass does the analysis.
    let reader = open_capture(path)?;
    let (session, _) = reader.read_session();
    let id = session.meta.get("car").and_then(|c| parse_car(c));
    let seed: Option<u64> = session.meta.get("seed").and_then(|s| s.parse().ok());
    let (Some(id), Some(seed)) = (id, seed) else {
        eprintln!("error: {path} carries no car/seed metadata; cannot configure the pipeline");
        return None;
    };
    let pipeline = DpReverser::new(experiment_config(id, seed));
    let reader = open_capture(path)?;
    Some(dpr_telemetry::scoped(Arc::clone(registry), || {
        pipeline.analyze_capture(reader)
    }))
}

fn open_capture(path: &str) -> Option<CaptureReader<std::io::BufReader<std::fs::File>>> {
    match CaptureReader::open(path) {
        Ok(reader) => Some(reader),
        Err(e) => {
            eprintln!("error: {path}: {e}");
            None
        }
    }
}

// ———————————————————————————— explain ————————————————————————————

/// Runs the pipeline on one car and prints the evidence chain behind
/// each recovered sensor: raw frames → reassembly → OCR → alignment →
/// GP lineage → final formula. `sensor` is a slug (`did-0xf40d`), a
/// case-insensitive substring of the sensor key or label, or `all`.
fn explain(args: &[String]) -> ExitCode {
    let (Some(car), Some(sensor)) = (args.first(), args.get(1)) else {
        return usage();
    };
    let Some(id) = parse_car(car) else {
        eprintln!("error: {car:?} is not a car letter A..R (paper Tab. 3)");
        return usage();
    };
    let read_secs: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);

    let registry = Arc::new(Registry::new());
    let session = ObsSession::from_env(&registry);
    let seed = car_seed(id);
    println!(
        "explaining car {car} (dwell {read_secs}s, seed {seed}, quick {})…",
        quick()
    );
    let result = dpr_telemetry::scoped(Arc::clone(&registry), || {
        let report = collect_car(id, seed, read_secs);
        let pipeline = DpReverser::new(experiment_config(id, seed));
        pipeline.analyze(&report.log, &report.frames, Some(&report.execution))
    });
    let run_id = session.publish_run(&result.trace, &result.evidence);

    let ledger = &result.evidence;
    println!(
        "run {run_id}: {} sensor(s) recovered",
        ledger.chains.len()
    );
    print!("{}", dpr_evidence::render_rejects(&ledger.rejects));

    let want_all = sensor.eq_ignore_ascii_case("all");
    let needle = sensor.to_ascii_lowercase();
    let selected: Vec<_> = ledger
        .chains
        .iter()
        .filter(|c| {
            want_all
                || c.slug == needle
                || c.sensor.to_ascii_lowercase().contains(&needle)
                || c.label.to_ascii_lowercase().contains(&needle)
        })
        .collect();
    if selected.is_empty() {
        let known: Vec<&str> = ledger.chains.iter().map(|c| c.slug.as_str()).collect();
        eprintln!(
            "error: no recovered sensor matches {sensor:?}; known: {}",
            known.join(" ")
        );
        session.finish();
        return ExitCode::FAILURE;
    }
    for chain in selected {
        println!();
        print!("{}", dpr_evidence::render(chain));
    }
    if let Some(path) = session.evidence_path() {
        println!();
        println!("evidence chains appended to {} (JSON lines)", path.display());
    }
    session.finish();
    ExitCode::SUCCESS
}

// ———————————————————————————— regress ————————————————————————————

fn regress(args: &[String]) -> ExitCode {
    let mut args = args.to_vec();
    let baseline = take_flag(&mut args, "--baseline");
    let current = take_flag(&mut args, "--current");
    let threshold = take_flag(&mut args, "--max-regress").unwrap_or_else(|| "15%".to_string());
    let (Some(baseline), Some(current)) = (baseline, current) else {
        return usage();
    };
    let Some(max_regress) = dpr_obs::regress::parse_threshold(&threshold) else {
        eprintln!("error: bad --max-regress {threshold:?} (want e.g. 15%, 0.15)");
        return ExitCode::from(2);
    };
    let (Some(base), Some(cur)) = (load_json(&baseline), load_json(&current)) else {
        return ExitCode::FAILURE;
    };

    println!("comparing {current} against {baseline} (tolerance {:.0}%)", max_regress * 100.0);
    let cmp = dpr_obs::regress::compare(&base, &cur, max_regress);
    print!("{}", dpr_obs::regress::render(&cmp));
    if cmp.has_regressions() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn load_json(path: &str) -> Option<dpr_telemetry::json::Value> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: reading {path}: {e}");
            return None;
        }
    };
    match dpr_telemetry::json::parse(&text) {
        Ok(value) => Some(value),
        Err(e) => {
            eprintln!("error: {path} is not valid JSON: {e}");
            None
        }
    }
}

// ———————————————————————————— scale ————————————————————————————

/// Sweeps GP generation scoring across pool sizes, prints the scaling
/// table plus the largest pool's report, and writes `BENCH_scale.json`
/// for `dpr-bench regress` to gate.
fn scale(args: &[String]) -> ExitCode {
    let mut args = args.to_vec();
    let threads = match take_flag(&mut args, "--threads") {
        Some(list) => {
            let parsed: Vec<usize> = list
                .split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&t| t > 0)
                .collect();
            if parsed.is_empty() {
                eprintln!("error: bad --threads {list:?} (want e.g. 1,2,4,8)");
                return ExitCode::from(2);
            }
            parsed
        }
        None => dpr_bench::scale::default_threads(quick()),
    };
    let out_path = take_flag(&mut args, "--out").unwrap_or_else(|| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json").to_string()
    });
    // A scaling run is an explicit opt-in to profiling: turn the
    // counting allocator on so the sweep attributes heap traffic too.
    // Set before the first par_map so no pool thread exists yet.
    std::env::set_var(dpr_prof::PROF_ENV, "1");

    println!(
        "gp scoring scaling sweep at {threads:?} thread(s), seed {EXPERIMENT_SEED}, quick {}…",
        quick()
    );
    let run = dpr_bench::scale::run_scale(&threads, quick());
    print!("{}", dpr_bench::scale::render_scale(&run));
    if let Some(point) = run.points.iter().max_by_key(|p| p.threads) {
        print!("{}", point.report.text);
    }
    if let Err(e) = std::fs::write(&out_path, dpr_bench::scale::scale_json(&run)) {
        eprintln!("error: writing {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");
    ExitCode::SUCCESS
}

// ———————————————————————————— serve ————————————————————————————

/// Runs the analysis service on the production [`BenchAnalyzer`] until
/// killed. `--addr-file` writes the bound address for scripts that
/// start the service on an ephemeral port.
fn serve(args: &[String]) -> ExitCode {
    let mut args = args.to_vec();
    let addr = take_flag(&mut args, "--addr").unwrap_or_else(|| "127.0.0.1:0".to_string());
    let workers: usize = take_flag(&mut args, "--workers")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    let queue: usize = take_flag(&mut args, "--queue")
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let addr_file = take_flag(&mut args, "--addr-file");

    let config = dpr_serve::ServiceConfig {
        analysis_workers: workers,
        queue_capacity: queue,
        ..dpr_serve::ServiceConfig::default()
    };
    let service =
        match dpr_serve::AnalysisService::start(&addr, config, Arc::new(dpr_bench::BenchAnalyzer)) {
            Ok(service) => service,
            Err(e) => {
                eprintln!("error: binding {addr}: {e}");
                return ExitCode::FAILURE;
            }
        };
    let bound = service.addr();
    println!(
        "dpr-serve on http://{bound} ({workers} analysis worker(s), queue {queue}, seed {EXPERIMENT_SEED}, quick {})",
        quick()
    );
    println!("  submit a capture: curl --data-binary @car_m.dprcap http://{bound}/jobs");
    println!("  submit a car:     curl -d '{{\"car\":\"M\"}}' http://{bound}/jobs");
    println!("  poll:             curl http://{bound}/jobs/job-1");
    println!("  result:           curl http://{bound}/jobs/job-1/result");
    println!("  observe:          curl http://{bound}/metrics | /runs | /trace | /healthz");
    if let Some(path) = addr_file {
        if let Err(e) = std::fs::write(&path, bound.to_string()) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    loop {
        std::thread::park();
    }
}

/// `serve-load`: load-tests the submit path against a synthetic
/// analyzer and writes `BENCH_serve.json` for `regress` to gate.
fn serve_load_cmd(args: &[String]) -> ExitCode {
    use dpr_bench::serve_load::{self, LoadConfig};

    let mut args = args.to_vec();
    let mut config = LoadConfig::defaults(quick());
    if let Some(v) = take_flag(&mut args, "--clients").and_then(|s| s.parse().ok()) {
        config.clients = v;
    }
    if let Some(v) = take_flag(&mut args, "--requests").and_then(|s| s.parse().ok()) {
        config.requests = v;
    }
    if let Some(v) = take_flag(&mut args, "--workers").and_then(|s| s.parse().ok()) {
        config.workers = v;
    }
    if let Some(v) = take_flag(&mut args, "--queue").and_then(|s| s.parse().ok()) {
        config.queue = v;
    }
    if let Some(v) = take_flag(&mut args, "--cost-us").and_then(|s| s.parse().ok()) {
        config.cost_us = v;
    }
    let out_path = take_flag(&mut args, "--out").unwrap_or_else(|| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json").to_string()
    });

    println!(
        "serve load: {} client(s) x {} request(s) against a {}-worker queue-{} service…",
        config.clients, config.requests, config.workers, config.queue
    );
    let run = serve_load::run_load(&config, quick());
    print!("{}", serve_load::render_load(&run));
    if run.errors > 0 {
        eprintln!("error: {} request(s) got neither 202 nor 429", run.errors);
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&out_path, serve_load::serve_json(&run)) {
        eprintln!("error: writing {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");
    ExitCode::SUCCESS
}

/// `snapshot`: fetches `/debug/snapshot` from a running service, checks
/// it parses, and prints a triage summary (`--raw` dumps the JSON
/// instead) — the one-command version of "attach everything a bug
/// report needs". `--watch <secs>` re-polls until interrupted.
fn snapshot_cmd(args: &[String]) -> ExitCode {
    let mut args = args.to_vec();
    let raw = match args.iter().position(|a| a == "--raw") {
        Some(at) => {
            args.remove(at);
            true
        }
        None => false,
    };
    let watch_secs: Option<u64> = take_flag(&mut args, "--watch").and_then(|s| s.parse().ok());
    let Some(addr) = args.first() else {
        return usage();
    };
    match watch_secs {
        None => {
            if snapshot_once(addr, raw) {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Some(secs) => loop {
            if !snapshot_once(addr, raw) {
                return ExitCode::FAILURE;
            }
            std::thread::sleep(Duration::from_secs(secs.max(1)));
            println!();
        },
    }
}

/// One `/debug/snapshot` fetch-and-summarize pass; false on any error.
fn snapshot_once(addr: &str, raw: bool) -> bool {
    use dpr_telemetry::json::Value;
    use std::io::{Read, Write};

    let mut stream = match std::net::TcpStream::connect(addr) {
        Ok(stream) => stream,
        Err(e) => {
            eprintln!("error: connecting {addr}: {e}");
            return false;
        }
    };
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let request = format!("GET /debug/snapshot HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    let mut response = Vec::new();
    if let Err(e) = stream
        .write_all(request.as_bytes())
        .and_then(|()| stream.read_to_end(&mut response).map(|_| ()))
    {
        eprintln!("error: talking to {addr}: {e}");
        return false;
    }
    let text = String::from_utf8_lossy(&response);
    let Some((head, body)) = text.split_once("\r\n\r\n") else {
        eprintln!("error: {addr} sent no HTTP response");
        return false;
    };
    if !head.starts_with("HTTP/1.1 200") {
        eprintln!("error: /debug/snapshot answered: {}", head.lines().next().unwrap_or(head));
        return false;
    }
    let doc = match dpr_telemetry::json::parse(body) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("error: /debug/snapshot body is not valid JSON: {e}");
            return false;
        }
    };
    if raw {
        println!("{body}");
        return true;
    }

    fn field<'a>(doc: &'a Value, name: &str) -> Option<&'a Value> {
        match doc {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }
    fn as_u64(v: Option<&Value>) -> u64 {
        match v {
            Some(Value::UInt(n)) => *n,
            Some(Value::Int(n)) => (*n).max(0) as u64,
            Some(Value::Float(n)) => *n as u64,
            _ => 0,
        }
    }
    fn as_str(v: Option<&Value>) -> &str {
        match v {
            Some(Value::Str(s)) => s,
            _ => "?",
        }
    }
    let health = field(&doc, "health");
    println!("snapshot of http://{addr}:");
    if let Some(health) = health {
        println!(
            "  health: {} v{}, up {}s, queue {}/{}, {} running, {} worker(s), {} run(s) published",
            as_str(field(health, "status")),
            as_str(field(health, "version")),
            as_u64(field(health, "uptime_secs")),
            as_u64(field(health, "queue_depth")),
            as_u64(field(health, "queue_capacity")),
            as_u64(field(health, "jobs_running")),
            match field(health, "workers") {
                Some(Value::Array(workers)) => workers.len(),
                _ => 0,
            },
            as_u64(field(health, "runs_published")),
        );
    }
    if let Some(Value::Array(jobs)) = field(&doc, "jobs") {
        let mut by_state: std::collections::BTreeMap<&str, usize> = Default::default();
        for job in jobs {
            *by_state.entry(as_str(field(job, "state"))).or_default() += 1;
        }
        let states: Vec<String> = by_state.iter().map(|(s, n)| format!("{n} {s}")).collect();
        println!("  jobs: {} kept ({})", jobs.len(), states.join(", "));
    }
    if let Some(metrics) = field(&doc, "metrics") {
        let count = |name: &str| match field(metrics, name) {
            Some(Value::Object(entries)) => entries.len(),
            _ => 0,
        };
        println!(
            "  metrics: {} counter(s), {} gauge(s), {} histogram(s)",
            count("counters"),
            count("gauges"),
            count("histograms")
        );
    }
    match field(&doc, "series") {
        Some(Value::Null) | None => println!("  series: sampler disabled"),
        Some(series) => {
            let count = |name: &str| match field(series, name) {
                Some(Value::Object(entries)) => entries.len(),
                _ => 0,
            };
            println!(
                "  series: {} sample(s) every {}ms, {} counter / {} gauge / {} histogram series",
                as_u64(field(series, "samples")),
                as_u64(field(series, "interval_ms")),
                count("counters"),
                count("gauges"),
                count("histograms"),
            );
            if let Some(Value::Array(slos)) = field(series, "slos") {
                for slo in slos {
                    println!(
                        "  slo: {:<18} {:<8} {}",
                        as_str(field(slo, "slug")),
                        as_str(field(slo, "state")),
                        as_str(field(slo, "detail")),
                    );
                }
            }
        }
    }
    if let Some(log) = field(&doc, "log") {
        println!(
            "  log ring: {} record(s) held, {} pushed, {} overwritten",
            match field(log, "records") {
                Some(Value::Array(records)) => records.len(),
                _ => 0,
            },
            as_u64(field(log, "pushed")),
            as_u64(field(log, "overwritten")),
        );
    }
    true
}

/// `top`: a polling sparkline dashboard over `GET /metrics/history` —
/// SLO grades, counter rates, gauge levels, window latency quantiles.
fn top_cmd(args: &[String]) -> ExitCode {
    let mut args = args.to_vec();
    let interval: u64 = take_flag(&mut args, "--interval")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2)
        .max(1);
    let once = match args.iter().position(|a| a == "--once") {
        Some(at) => {
            args.remove(at);
            true
        }
        None => false,
    };
    let Some(addr) = args.first() else {
        return usage();
    };
    loop {
        let history = match dpr_bench::top::fetch_history(addr) {
            Ok(history) => history,
            Err(why) => {
                eprintln!("error: {why}");
                return ExitCode::FAILURE;
            }
        };
        let screen = dpr_bench::top::render(addr, &history);
        if once {
            print!("{screen}");
            return ExitCode::SUCCESS;
        }
        // Clear and home, like top(1); the screen repaints in place.
        print!("\x1b[2J\x1b[H{screen}");
        use std::io::Write;
        let _ = std::io::stdout().flush();
        std::thread::sleep(Duration::from_secs(interval));
    }
}

/// `analyze`: runs a `.dprcap` capture through the pipeline directly
/// and prints either the stage table or (`--json`) the canonical result
/// JSON — the exact bytes the service serves at `/jobs/<id>/result`,
/// which is what CI diffs the two paths with.
fn analyze_capture_cmd(args: &[String]) -> ExitCode {
    let mut args = args.to_vec();
    let json_out = match args.iter().position(|a| a == "--json") {
        Some(at) => {
            args.remove(at);
            true
        }
        None => false,
    };
    let Some(path) = args.first() else {
        return usage();
    };
    let registry = Arc::new(Registry::new());
    let Some(result) = profile_capture(path, &registry) else {
        return ExitCode::FAILURE;
    };
    if json_out {
        println!("{}", result.canonical_json());
    } else {
        print_trace(&result);
    }
    ExitCode::SUCCESS
}

// ———————————————————————————— fleet ————————————————————————————

fn fleet(args: &[String]) -> ExitCode {
    let mut args = args.to_vec();
    let read_secs: u64 = take_flag(&mut args, "--read-secs")
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let hold_secs: u64 = take_flag(&mut args, "--hold")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let cars: Vec<CarId> = args.iter().filter_map(|a| parse_car(a)).collect();
    if cars.is_empty() || cars.len() != args.len() {
        eprintln!("error: pass one or more car letters A..R (paper Tab. 3)");
        return usage();
    }

    println!(
        "fleet of {} car(s), dwell {read_secs}s, seed base {EXPERIMENT_SEED}, quick {}",
        cars.len(),
        quick()
    );
    let run = fleet_traced(&cars, read_secs, Duration::from_secs(hold_secs));
    for (id, result) in &run.results {
        println!(
            "car {id:?}: {} formula ESVs, {} enum ESVs, {} ECRs, {} negatives filtered",
            result.formula_esvs().count(),
            result.enum_esvs().count(),
            result.ecrs.len(),
            result.negatives,
        );
    }
    print!("{}", dpr_telemetry::summary::render(&run.snapshot));
    if let Some(path) = &run.trace_events {
        println!("trace events written to {} (open in ui.perfetto.dev)", path.display());
    }
    if let Some(addr) = run.metrics_addr {
        println!("metrics were scrapeable at http://{addr}/metrics (now stopped)");
    }
    ExitCode::SUCCESS
}
