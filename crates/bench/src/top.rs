//! `dpr-bench top`: a terminal dashboard over `GET /metrics/history`.
//!
//! Polls a running service's sampled series document and renders the
//! SLO burn-rate table, per-counter rate sparklines, gauge levels, and
//! the sliding-window latency quantiles — a `top(1)` for the analysis
//! service, no scrape stack required.

use dpr_series::{History, SloStatus, WindowPoint};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Points of history a sparkline compresses into one row.
const SPARK_POINTS: usize = 32;

/// Fetches and parses one `/metrics/history` document.
pub fn fetch_history(addr: &str) -> Result<History, String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("connecting {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| format!("configuring {addr}: {e}"))?;
    let request =
        format!("GET /metrics/history HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    let mut response = Vec::new();
    stream
        .write_all(request.as_bytes())
        .and_then(|()| stream.read_to_end(&mut response).map(|_| ()))
        .map_err(|e| format!("talking to {addr}: {e}"))?;
    let text = String::from_utf8_lossy(&response);
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("{addr} sent no HTTP response"))?;
    if !head.starts_with("HTTP/1.1 200") {
        return Err(format!(
            "/metrics/history answered: {}",
            head.lines().next().unwrap_or(head)
        ));
    }
    dpr_telemetry::json::from_str(body).map_err(|e| format!("bad history payload: {e}"))
}

/// Renders a slice of samples as a unicode sparkline, scaled to the
/// slice's own maximum (an all-zero window renders as all-baseline).
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().cloned().fold(0.0_f64, f64::max);
    values
        .iter()
        .map(|&v| {
            if max <= 0.0 || v <= 0.0 {
                BARS[0]
            } else {
                let at = ((v / max) * (BARS.len() - 1) as f64).round() as usize;
                BARS[at.min(BARS.len() - 1)]
            }
        })
        .collect()
}

fn slo_line(slo: &SloStatus) -> String {
    format!(
        "  {:<18} {:<8} short {:>7.2}x  long {:>7.2}x  budget {:>6.3}  {}\n",
        slo.slug, slo.state, slo.short_burn, slo.long_burn, slo.budget, slo.detail
    )
}

fn quantile_line(name: &str, series: &[WindowPoint]) -> String {
    let last = series.last().cloned().unwrap_or(WindowPoint {
        t_ms: 0,
        count: 0,
        p50: 0.0,
        p95: 0.0,
        p99: 0.0,
    });
    let p99s: Vec<f64> = series
        .iter()
        .rev()
        .take(SPARK_POINTS)
        .rev()
        .map(|p| p.p99)
        .collect();
    format!(
        "  {:<28} {:>6} obs  p50 {:>9.0}  p95 {:>9.0}  p99 {:>9.0}  {}\n",
        name,
        last.count,
        last.p50,
        last.p95,
        last.p99,
        sparkline(&p99s)
    )
}

/// Renders one history document as the full dashboard screen.
pub fn render(addr: &str, history: &History) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "dpr-bench top — http://{addr}  ({} sample(s), every {}ms, keeping {})\n",
        history.samples, history.interval_ms, history.capacity
    ));
    if history.slos.is_empty() {
        out.push_str("\nslos: none configured\n");
    } else {
        out.push_str("\nslos:\n");
        for slo in &history.slos {
            out.push_str(&slo_line(slo));
        }
    }
    if !history.counters.is_empty() {
        out.push_str("\nrates (per second):\n");
        for (name, series) in &history.counters {
            let rates: Vec<f64> = series
                .iter()
                .rev()
                .take(SPARK_POINTS)
                .rev()
                .map(|p| p.rate)
                .collect();
            let now = series.last().map(|p| p.rate).unwrap_or(0.0);
            out.push_str(&format!(
                "  {:<28} {:>9.1}/s  {}\n",
                name,
                now,
                sparkline(&rates)
            ));
        }
    }
    if !history.gauges.is_empty() {
        out.push_str("\ngauges:\n");
        for (name, series) in &history.gauges {
            let levels: Vec<f64> = series
                .iter()
                .rev()
                .take(SPARK_POINTS)
                .rev()
                .map(|p| p.value as f64)
                .collect();
            let now = series.last().map(|p| p.value).unwrap_or(0);
            out.push_str(&format!(
                "  {:<28} {:>11}  {}\n",
                name,
                now,
                sparkline(&levels)
            ));
        }
    }
    if !history.histograms.is_empty() {
        out.push_str("\nwindow quantiles (last window, p99 sparkline):\n");
        for (name, series) in &history.histograms {
            out.push_str(&quantile_line(name, series));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpr_series::{GaugePoint, RatePoint};

    #[test]
    fn sparkline_scales_to_the_window_maximum() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[0.0, 0.0]), "▁▁");
        let line = sparkline(&[1.0, 4.0, 8.0]);
        assert_eq!(line.chars().count(), 3);
        assert!(line.ends_with('█'), "{line}");
    }

    #[test]
    fn render_covers_every_series_family() {
        let mut history = History {
            interval_ms: 250,
            capacity: 64,
            samples: 3,
            ..Default::default()
        };
        history.counters.insert(
            "http.jobs.status.202".to_string(),
            vec![RatePoint {
                t_ms: 250,
                delta: 5,
                rate: 20.0,
            }],
        );
        history.gauges.insert(
            "jobs.queue_depth".to_string(),
            vec![GaugePoint { t_ms: 250, value: 3 }],
        );
        history.histograms.insert(
            "http.jobs.latency_us".to_string(),
            vec![WindowPoint {
                t_ms: 250,
                count: 5,
                p50: 80.0,
                p95: 400.0,
                p99: 900.0,
            }],
        );
        history.slos.push(SloStatus {
            slug: "http_errors".to_string(),
            state: "ok".to_string(),
            short_burn: 0.0,
            long_burn: 0.0,
            budget: 0.01,
            detail: "0 bad / 5 total".to_string(),
        });
        let screen = render("127.0.0.1:8080", &history);
        for needle in [
            "http_errors",
            "http.jobs.status.202",
            "jobs.queue_depth",
            "http.jobs.latency_us",
            "p99",
        ] {
            assert!(screen.contains(needle), "{needle} missing from:\n{screen}");
        }
    }
}
