//! `dpr-bench scale`: the GP-scoring thread-scaling harness behind
//! `BENCH_scale.json`.
//!
//! The paper's cost driver is generation scoring (compile a population
//! of GP trees, batch-evaluate each against the dataset), so that is
//! the workload measured here: one sweep runs the identical scoring
//! pass at several [`dpr_par::Pool`] sizes, resetting the [`dpr_prof`]
//! store between points so each point's scheduling profile (utilization,
//! imbalance, idle/wait/spin-up shares, thread spawns) is attributable
//! to exactly that pool size.
//!
//! Each point scores through the *production* dispatch policy — adaptive
//! batched dispatch sized by [`dpr_prof::break_even_items`] from the
//! point's own measured profile — so the curve reports what the engine
//! actually ships: on hosts where waking the pool loses to inline
//! draining (few cores, high wake latency) the dispatcher keeps scoring
//! inline and the curve holds at parity instead of going negative.
//!
//! [`scale_json`] renders the sweep as one JSON document whose nested
//! `threads_N` blocks flatten (in `dpr-bench regress`) to keys like
//! `threads_2.evals_per_sec` and `threads_2.utilization` — names chosen
//! so the regression gate infers the right direction: throughput,
//! speedup, and utilization gate on drops, imbalance gates on rises,
//! and the share/spawn diagnostics stay informational.

use dpr_gp::expr::{BinaryOp, Expr, UnaryOp};
use dpr_gp::{Columns, CompiledExpr, Dataset, Metric};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// The [`dpr_prof`] label every scale-harness scoring call runs under,
/// isolating the sweep's profile from anything else in the process.
pub const SCALE_LABEL: &str = "bench.scale";

/// One thread-count measurement of the sweep.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Pool size measured.
    pub threads: usize,
    /// Scoring passes completed across the point's timed windows.
    pub passes: u32,
    /// Expression evaluations per second — the best of the point's three
    /// timed windows (population × rows × passes / window wall).
    pub evals_per_sec: f64,
    /// Throughput relative to the sweep's 1-thread point.
    pub speedup: f64,
    /// Mean pool utilization (Σbusy / workers×wall) over the point's calls.
    pub utilization: f64,
    /// Mean busiest-worker/mean-worker busy-time ratio.
    pub imbalance: f64,
    /// Mean share of chunks claimed beyond a worker's fair share.
    pub steal_ratio: f64,
    /// Idle share of pool capacity (spin-up gaps + end-of-call stragglers).
    pub idle_share: f64,
    /// Chunk claim/store synchronization share of pool capacity.
    pub wait_share: f64,
    /// Thread spin-up latency as a share of wall time.
    pub spinup_share: f64,
    /// OS threads spawned during this point (0 once the pool is warm).
    pub pool_spawns: u64,
    /// Worker-attributed heap allocations per scoring pass (0 unless the
    /// counting allocator is installed and `DPR_PROF=1`).
    pub allocs_per_pass: f64,
    /// The point's rendered pool report (table + diagnosis).
    pub report: dpr_prof::PoolReport,
}

/// A whole scaling sweep: the workload dimensions plus one
/// [`ScalePoint`] per pool size, in the order measured.
#[derive(Debug, Clone)]
pub struct ScaleRun {
    /// Whether the sweep ran with the reduced quick-mode workload.
    pub quick: bool,
    /// GP population size scored per pass.
    pub population: usize,
    /// Dataset rows each expression is evaluated against.
    pub rows: usize,
    /// Per-thread-count measurements.
    pub points: Vec<ScalePoint>,
}

/// The default thread ladder: quick mode (CI) measures 1 and 2, a full
/// sweep measures 1/2/4/8.
pub fn default_threads(quick: bool) -> Vec<usize> {
    if quick {
        vec![1, 2]
    } else {
        vec![1, 2, 4, 8]
    }
}

/// The same synthetic sensor dataset the micro-benchmarks score against.
fn scale_dataset() -> Dataset {
    Dataset::from_triples((0..100).map(|i| {
        let x0 = f64::from(100 + (i * 37) % 150);
        let x1 = f64::from(8 + (i * 23) % 24);
        ((x0, x1), x0 * x1 / 5.0)
    }))
    .expect("well-formed")
}

/// A GP-typical population: random grow trees over the full function
/// set, the shapes the engine scores every generation.
fn scale_population(n: usize, depth: usize) -> Vec<Expr> {
    let mut rng = StdRng::seed_from_u64(crate::EXPERIMENT_SEED);
    (0..n)
        .map(|_| {
            Expr::random_grow(
                &mut rng,
                depth,
                2,
                &UnaryOp::ALL,
                &BinaryOp::ALL,
                (-10.0, 10.0),
            )
        })
        .collect()
}

/// Runs the sweep at the given pool sizes. `quick` shrinks the
/// population and the per-point timing window (pass [`crate::quick`]).
///
/// The profile store is [`dpr_prof::reset`] before each point, so the
/// returned scheduling ratios cover exactly that point's calls — note
/// this clears the store for the whole process.
pub fn run_scale(threads: &[usize], quick: bool) -> ScaleRun {
    let min = if quick {
        Duration::from_millis(60)
    } else {
        Duration::from_millis(400)
    };
    let data = scale_dataset();
    let cols = Columns::from_dataset(&data);
    let pop = scale_population(if quick { 32 } else { 128 }, 6);
    let metric = Metric::MeanAbsoluteError;
    let evals_per_pass = (pop.len() * data.len()) as f64;

    // One scoring pass through the *production* dispatch path: adaptive
    // batched dispatch (`par_map_batched` with the break-even threshold
    // learned from this label's own profile), per-worker thread-local
    // scratch exactly like the engine — a persistent pool thread pays
    // for its `BatchScratch` buffers once across all passes, so
    // allocs_per_pass stays flat as threads grow instead of scaling
    // with calls × workers.
    let score = |pool: &dpr_par::Pool| {
        let min_items = dpr_prof::break_even_items(SCALE_LABEL, pool.threads());
        dpr_prof::with_label(SCALE_LABEL, || {
            pool.par_map_batched(&pop, min_items, |e| {
                dpr_gp::compile::with_thread_scratch(|scratch| {
                    CompiledExpr::compile(e).error_on(&cols, metric, scratch)
                })
            })
        })
    };

    // Untimed whole-sweep warm-up on the inline path: first-touch page
    // faults, the CPU's frequency ramp, and branch-predictor training
    // all land here instead of inside the first point's windows — the
    // first point otherwise measures ~10% slow, which would inflate
    // every later point's speedup (or deflate it, when the ladder
    // starts above 1 thread).
    let warm = Instant::now();
    while warm.elapsed() < min {
        score(&dpr_par::Pool::new(1));
    }

    let mut points: Vec<ScalePoint> = Vec::with_capacity(threads.len());
    for &t in threads {
        let pool = dpr_par::Pool::new(t);
        // Resetting here scopes the store to exactly this point's calls.
        dpr_prof::reset();
        // One untimed calibration pass. It is the pass that spawns the
        // point's workers and seeds the label's spin-up/item-cost
        // aggregate, so the adaptive threshold reflects *this machine*
        // before timing starts — its profile stays in the store, which
        // is why the point's spinup_share and pool_spawns still show
        // the true wake-up cost the dispatcher is dodging.
        score(&pool);
        // Best of three timed windows: the max filters scheduler
        // interruptions and frequency ramps, which would otherwise
        // dominate the point-to-point ratio on a busy host.
        let mut passes = 0u32;
        let mut evals_per_sec = 0.0f64;
        for _ in 0..3 {
            let mut window_passes = 0u32;
            let start = Instant::now();
            let elapsed = loop {
                score(&pool);
                window_passes += 1;
                let elapsed = start.elapsed();
                if elapsed >= min {
                    break elapsed;
                }
            };
            let rate = evals_per_pass * f64::from(window_passes) / elapsed.as_secs_f64();
            evals_per_sec = evals_per_sec.max(rate);
            passes += window_passes;
        }

        let snap = dpr_prof::snapshot();
        let report = dpr_prof::render_report(&snap, &format!("pool report @ {t} thread(s)"));
        let sum = snap
            .labels
            .iter()
            .find(|l| l.label == SCALE_LABEL)
            .cloned()
            .unwrap_or_default();
        let capacity = (sum.busy_us + sum.wait_us + sum.idle_us).max(1) as f64;
        points.push(ScalePoint {
            threads: t,
            passes,
            evals_per_sec,
            speedup: 1.0, // filled in below once the baseline is known
            utilization: sum.mean_utilization(),
            imbalance: sum.mean_imbalance(),
            steal_ratio: sum.mean_steal_ratio(),
            idle_share: sum.idle_us as f64 / capacity,
            wait_share: sum.wait_us as f64 / capacity,
            spinup_share: sum.spinup_us as f64 / sum.wall_us.max(1) as f64,
            pool_spawns: sum.spawned_threads,
            allocs_per_pass: sum.allocs as f64 / f64::from(passes.max(1)),
            report,
        });
    }

    // Speedups are relative to the 1-thread point (or the first point,
    // when the caller's ladder skips 1).
    let base = points
        .iter()
        .find(|p| p.threads == 1)
        .or_else(|| points.first())
        .map(|p| p.evals_per_sec)
        .unwrap_or(1.0);
    for point in &mut points {
        point.speedup = if base > 0.0 {
            point.evals_per_sec / base
        } else {
            1.0
        };
    }

    ScaleRun {
        quick,
        population: pop.len(),
        rows: data.len(),
        points,
    }
}

/// Renders the sweep as the scaling-curve table printed by
/// `dpr-bench scale`.
pub fn render_scale(run: &ScaleRun) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "== gp scoring thread scaling ({} exprs × {} rows, quick {}) ==\n",
        run.population, run.rows, run.quick
    ));
    out.push_str(&format!(
        "{:>7} {:>7} {:>12} {:>8} {:>6} {:>6} {:>6} {:>6} {:>7} {:>7}\n",
        "threads", "passes", "evals/sec", "speedup", "util", "imbal", "idle", "wait", "spinup", "spawns"
    ));
    for p in &run.points {
        out.push_str(&format!(
            "{:>7} {:>7} {:>12.0} {:>7.2}x {:>5.0}% {:>6.2} {:>5.0}% {:>5.0}% {:>6.1}% {:>7}\n",
            p.threads,
            p.passes,
            p.evals_per_sec,
            p.speedup,
            p.utilization * 100.0,
            p.imbalance,
            p.idle_share * 100.0,
            p.wait_share * 100.0,
            p.spinup_share * 100.0,
            p.pool_spawns,
        ));
    }
    out
}

/// Renders the sweep as the `BENCH_scale.json` document. Nested
/// `threads_N` blocks flatten to dotted keys in `dpr-bench regress`.
pub fn scale_json(run: &ScaleRun) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"bench\": \"gp_scale\",\n  \"quick\": {},\n  \"population\": {},\n  \"rows\": {},\n",
        run.quick, run.population, run.rows
    ));
    for (i, p) in run.points.iter().enumerate() {
        let comma = if i + 1 == run.points.len() { "" } else { "," };
        out.push_str(&format!(
            concat!(
                "  \"threads_{t}\": {{\n",
                "    \"evals_per_sec\": {eps:.0},\n",
                "    \"speedup\": {sp:.3},\n",
                "    \"utilization\": {util:.3},\n",
                "    \"imbalance\": {imb:.3},\n",
                "    \"steal_ratio\": {steal:.3},\n",
                "    \"idle_share\": {idle:.3},\n",
                "    \"wait_share\": {wait:.3},\n",
                "    \"spinup_share\": {spin:.4},\n",
                "    \"pool_spawns\": {spawns},\n",
                "    \"allocs_per_pass\": {apc:.0}\n",
                "  }}{comma}\n"
            ),
            t = p.threads,
            eps = p.evals_per_sec,
            sp = p.speedup,
            util = p.utilization,
            imb = p.imbalance,
            steal = p.steal_ratio,
            idle = p.idle_share,
            wait = p.wait_share,
            spin = p.spinup_share,
            spawns = p.pool_spawns,
            apc = p.allocs_per_pass,
            comma = comma,
        ));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_measures_every_point_and_emits_gateable_json() {
        let run = run_scale(&[1, 2], true);
        assert_eq!(run.points.len(), 2);
        assert_eq!(run.points[0].threads, 1);
        assert_eq!(run.points[1].threads, 2);
        assert!((run.points[0].speedup - 1.0).abs() < 1e-9);
        for p in &run.points {
            assert!(p.evals_per_sec > 0.0, "threads {}", p.threads);
            assert!(p.utilization > 0.0 && p.utilization <= 1.0);
            assert!(p.imbalance >= 1.0);
            assert!((0.0..=1.0).contains(&p.idle_share));
            assert!(!p.report.text.is_empty());
        }
        // The 1-thread point runs inline: perfectly utilized, no spawns.
        assert!((run.points[0].utilization - 1.0).abs() < 1e-9);

        let json = scale_json(&run);
        let value = dpr_telemetry::json::parse(&json).expect("valid JSON");
        let cmp = dpr_obs::regress::compare(&value, &value, 0.15);
        assert!(!cmp.has_regressions());
        let keys: Vec<&str> = cmp.rows.iter().map(|r| r.metric.as_str()).collect();
        assert!(keys.contains(&"threads_1.evals_per_sec"));
        assert!(keys.contains(&"threads_2.utilization"));
        assert!(keys.contains(&"threads_2.imbalance"));
        use dpr_obs::regress::{direction_for, Direction};
        assert_eq!(
            direction_for("threads_2.speedup"),
            Direction::HigherIsBetter
        );
        assert_eq!(
            direction_for("threads_2.imbalance"),
            Direction::LowerIsBetter
        );
    }

    #[test]
    fn scale_table_lists_each_thread_count() {
        let run = ScaleRun {
            quick: true,
            population: 32,
            rows: 100,
            points: Vec::new(),
        };
        let text = render_scale(&run);
        assert!(text.contains("gp scoring thread scaling"));
        assert!(text.contains("speedup"));
    }
}
