//! Table 10 — precision of the baseline inference algorithms.
//!
//! Paper: over the same 290 formula ESVs, linear regression infers only
//! 127 correctly (43.8%) and polynomial curve fitting 93 (32.1%), versus
//! GP's 285 (98.3%). Two causes (§4.4): OCR outliers skew the unprotected
//! least-squares fits, and linear regression cannot express the
//! nonlinear KWP formulas at all.
//!
//! Following the paper's framing — the baselines stand in for the
//! LibreCAN/READ-style pipeline, which has none of DP-Reverser's §3.3
//! protections — they are fitted on *unfiltered* OCR readings: no range
//! check, no MAD outlier stage, no robust trim, no scaling. GP (Tab. 6)
//! gets the full §3.3/§3.5 treatment; that asymmetry is exactly the
//! paper's point.

use dp_reverser::match_series_two_pass;
use dpr_baselines::{LinearRegression, PolynomialFit, Regressor};
use dpr_bench::{collect_car, header, pct, quick, scheme_for, EXPERIMENT_SEED};
use dpr_can::Micros;
use dpr_frames::{analyze_capture, SourceKey};
use dpr_gp::Dataset;
use dpr_ocr::{read_frames, OcrChannel};
use dpr_protocol::EsvFormula;
use dpr_tool::ToolProfile;
use dpr_vehicle::ecu::EsvId;
use dpr_vehicle::profiles::{self, CarId};

fn esv_id_for(key: SourceKey) -> Option<EsvId> {
    match key {
        SourceKey::UdsDid(d) => Some(EsvId::Uds(dpr_protocol::uds::Did(d))),
        SourceKey::Kwp { local_id, slot } => Some(EsvId::Kwp {
            local_id: dpr_protocol::kwp::LocalId(local_id),
            slot,
        }),
        SourceKey::Obd(_) => None,
    }
}

/// Counts (correct, total) formula inferences for one baseline on one car.
fn run_car(id: CarId, seed: u64, read_secs: u64) -> (usize, usize, usize, usize) {
    let spec = profiles::spec(id);
    let report = collect_car(id, seed, read_secs);
    let capture = analyze_capture(&report.log, scheme_for(id));
    fn spec_quality(spec: &profiles::CarSpec) -> f64 {
        ToolProfile::by_name(spec.tool)
            .map(|p| p.ocr_quality)
            .unwrap_or(0.998)
    }

    // Screenshot analysis with the tool's OCR noise — completely
    // unfiltered: every parseable reading (outliers included) reaches the
    // least-squares fits, as in the READ/LibreCAN pipeline.
    let ocr = OcrChannel::new(spec_quality(&spec), seed);
    let readings: Vec<_> = read_frames(&report.frames, &ocr)
        .into_iter()
        .filter(|r| r.value.is_some())
        .collect();

    let mut labels: Vec<(String, String)> = readings
        .iter()
        .map(|r| (r.screen.clone(), r.label.clone()))
        .collect();
    labels.sort();
    labels.dedup();
    let y_series: Vec<dp_reverser::LabelSeries> = labels
        .into_iter()
        .map(|key| {
            let series = readings
                .iter()
                .filter(|r| r.screen == key.0 && r.label == key.1)
                .filter_map(|r| r.value.map(|v| (r.at, v)))
                .collect();
            (key, series)
        })
        .collect();
    let matches = match_series_two_pass(
        &capture.extraction.series,
        &y_series,
        Micros::from_secs(1),
        0.5,
    );

    let truth_points = report.vehicle.esv_points();
    let mut lin_correct = 0;
    let mut poly_correct = 0;
    let mut total = 0;
    for m in &matches {
        if m.pairs.len() < 6 {
            continue;
        }
        let key = capture.extraction.series[m.series_idx].key;
        let Some(esv_id) = esv_id_for(key) else { continue };
        let Some(point) = truth_points.iter().find(|p| p.id == esv_id) else {
            continue;
        };
        let truth = point.formula;
        if !truth.has_formula() {
            continue;
        }
        total += 1;

        let rows: Vec<Vec<f64>> = m.pairs.iter().map(|(x, _)| x.clone()).collect();
        let ys: Vec<f64> = m.pairs.iter().map(|(_, y)| *y).collect();
        let Ok(data) = Dataset::new(rows.clone(), ys) else {
            continue;
        };
        let ranges: Vec<(f64, f64)> = (0..rows[0].len())
            .map(|c| {
                let mut lo = f64::INFINITY;
                let mut hi = f64::NEG_INFINITY;
                for r in &rows {
                    lo = lo.min(r[c]);
                    hi = hi.max(r[c]);
                }
                (lo, hi)
            })
            .collect();
        // The paper's baseline criterion is structural: the inferred
        // coefficients must be close to the ground truth's (its §4.4
        // rejects polyfit's 0.032·X0·X1 against the true 0.2·X0·X1 even
        // though it fit the observed data). Compare coefficient vectors
        // over the quadratic basis, weighting each mismatch by the term's
        // magnitude over the observed range.
        let two = rows[0].len() > 1;
        if let Some(truth_coeffs) = poly_coeffs(truth) {
            if let Some(model) = LinearRegression.fit(&data) {
                // Basis [1, x0, (x1)] padded with zeros for the missing
                // quadratic terms.
                let c = model.coefficients();
                let fitted = [
                    c[0],
                    c[1],
                    if two { c[2] } else { 0.0 },
                    0.0,
                    0.0,
                    0.0,
                ];
                if coeffs_close(&fitted, &truth_coeffs, &ranges) {
                    lin_correct += 1;
                }
            }
            if let Some(model) = PolynomialFit.fit(&data) {
                let c = model.coefficients();
                let fitted = if two {
                    // [1, x0, x1, x0x1, x0^2, x1^2]
                    [c[0], c[1], c[2], c[3], c[4], c[5]]
                } else {
                    // [1, x0, x0^2]
                    [c[0], c[1], 0.0, 0.0, c[2], 0.0]
                };
                if coeffs_close(&fitted, &truth_coeffs, &ranges) {
                    poly_correct += 1;
                }
            }
        }
        // Non-polynomial truths (inverse formulas) are unrepresentable by
        // either baseline: both are counted incorrect by construction.
    }
    (lin_correct, poly_correct, total, matches.len())
}

/// Expands a ground-truth formula into coefficients over the basis
/// `[1, x0, x1, x0·x1, x0², x1²]`; `None` for non-polynomial shapes.
fn poly_coeffs(truth: EsvFormula) -> Option<[f64; 6]> {
    match truth {
        EsvFormula::Linear { a, b } => Some([b, a, 0.0, 0.0, 0.0, 0.0]),
        EsvFormula::Affine2 { a, b, c } => Some([c, a, b, 0.0, 0.0, 0.0]),
        EsvFormula::Product { a, b } => Some([b, 0.0, 0.0, a, 0.0, 0.0]),
        EsvFormula::Square { a, b } => Some([b, 0.0, 0.0, 0.0, a, 0.0]),
        EsvFormula::OffsetProduct { a, k } => {
            // a·x0·(x1 − k) = −a·k·x0 + a·x0·x1
            Some([0.0, -a * k, 0.0, a, 0.0, 0.0])
        }
        EsvFormula::Inverse { .. } | EsvFormula::Enumeration => None,
    }
}

/// Structural closeness: the summed coefficient mismatch, weighted by each
/// basis term's magnitude over the observed range, must stay below 8% of
/// the output scale — the "coefficient very close to ground truth" test.
fn coeffs_close(fitted: &[f64; 6], truth: &[f64; 6], ranges: &[(f64, f64)]) -> bool {
    let (x0_lo, x0_hi) = ranges[0];
    let (x1_lo, x1_hi) = ranges.get(1).copied().unwrap_or((0.0, 0.0));
    let m0 = x0_lo.abs().max(x0_hi.abs());
    let m1 = x1_lo.abs().max(x1_hi.abs());
    let term_scales = [1.0, m0, m1, m0 * m1, m0 * m0, m1 * m1];
    let y_scale: f64 = truth
        .iter()
        .zip(&term_scales)
        .map(|(c, s)| (c * s).abs())
        .sum::<f64>()
        .max(1.0);
    let mismatch: f64 = fitted
        .iter()
        .zip(truth)
        .zip(&term_scales)
        .map(|((f, t), s)| ((f - t) * s).abs())
        .sum();
    mismatch <= 0.08 * y_scale
}

fn main() {
    header(
        "Table 10: precision of linear regression and polynomial curve fitting",
        "linreg 127/290 = 43.8%; polyfit 93/290 = 32.1% (GP: 285/290 = 98.3%)",
    );
    let read_secs = if quick() { 4 } else { 10 };
    println!(
        "{:6} {:>14} {:>22} {:>22}",
        "car", "#ESV(formula)", "#correct (linreg)", "#correct (polyfit)"
    );
    let mut totals = (0usize, 0usize, 0usize);
    for id in CarId::ALL {
        let seed = EXPERIMENT_SEED ^ (id as u64 + 1);
        let (lin, poly, total, _) = run_car(id, seed, read_secs);
        println!("{:6} {:>14} {:>22} {:>22}", format!("{id}"), total, lin, poly);
        totals.0 += lin;
        totals.1 += poly;
        totals.2 += total;
    }
    println!(
        "\n{:6} {:>14} {:>15} {} {:>15} {}",
        "Total",
        totals.2,
        totals.0,
        pct(totals.0, totals.2),
        totals.1,
        pct(totals.1, totals.2),
    );
    println!("paper totals: linreg 127/290 (43.8%), polyfit 93/290 (32.1%)");
    println!("\nshape check: both baselines fall far below GP's Tab. 6 precision;");
    println!("linear regression additionally cannot express the product-form KWP");
    println!("formulas (engine speed X0*X1/5) even on perfectly clean data.");
}
