//! Table 13 — attacking vehicles with reverse-engineered messages (§9.3).
//!
//! Paper: recovered diagnostic messages injected into four running
//! vehicles (BMW i3, Lexus NX300, Toyota Corolla, Kia) all trigger their
//! actions — reading data, controlling lights/wipers/locks, resetting
//! ECUs. Here the "attacker" reverse engineers each car once, then
//! replays the recovered control procedures at a fresh instance of the
//! same model and verifies the components actuate.

use dpr_bench::{analyze, collect_car, header, quick, EXPERIMENT_SEED};
use dpr_can::CanBus;
use dpr_frames::EcrTarget;
use dpr_protocol::kwp::LocalId;
use dpr_protocol::uds::Did;
use dpr_transport::bmw::BmwRawEndpoint;
use dpr_transport::isotp::IsoTpEndpoint;
use dpr_transport::Endpoint;
use dpr_vehicle::ecu::ComponentKey;
use dpr_vehicle::profiles::{self, CarId};
use dpr_vehicle::{run_exchange, AttachedVehicle, TransportKind};

/// Replays one recovered procedure at the victim; returns whether the
/// addressed component actually actuated.
fn replay(
    victim: &mut AttachedVehicle,
    bus: &mut CanBus,
    dongle_node: dpr_can::NodeHandle,
    transport: TransportKind,
    target: EcrTarget,
    state: &[u8],
) -> bool {
    // Find the ECU that owns the target to learn its CAN ids (an attacker
    // scans request ids; here we read them from the victim's ECU list,
    // which only exposes addressing, not tables).
    let key = match target {
        EcrTarget::Id2F(id) => ComponentKey::UdsDid(Did(id)),
        EcrTarget::Local30(l) => ComponentKey::KwpLocal(LocalId(l)),
    };
    let Some((req, rsp, addr, security)) = victim
        .ecus()
        .find(|e| e.component(key).is_some())
        .map(|e| {
            (
                e.request_id(),
                e.response_id(),
                e.address,
                e.security_secret.filter(|_| e.is_secured(key)),
            )
        })
    else {
        return false;
    };
    let mut endpoint: Box<dyn Endpoint> = match transport {
        TransportKind::IsoTp => Box::new(IsoTpEndpoint::new(req, rsp)),
        TransportKind::BmwRaw => Box::new(BmwRawEndpoint::new(req, rsp, addr, 0xF1)),
        TransportKind::VwTp => {
            Box::new(dpr_transport::vwtp::VwTpEndpoint::initiator(req, rsp, addr))
        }
    };
    let messages: Vec<Vec<u8>> = match target {
        EcrTarget::Id2F(id) => {
            let [hi, lo] = id.to_be_bytes();
            let mut adjust = vec![0x2F, hi, lo, 0x03];
            adjust.extend_from_slice(state);
            vec![vec![0x2F, hi, lo, 0x02], adjust, vec![0x2F, hi, lo, 0x00]]
        }
        EcrTarget::Local30(l) => {
            let mut adjust = vec![0x30, l, 0x03];
            adjust.extend_from_slice(state);
            vec![vec![0x30, l, 0x02], adjust, vec![0x30, l, 0x00]]
        }
    };
    // Secured components need the seed-key handshake first. The attacker
    // has the algorithm — the paper's threat model assumes the tool can be
    // reverse engineered offline, and seed-key routines are routinely
    // lifted from tool firmware.
    if let Some(secret) = security {
        if endpoint.send(&[0x27, 0x01], bus.now()).is_err() {
            return false;
        }
        if run_exchange(bus, dongle_node, endpoint.as_mut(), victim).is_err() {
            return false;
        }
        if let Some(rsp) = endpoint.receive() {
            if rsp.len() >= 4 && rsp[0] == 0x67 {
                let k = (u16::from_be_bytes([rsp[2], rsp[3]]) ^ secret).to_be_bytes();
                let _ = endpoint.send(&[0x27, 0x02, k[0], k[1]], bus.now());
                let _ = run_exchange(bus, dongle_node, endpoint.as_mut(), victim);
                let _ = endpoint.receive();
            }
        }
    }
    for m in messages {
        if endpoint.send(&m, bus.now()).is_err() {
            return false;
        }
        if run_exchange(bus, dongle_node, endpoint.as_mut(), victim).is_err() {
            return false;
        }
        let _ = endpoint.receive();
    }
    victim
        .ecus()
        .filter_map(|e| e.component(key))
        .any(|c| c.was_adjusted())
}

fn main() {
    header(
        "Table 13: replaying reverse-engineered messages at running vehicles",
        "all recovered messages trigger their actions on 4 vehicles",
    );
    let read_secs = if quick() { 1 } else { 2 };
    // The paper's four attack targets: BMW i3 has no Tab. 11 ECRs in our
    // profile set, so the four Tab. 11 cars closest to §9.3's set stand
    // in: BMW 532Li (BMW), Lexus NX300 (Lexus), Toyota-style Car Q uses
    // service 30, and Kia k2.
    let targets = [CarId::J, CarId::D, CarId::Q, CarId::N];
    println!(
        "{:22} {:>10} {:>13} {:>9}",
        "vehicle", "#recovered", "#injected ok", "actuated"
    );
    let mut all_ok = true;
    for id in targets {
        let spec = profiles::spec(id);
        let seed = EXPERIMENT_SEED ^ 0xA77 ^ (id as u64);
        let report = collect_car(id, seed, read_secs);
        let result = analyze(id, seed, &report);

        // Fresh victim instance of the same model.
        let mut bus = CanBus::new();
        let dongle = bus.attach("attack dongle");
        let mut victim = profiles::build(id, seed).attach(&mut bus);

        let mut actuated = 0usize;
        for ecr in &result.ecrs {
            if replay(&mut victim, &mut bus, dongle, spec.transport, ecr.target, &ecr.state) {
                actuated += 1;
            }
        }
        all_ok &= actuated == result.ecrs.len() && !result.ecrs.is_empty();
        println!(
            "{:22} {:>10} {:>13} {:>9}   (paper: all succeed)",
            spec.model,
            result.ecrs.len(),
            actuated,
            if actuated == result.ecrs.len() { "ALL" } else { "SOME" },
        );
    }
    println!(
        "\nshape check: {} — recovered procedures transfer to fresh vehicles of the",
        if all_ok { "every injected procedure actuated its component" } else { "NOT all procedures actuated" }
    );
    println!("same model, the paper's threat-model claim (§2.1/§9.3).");
}
