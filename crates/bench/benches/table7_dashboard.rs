//! Table 7 — validating inferred formulas against vehicle dashboards.
//!
//! Paper: on four real cars the values computed with the inferred
//! formulas match the dashboard displays. Car F: `Y = X`; Car K:
//! `Y = X0·X1/5`; Car L: `Y = 0.5·X`; Car R: `Y = 64.1·X0 + 0.241·X1`.

use dp_reverser::RecoveredKind;
use dpr_bench::{analyze, collect_car, header, quick, EXPERIMENT_SEED};
use dpr_frames::SourceKey;
use dpr_vehicle::ecu::EsvId;
use dpr_vehicle::profiles::CarId;

fn source_key_for(id: EsvId) -> SourceKey {
    match id {
        EsvId::Uds(did) => SourceKey::UdsDid(did.0),
        EsvId::Kwp { local_id, slot } => SourceKey::Kwp {
            local_id: local_id.0,
            slot,
        },
    }
}

fn main() {
    header(
        "Table 7: dashboard validation of inferred formulas",
        "four cars; every inferred formula matches the dashboard (all check marks)",
    );
    let read_secs = if quick() { 4 } else { 10 };
    println!(
        "{:8} {:26} {:52} {:>5}",
        "vehicle", "ESV on dashboard", "formula (GP) system output", "same?"
    );
    let cases = [
        (CarId::F, "Y = X"),
        (CarId::K, "Y = X0*X1/5"),
        (CarId::L, "Y = 0.5X"),
        (CarId::R, "Y = 64.1X0 + 0.241X1"),
    ];
    let mut matched = 0;
    for (id, paper_formula) in cases {
        let seed = EXPERIMENT_SEED ^ (id as u64 + 1);
        let report = collect_car(id, seed, read_secs);
        let result = analyze(id, seed, &report);

        let dash = report.vehicle.dashboard()[0].clone();
        let key = source_key_for(dash.id);
        let Some(esv) = result.esvs.iter().find(|e| e.key == key) else {
            println!("{:8} {:26} NOT RECOVERED", format!("{id}"), dash.label);
            continue;
        };
        // The dashboard shows the true sensor value; the recovered rule
        // applied to the raw traffic must reproduce it — i.e. numeric
        // agreement with the hidden formula over the observed raw range.
        let truth = report
            .vehicle
            .esv_points()
            .iter()
            .find(|p| p.id == dash.id)
            .expect("dashboard point exists")
            .formula;
        let (ok, shown) = match &esv.kind {
            RecoveredKind::Formula(model) => (
                model.agrees_with(
                    |x| truth.eval(x[0], x.get(1).copied().unwrap_or(0.0)),
                    &esv.x_ranges,
                    0.04,
                ),
                model.describe(),
            ),
            RecoveredKind::Enumeration => {
                // Enumeration = identity; correct exactly for Car F.
                let (lo, hi) = esv.x_ranges[0];
                let id_ok = (0..8).all(|i| {
                    let x = lo + (hi - lo) * f64::from(i) / 7.0;
                    (truth.eval(x, 0.0) - x).abs() <= 0.04 * x.abs().max(1.0)
                });
                (id_ok, "Y = X (identity/enumeration)".to_string())
            }
        };
        if ok {
            matched += 1;
        }
        println!(
            "{:8} {:26} {:52} {:>5}   (paper: {paper_formula})",
            format!("{id}"),
            dash.label,
            shown,
            if ok { "YES" } else { "NO" }
        );
    }
    println!("\nshape check: {matched}/4 dashboard formulas validated (paper: 4/4)");
}
