//! Table 9 — single vs. multi-frame shares in UDS and KWP 2000 traffic.
//!
//! Paper: Car A's UDS capture has 31,963 frames — 55.1% single frames,
//! 32.0% multi-frame (FF+CF), the rest flow control. Cars B+C's KWP 2000
//! capture has 4,556 frames — 24.8% "last" frames and 75.2% frames that
//! must wait for more. Without payload reassembly those multi-frame
//! shares are unreadable — the motivation for the transport layer.

use dpr_bench::{collect_car, header, pct, quick, scheme_for, EXPERIMENT_SEED};
use dpr_frames::{analyze_capture, FrameStats};
use dpr_vehicle::profiles::CarId;

fn main() {
    header(
        "Table 9: number/percentage of single and multi frames",
        "UDS: 17,601 (55.1%) single / 10,213 (32.0%) multi of 31,963; KWP: 1,131 (24.8%) / 3,425 (75.2%) of 4,556",
    );
    let read_secs = if quick() { 4 } else { 12 };

    // UDS row: Car A (Skoda Octavia), as in the paper.
    let report_a = collect_car(CarId::A, EXPERIMENT_SEED, read_secs);
    let uds = analyze_capture(&report_a.log, scheme_for(CarId::A)).stats;

    // KWP row: Cars B + C (VW Magotan + Lavida) combined, as in the paper.
    let mut kwp = FrameStats::default();
    for id in [CarId::B, CarId::C] {
        let report = collect_car(id, EXPERIMENT_SEED ^ id as u64, read_secs);
        kwp.merge(analyze_capture(&report.log, scheme_for(id)).stats);
    }

    println!(
        "{:10} {:>16} {:>16} {:>10} {:>9}",
        "protocol", "#single frames", "#multi frames", "#control", "#total"
    );
    // The UDS row is tallied over all frames (single / multi / FC), the
    // KWP row over data frames only — exactly how the paper counts: its
    // screening step removes VW TP control frames first, then splits the
    // remaining data frames into "last" (single) and "needs to wait"
    // (multi).
    {
        let stats = uds;
        println!(
            "{:10} {:>9} ({}) {:>8} ({}) {:>10} {:>9}   paper: 55.1% / 32.0%",
            "UDS",
            stats.single,
            pct(stats.single, stats.total()),
            stats.multi,
            pct(stats.multi, stats.total()),
            stats.control,
            stats.total(),
        );
    }
    {
        let stats = kwp;
        let data = stats.single + stats.multi;
        println!(
            "{:10} {:>9} ({}) {:>8} ({}) {:>10} {:>9}   paper: 24.8% / 75.2%",
            "KWP 2000",
            stats.single,
            pct(stats.single, data),
            stats.multi,
            pct(stats.multi, data),
            stats.control,
            data,
        );
    }
    println!("\nshape check: the KWP 2000 capture is dominated by multi-frame traffic");
    println!("(every measuring-block response spans several VW TP 2.0 frames), while");
    println!("UDS mixes short single-frame reads with longer multi-DID responses —");
    println!("reassembly is mandatory before any field can be extracted.");
}
