//! Table 6 — ESV formula inference precision per car.
//!
//! Paper: 290 formula ESVs over 18 vehicles; GP infers 285 correctly
//! (98.3%), plus 156 enumeration ESVs. This is the paper's headline
//! result.

use dp_reverser::evaluate;
use dpr_bench::{analyze_traced, collect_car, header, par_cars, pct, quick, EXPERIMENT_SEED};
use dpr_vehicle::profiles::{self, CarId};

fn main() {
    header(
        "Table 6: result of ESV analysis (GP formula inference per car)",
        "290 formula ESVs, 285 correct (98.3%), 156 enum ESVs",
    );
    let read_secs = if quick() { 4 } else { 10 };
    println!(
        "{:6} {:>14} {:>13} {:>10} {:>12} {:>13}",
        "car", "#ESV(formula)", "#correct ESV", "precision", "#ESV(enum)", "#enum correct"
    );
    let mut total = dp_reverser::PrecisionReport::default();
    let paper_rows = [
        (CarId::A, 28, 28), (CarId::B, 8, 7), (CarId::C, 5, 5), (CarId::D, 12, 12),
        (CarId::E, 5, 5), (CarId::F, 8, 8), (CarId::G, 5, 4), (CarId::H, 5, 5),
        (CarId::I, 11, 9), (CarId::J, 20, 20), (CarId::K, 41, 41), (CarId::L, 29, 28),
        (CarId::M, 4, 4), (CarId::N, 26, 26), (CarId::O, 18, 18), (CarId::P, 7, 7),
        (CarId::Q, 18, 18), (CarId::R, 40, 40),
    ];
    // Each car is an independent collect→analyze→score job; fan them out
    // across the DPR_THREADS worker pool. Results come back in car
    // order, and each job runs in its own telemetry scope, so the table
    // is byte-identical to a sequential run.
    let cars: Vec<CarId> = paper_rows.iter().map(|&(id, _, _)| id).collect();
    let precisions = par_cars(&cars, |id| {
        let seed = EXPERIMENT_SEED ^ (id as u64 + 1);
        let report = collect_car(id, seed, read_secs);
        let result = analyze_traced(id, seed, &report);
        evaluate(&result, &report.vehicle)
    });
    for ((id, paper_total, paper_correct), precision) in paper_rows.into_iter().zip(precisions) {
        println!(
            "{:6} {:>14} {:>13} {:>10} {:>12} {:>13}   (paper: {}/{})",
            format!("{id}"),
            precision.formula_total,
            precision.formula_correct,
            pct(precision.formula_correct, precision.formula_total),
            precision.enum_total,
            precision.enum_correct,
            paper_correct,
            paper_total,
        );
        total.merge(precision);
    }
    println!(
        "\n{:6} {:>14} {:>13} {:>10} {:>12} {:>13}",
        "Total",
        total.formula_total,
        total.formula_correct,
        pct(total.formula_correct, total.formula_total),
        total.enum_total,
        total.enum_correct,
    );
    println!(
        "paper total: 290 formula ESVs, 285 correct (98.3%), 156 enum ESVs; missed here: {}",
        total.missed
    );
    if total.formula_total > 0 {
        let precision = total.formula_correct as f64 / total.formula_total as f64;
        println!(
            "\nshape check: overall precision {:.1}% — {} the paper's ≥95% band",
            precision * 100.0,
            if precision >= 0.95 { "inside" } else { "OUTSIDE" }
        );
    }
    let _ = profiles::spec(CarId::A); // keep the profiles link alive in docs
}
