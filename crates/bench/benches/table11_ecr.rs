//! Table 11 — ECU-control records extracted per vehicle.
//!
//! Paper: 124 ECRs across ten vehicles — five using UDS IO control
//! (service 0x2F) and five using IO control by local identifier
//! (service 0x30) — and every control procedure follows the
//! freeze (0x02) → short-term-adjustment (0x03) → return (0x00) pattern.

use dpr_bench::{analyze, collect_car, header, quick, EXPERIMENT_SEED};
use dpr_frames::EcrTarget;
use dpr_vehicle::profiles::{self, CarId, EcrService};

fn main() {
    header(
        "Table 11: number of ECRs extracted from vehicles",
        "124 ECRs over 10 vehicles; every procedure is freeze/adjust/return",
    );
    let read_secs = if quick() { 1 } else { 2 };
    println!(
        "{:6} {:>6} {:>11} {:>16} {:>9}",
        "car", "#ECR", "service id", "complete pattern", "labelled"
    );
    let mut total = 0usize;
    let mut total_expected = 0usize;
    let mut all_complete = true;
    for id in CarId::ALL {
        let spec = profiles::spec(id);
        if spec.ecrs == 0 {
            continue;
        }
        let seed = EXPERIMENT_SEED ^ 0xEC4 ^ (id as u64);
        let report = collect_car(id, seed, read_secs);
        let result = analyze(id, seed, &report);

        let service = match spec.ecr_service {
            Some(EcrService::Uds2F) => "2F",
            Some(EcrService::Local30) => "30",
            None => unreachable!("ecrs > 0 implies a service"),
        };
        // Consistency: recovered targets match the service.
        let service_ok = result.ecrs.iter().all(|e| match spec.ecr_service {
            Some(EcrService::Uds2F) => matches!(e.target, EcrTarget::Id2F(_)),
            Some(EcrService::Local30) => matches!(e.target, EcrTarget::Local30(_)),
            None => false,
        });
        let complete = result.ecrs.iter().filter(|e| e.complete_pattern).count();
        let labelled = result.ecrs.iter().filter(|e| e.label.is_some()).count();
        all_complete &= complete == result.ecrs.len();
        total += result.ecrs.len();
        total_expected += spec.ecrs;
        println!(
            "{:6} {:>6} {:>11} {:>13}/{:<2} {:>6}/{:<2}   (paper: {} over {service})",
            format!("{id}"),
            result.ecrs.len(),
            if service_ok { service } else { "MIXED" },
            complete,
            result.ecrs.len(),
            labelled,
            result.ecrs.len(),
            spec.ecrs,
        );
    }
    println!("\ntotal recovered: {total} (paper: 124; simulated ground truth: {total_expected})");
    println!(
        "three-message pattern: {}",
        if all_complete {
            "every procedure is freeze(0x02) -> short-term adjustment(0x03) -> return(0x00), as in §4.5"
        } else {
            "NOT all procedures complete"
        }
    );
}
