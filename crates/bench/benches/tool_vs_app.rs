//! §4.6 — professional tool vs. telematics app coverage comparison.
//!
//! Paper (VW Passat / Toyota Corolla): the AUTEL 919 discovers 18 / 31
//! ECUs and reads 203 / 242 proprietary ESVs; the Carly apps see only
//! 10 / 14 ECUs and read **none** of those ESVs — telematics apps speak
//! OBD-II (7 standard PIDs here), not the manufacturers' UDS/KWP tables.
//! The comparison is the paper's justification for harvesting
//! professional tools.

use dpr_bench::{analyze, collect_car, header, quick, EXPERIMENT_SEED};
use dpr_can::Micros;
use dpr_frames::{analyze_capture, Scheme, SourceKey};
use dpr_tool::database::obd_database;
use dpr_tool::{ToolProfile, ToolSession};
use dpr_vehicle::profiles::{self, CarId};

/// ESVs readable through the OBD app: run the app session, count the
/// distinct PIDs observed in its traffic.
fn app_coverage(id: CarId, seed: u64, dwell_secs: u64) -> (usize, usize) {
    let car = profiles::build(id, seed);
    let (req, rsp) = car.obd_ids().expect("profile cars expose OBD-II");
    let db = obd_database("App View", req, rsp);
    let mut session = ToolSession::with_database(car, ToolProfile::chevrosys_app(), db);
    session.tool_mut().goto_data_stream(0, 0);
    session
        .wait(Micros::from_secs(dwell_secs))
        .expect("app session runs");
    let (log, _, _) = session.into_artifacts();
    let capture = analyze_capture(&log, Scheme::IsoTp);
    let obd_esvs = capture
        .extraction
        .series
        .iter()
        .filter(|s| matches!(s.key, SourceKey::Obd(_)))
        .count();
    let proprietary_esvs = capture
        .extraction
        .series
        .iter()
        .filter(|s| !matches!(s.key, SourceKey::Obd(_)))
        .count();
    (obd_esvs, proprietary_esvs)
}

fn main() {
    header(
        "§4.6: coverage of professional diagnostic tools vs. telematics apps",
        "Passat: tool 18 ECUs / 203 ESVs vs app 10 ECUs / 0 proprietary ESVs; Corolla: 31/242 vs 14/0",
    );
    let dwell = if quick() { 3 } else { 8 };
    println!(
        "{:20} {:>10} {:>12} {:>14} {:>18}",
        "vehicle", "ECUs", "tool ESVs", "app OBD PIDs", "app propr. ESVs"
    );
    // The paper's two comparison cars: VW Passat (K) and Toyota Corolla (L).
    for id in [CarId::K, CarId::L] {
        let spec = profiles::spec(id);
        let seed = EXPERIMENT_SEED ^ 0x746 ^ (id as u64);

        // Professional tool: full collection + pipeline.
        let report = collect_car(id, seed, dwell);
        let result = analyze(id, seed, &report);
        let ecus = report.vehicle.ecus().count();
        let tool_esvs = result.esvs.len();

        // Telematics app: OBD-II only.
        let (app_obd, app_proprietary) = app_coverage(id, seed, dwell);

        println!(
            "{:20} {:>10} {:>12} {:>14} {:>18}",
            spec.model, ecus, tool_esvs, app_obd, app_proprietary
        );
    }
    println!("\nshape check: the professional tool reaches every ECU and every");
    println!("proprietary ESV of the simulated cars; the app reads only the 7");
    println!("standard OBD-II PIDs and zero proprietary signals — the paper's");
    println!("motivation for DP-Reverser targeting professional tools.");
}
