//! Ablations of DP-Reverser's design choices (DESIGN.md §"Key design
//! decisions").
//!
//! 1. Tab. 2 pre-/post-scaling on vs. off (paper §3.5 Step 3 motivation);
//! 2. the two-stage incorrect-ESV filter on vs. off under heavy OCR noise
//!    (paper §3.3 / §4.4 motivation);
//! 3. payload reassembly on vs. off (paper §4.4 "necessity of payload
//!    recovering").

use dp_reverser::{evaluate, DpReverser, PipelineConfig};
use dpr_bench::{collect_car, header, pct, quick, scheme_for, EXPERIMENT_SEED};
use dpr_can::BusLog;
use dpr_gp::{scaling::ScalePlan, Dataset, GpConfig, SymbolicRegressor};
use dpr_ocr::OcrChannel;
use dpr_vehicle::profiles::CarId;

/// Ablation 1: GP accuracy with and without Tab. 2 scaling on targets far
/// outside the 1..10 band.
fn scaling_ablation() {
    println!("--- ablation 1: Tab. 2 scaling on/off ---");
    // Y in the thousands (engine speed) and in the hundredths (torque in
    // per-mille units), the two failure modes §3.5 Step 3 names.
    let cases: Vec<(&str, Dataset)> = vec![
        (
            "Y ~ 10^3 (engine speed)",
            Dataset::from_pairs((0..80).map(|i| {
                let x = f64::from(20 + (i * 7) % 200);
                (x, 64.0 * x + 32.0)
            }))
            .expect("well-formed"),
        ),
        (
            "Y ~ 10^-2 (small scale)",
            Dataset::from_pairs((0..80).map(|i| {
                let x = f64::from(20 + (i * 7) % 200);
                (x, 0.0001 * x + 0.002)
            }))
            .expect("well-formed"),
        ),
    ];
    println!(
        "{:26} {:>18} {:>18}",
        "data set", "rel err (scaled)", "rel err (unscaled)"
    );
    for (name, data) in cases {
        let mut errors = Vec::new();
        for scale in [true, false] {
            let config = GpConfig {
                scale,
                // Isolate the scaling effect from the closed-form refit.
                refit: false,
                seeded_init: false,
                ..GpConfig::fast(EXPERIMENT_SEED)
            };
            let model = SymbolicRegressor::new(config).fit(&data);
            let y_scale = data
                .y()
                .iter()
                .map(|y| y.abs())
                .fold(0.0f64, f64::max)
                .max(1e-12);
            errors.push(model.train_error / y_scale);
        }
        println!(
            "{:26} {:>17.5} {:>17.5}   {}",
            name,
            errors[0],
            errors[1],
            if errors[0] <= errors[1] { "scaling helps/ties" } else { "scaling hurt here" }
        );
    }
    // The plan itself is exercised directly too.
    let plan = ScalePlan::for_dataset(
        &Dataset::from_pairs((0..10).map(|i| (f64::from(i + 200), f64::from(i) * 500.0))).unwrap(),
    );
    println!("chosen plan for X~200, Y~2500: x_factors {:?}, y_factor {}", plan.x_factors, plan.y_factor);
}

/// Ablation 2: the two-stage incorrect-ESV filter under heavy OCR noise,
/// aggregated over several cars to smooth seed variance.
fn filter_ablation() {
    println!("\n--- ablation 2: incorrect-ESV filter on/off under 15% OCR noise ---");
    let cars = [CarId::M, CarId::P, CarId::E, CarId::H];
    for (label, use_filter) in [("filter on", true), ("filter off", false)] {
        let mut total = 0usize;
        let mut correct = 0usize;
        for &id in &cars {
            let seed = EXPERIMENT_SEED ^ 0xF1 ^ (id as u64);
            let report = collect_car(id, seed, if quick() { 4 } else { 8 });
            let mut config = if quick() {
                PipelineConfig::fast(scheme_for(id), seed)
            } else {
                PipelineConfig::paper(scheme_for(id), seed)
            };
            config.ocr = OcrChannel::new(0.85, seed); // heavy noise
            config.use_filter = use_filter;
            let result = DpReverser::new(config).analyze(&report.log, &report.frames, None);
            let precision = evaluate(&result, &report.vehicle);
            total += precision.formula_total;
            correct += precision.formula_correct;
        }
        println!(
            "{:12} formula precision {} ({correct}/{total}) over {} cars",
            label,
            pct(correct, total),
            cars.len(),
        );
    }
    println!("(filter off disables the range check, MAD rejection, and robust trim;");
    println!(" GP's own robustness is all that remains — paper §4.4 observation (i))");
}

/// Ablation 3: payload reassembly on vs. off — drop multi-frame payloads
/// by truncating the capture to single frames, as READ-style tools do.
fn reassembly_ablation() {
    println!("\n--- ablation 3: payload reassembly on/off (KWP car) ---");
    let id = CarId::C;
    let seed = EXPERIMENT_SEED ^ 0xA5;
    let report = collect_car(id, seed, if quick() { 4 } else { 8 });

    // Full pipeline.
    let config = if quick() {
        PipelineConfig::fast(scheme_for(id), seed)
    } else {
        PipelineConfig::paper(scheme_for(id), seed)
    };
    let with = DpReverser::new(config.clone()).analyze(&report.log, &report.frames, None);

    // "No reassembly": keep only frames that complete a message alone —
    // the VW TP last-frames; everything multi-frame is lost.
    let crippled: BusLog = report
        .log
        .iter()
        .filter(|e| {
            use dpr_transport::vwtp::VwOpcode;
            e.frame
                .data()
                .first()
                .and_then(|&b| VwOpcode::from_first_byte(b))
                .is_some_and(|op| op.is_data() && op.is_last())
                && e.frame.data().len() >= 2
        })
        .cloned()
        .collect();
    let without = DpReverser::new(config).analyze(&crippled, &report.frames, None);

    println!(
        "with reassembly:    {} ESVs recovered ({} with formulas)",
        with.esvs.len(),
        with.formula_esvs().count()
    );
    println!(
        "without reassembly: {} ESVs recovered ({} with formulas)",
        without.esvs.len(),
        without.formula_esvs().count()
    );
    println!("paper: 75.2% of KWP frames are multi-frame (Tab. 9) — without Step 2");
    println!("the fields \"cannot be extracted\" (§4.4).");
}

/// Ablation 4: the GP engine's own knobs — closed-form residual refit,
/// informed template seeding, and the full 14-function set vs. arithmetic
/// only — measured on a battery of the paper's formula shapes.
fn gp_knob_ablation() {
    println!("\n--- ablation 4: GP engine knobs over 8 formula shapes ---");
    type Shape = (&'static str, fn(f64, f64) -> f64, bool);
    let shapes: [Shape; 8] = [
        ("x/2.55", |a, _| a / 2.55, false),
        ("1.8x-40", |a, _| 1.8 * a - 40.0, false),
        ("64a+0.25b", |a, b| 64.0 * a + 0.25 * b, true),
        ("ab/5", |a, b| a * b / 5.0, true),
        ("0.002ab", |a, b| 0.002 * a * b, true),
        ("1000/a", |a, _| 1000.0 / a, false),
        ("0.01a^2", |a, _| 0.01 * a * a, false),
        ("0.1a(b-100)", |a, b| 0.1 * a * (b - 100.0), true),
    ];
    let build = |f: fn(f64, f64) -> f64, two: bool| {
        if two {
            Dataset::from_triples((0..80).map(|i| {
                let a = (20 + (i * 37) % 200) as f64;
                let b = (105 + (i * 53) % 120) as f64;
                ((a, b), f(a, b))
            }))
            .expect("well-formed")
        } else {
            Dataset::from_pairs((0..80).map(|i| {
                let a = (20 + (i * 37) % 200) as f64;
                (a, f(a, 0.0))
            }))
            .expect("well-formed")
        }
    };
    let configs: [(&str, GpConfig); 4] = [
        ("full engine", GpConfig::fast(EXPERIMENT_SEED)),
        (
            "no residual refit",
            GpConfig {
                refit: false,
                ..GpConfig::fast(EXPERIMENT_SEED)
            },
        ),
        (
            "no template seeding",
            GpConfig {
                seeded_init: false,
                ..GpConfig::fast(EXPERIMENT_SEED)
            },
        ),
        (
            "arithmetic-only functions",
            GpConfig {
                functions: dpr_gp::FunctionSet::arithmetic(),
                ..GpConfig::fast(EXPERIMENT_SEED)
            },
        ),
    ];
    println!("{:26} {:>12}", "configuration", "recovered");
    for (label, config) in configs {
        let mut ok = 0;
        for (i, (_, f, two)) in shapes.iter().enumerate() {
            let data = build(*f, *two);
            let mut c = config.clone();
            c.seed = EXPERIMENT_SEED + i as u64;
            let model = SymbolicRegressor::new(c).fit(&data);
            let ranges: Vec<(f64, f64)> = if *two {
                vec![(20.0, 219.0), (105.0, 224.0)]
            } else {
                vec![(20.0, 219.0)]
            };
            if model.agrees_with(|x| f(x[0], x.get(1).copied().unwrap_or(0.0)), &ranges, 0.03) {
                ok += 1;
            }
        }
        println!("{:26} {:>9}/{}", label, ok, shapes.len());
    }
    println!("(every knob is part of making a from-scratch engine reach the");
    println!(" paper's gplearn-level reliability; see DESIGN.md deviation 2)");
}

fn main() {
    header(
        "Ablations: scaling, incorrect-ESV filter, payload reassembly, GP knobs",
        "each design choice measurably contributes (paper §3.3, §3.5, §4.4)",
    );
    scaling_ablation();
    filter_ablation();
    reassembly_ablation();
    gp_knob_ablation();
}
