//! Table 12 — telematics apps containing decode formulas.
//!
//! Paper: of 160 analyzed apps, only 3 (the Carly family) contain
//! UDS/KWP 2000 formulas (90+137, 1624+468, 7); a set of ordinary apps
//! contains OBD-II formulas only; 13 apps contain formulas the taint
//! analysis cannot extract; the rest only read trouble codes.

use dpr_appscan::corpus::{table12_corpus, AppKind, OBD_APPS, UDS_KWP_APPS};
use dpr_appscan::{extract_formulas, ProtocolClass, DEFAULT_SOURCE_APIS};
use dpr_bench::{header, EXPERIMENT_SEED};

fn main() {
    header(
        "Table 12: telematics apps containing formulas",
        "3 UDS/KWP apps (90+137 / 1624+468 / 7); OBD-II-only apps; 13 resist extraction",
    );
    let corpus = table12_corpus(EXPERIMENT_SEED);
    println!("analyzing {} apps with Alg. 1...\n", corpus.len());
    println!("{:36} {:14} {:>9}", "app name", "formula type", "#formula");

    let mut uds_kwp_apps = 0usize;
    let mut obd_only_apps = 0usize;
    let mut none = 0usize;
    let mut per_app_ok = true;
    for app in &corpus {
        let formulas = extract_formulas(&app.program, &DEFAULT_SOURCE_APIS);
        let count = |p: ProtocolClass| formulas.iter().filter(|f| f.protocol == p).count();
        let (uds, kwp, obd) = (
            count(ProtocolClass::Uds),
            count(ProtocolClass::Kwp2000),
            count(ProtocolClass::ObdII),
        );
        if uds + kwp > 0 {
            uds_kwp_apps += 1;
            if uds > 0 {
                println!("{:36} {:14} {:>9}", app.name, "UDS", uds);
            }
            if kwp > 0 {
                println!("{:36} {:14} {:>9}", app.name, "KWP 2000", kwp);
            }
            // Check against the Tab. 12 ground truth.
            if let Some((_, pu, pk)) = UDS_KWP_APPS.iter().find(|(n, _, _)| *n == app.name) {
                per_app_ok &= uds == *pu && kwp == *pk;
            }
        } else if obd > 0 {
            obd_only_apps += 1;
            println!("{:36} {:14} {:>9}", app.name, "OBD-II", obd);
            if let Some((_, pc)) = OBD_APPS.iter().find(|(n, _)| *n == app.name) {
                per_app_ok &= obd == *pc;
            }
        } else {
            none += 1;
        }
    }
    let resistant = corpus
        .iter()
        .filter(|a| a.kind == AppKind::ExtractionResistant)
        .count();
    println!("\nsummary:");
    println!("  apps with UDS/KWP 2000 formulas: {uds_kwp_apps}   (paper: 3)");
    println!("  apps with OBD-II formulas only:  {obd_only_apps}   (paper table rows: {})", OBD_APPS.len());
    println!("  apps with no extractable formulas: {none}");
    println!("  …of which actually formula-bearing but taint-resistant: {resistant} (paper: 13)");
    println!(
        "  per-app formula counts match Tab. 12 exactly: {}",
        if per_app_ok { "YES" } else { "NO" }
    );
    println!("\nshape check: proprietary UDS/KWP knowledge is concentrated in a tiny");
    println!("fraction of apps — the paper's case for harvesting professional tools.");
}
