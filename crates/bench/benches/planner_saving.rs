//! §3.1 planner claim — nearest-neighbour vs. random click ordering.
//!
//! Paper: selecting 14 ESVs on the UI, the nearest-neighbour planner
//! needs 74.6 s of movement versus 80.45 s for random ordering — a 7.3%
//! saving. We reproduce the comparison on 14 targets laid out on the
//! AUTEL-sized screen, averaging the random baseline over many seeds.

use dpr_bench::header;
use dpr_cps::{plan_route, route_length, PlanStrategy, RoboticClicker};

fn main() {
    header(
        "§3.1: nearest-neighbour planner vs. random clicking (14 ESVs)",
        "74.6 s vs 80.45 s of movement — a 7.3% saving",
    );
    // 14 targets on a 64×20 screen: two columns of ESV rows, as a
    // data-stream selection screen lays them out.
    let targets: Vec<(f64, f64)> = (0..14)
        .map(|i| {
            let col = if i % 2 == 0 { 8.0 } else { 44.0 };
            (col + (i % 3) as f64, 2.0 + (i / 2) as f64 * 2.0)
        })
        .collect();
    let start = (0.0, 0.0);

    let nn_order = plan_route(start, &targets, PlanStrategy::NearestNeighbor);
    let nn_len = route_length(start, &targets, &nn_order);

    let trials = 500;
    let random_avg: f64 = (0..trials)
        .map(|seed| {
            let order = plan_route(start, &targets, PlanStrategy::Random { seed });
            route_length(start, &targets, &order)
        })
        .sum::<f64>()
        / trials as f64;

    // Convert to time with the clicker's axis speed.
    let clicker = RoboticClicker::new();
    let to_secs = |d: f64| d / clicker.speed;

    // The paper's metric is the robot's *total* selection time: its
    // 80.45 s for 14 targets (≈5.7 s each) is dominated by the fixed
    // per-target cost — tap dwell plus waiting for the UI to react — with
    // stylus movement on top. Use the collector's click cycle cost
    // (80 ms dwell + ~5 s UI reaction wait per target).
    let per_target_overhead = 5.1 * targets.len() as f64;

    println!(
        "{:24} {:>12} {:>12} {:>12}",
        "strategy", "distance", "move time", "total time"
    );
    println!(
        "{:24} {:>12.1} {:>11.2}s {:>11.2}s",
        "nearest neighbour",
        nn_len,
        to_secs(nn_len),
        to_secs(nn_len) + per_target_overhead,
    );
    println!(
        "{:24} {:>12.1} {:>11.2}s {:>11.2}s   (mean of {trials} shuffles)",
        "random order",
        random_avg,
        to_secs(random_avg),
        to_secs(random_avg) + per_target_overhead,
    );
    let move_saving = (random_avg - nn_len) / random_avg * 100.0;
    let nn_total = to_secs(nn_len) + per_target_overhead;
    let random_total = to_secs(random_avg) + per_target_overhead;
    let total_saving = (random_total - nn_total) / random_total * 100.0;
    println!(
        "\nsaving: {move_saving:.1}% of pure movement; {total_saving:.1}% of total robot time"
    );
    println!("paper: (80.45 - 74.6)/80.45 = 7.3% of total selection time");
    println!(
        "shape check: nearest neighbour {} random ordering",
        if total_saving > 0.0 { "beats" } else { "DOES NOT beat" }
    );
}
