//! Table 5 — reverse engineering the OBD-II formulas (the ground-truth
//! experiment).
//!
//! Paper: a vehicle simulator + the "ChevroSys Scan Free" app; DP-Reverser
//! recovers all 7 PID formulas (100% precision), including the degenerate
//! cases: Engine Speed's `X1 ≡ 128` collapses `(256·X0+X1)/4` to
//! `64·X0 + 32`, and the coolant formula is recovered as a
//! range-equivalent variant.

use dp_reverser::{DpReverser, PipelineConfig, RecoveredKind};
use dpr_bench::{header, pct, quick, EXPERIMENT_SEED};
use dpr_can::Micros;
use dpr_frames::{Scheme, SourceKey};
use dpr_ocr::OcrChannel;
use dpr_protocol::obd::{self, Pid};
use dpr_tool::database::obd_database;
use dpr_tool::{ToolProfile, ToolSession};
use dpr_vehicle::profiles::{self, CarId};

fn main() {
    header(
        "Table 5: reverse engineering the OBD-II protocol formulas",
        "7/7 PID formulas recovered correctly (100%)",
    );
    let seed = EXPERIMENT_SEED;
    // The "vehicle simulator" is a car profile's engine ECU; the app is
    // the ChevroSys profile with the OBD database.
    let car = profiles::build(CarId::L, seed);
    let (req, rsp) = car.obd_ids().expect("profile cars expose OBD-II");
    let db = obd_database("Vehicle Simulator", req, rsp);
    let mut session = ToolSession::with_database(car, ToolProfile::chevrosys_app(), db);
    session.tool_mut().goto_data_stream(0, 0);
    let dwell = if quick() { 20 } else { 60 };
    session.wait(Micros::from_secs(dwell)).expect("session runs");
    let (log, frames, _) = session.into_artifacts();

    let mut config = if quick() {
        PipelineConfig::fast(Scheme::IsoTp, seed)
    } else {
        PipelineConfig::paper(Scheme::IsoTp, seed)
    };
    config.ocr = OcrChannel::new(ToolProfile::chevrosys_app().ocr_quality, seed);
    let result = DpReverser::new(config).analyze(&log, &frames, None);

    // Ground truth: the app's display formulas (standard formula × the
    // app's unit choice).
    type Truth = (u8, &'static str, Box<dyn Fn(f64, f64) -> f64>);
    let app_truth: &[Truth] = &[
        (0x11, "Y = X/2.55", Box::new(|a, _| a * 100.0 / 255.0)),
        (0x04, "Y = X/2.55", Box::new(|a, _| a * 100.0 / 255.0)),
        (0x2F, "Y = 0.392*X", Box::new(|a, _| 0.392 * a)),
        // The simulated (and real) capture pins the RPM low byte at
        // X1 = 128, so the ground-truth formula collapses to
        // Y = 64*X0 + 32 — exactly the recovery the paper accepts.
        (0x0C, "Y = (256*X0+X1)/4", Box::new(|a, _| 64.0 * a + 32.0)),
        (0x0D, "Y = 0.621*X", Box::new(|a, _| 0.621 * a)),
        (0x05, "Y = 1.8*X - 40", Box::new(|a, _| 1.8 * a - 40.0)),
        (0x0B, "Y = X/3.39", Box::new(|a, _| a / 3.39)),
    ];

    println!(
        "{:36} {:8} {:22} {:4}",
        "ESV", "request", "ground truth", "recovered (GP)"
    );
    let mut correct = 0;
    let total = app_truth.len();
    for (pid, truth_str, truth) in app_truth {
        let spec = obd::pid_spec(Pid(*pid)).expect("standard pid");
        let Some(esv) = result.esvs.iter().find(|e| e.key == SourceKey::Obd(*pid)) else {
            println!(
                "{:36} 01 {:02X}    {:22} NOT RECOVERED",
                spec.quantity.name(),
                pid,
                truth_str
            );
            continue;
        };
        let RecoveredKind::Formula(model) = &esv.kind else {
            println!(
                "{:36} 01 {:02X}    {:22} misclassified as enumeration",
                spec.quantity.name(),
                pid,
                truth_str
            );
            continue;
        };
        let ok = model.agrees_with(
            |x| truth(x[0], x.get(1).copied().unwrap_or(0.0)),
            &esv.x_ranges,
            0.04,
        );
        if ok {
            correct += 1;
        }
        println!(
            "{:36} 01 {:02X}    {:22} {} [{}]",
            spec.quantity.name(),
            pid,
            truth_str,
            model.describe(),
            if ok { "OK" } else { "MISMATCH" }
        );
    }
    println!(
        "\nprecision: {correct}/{total} = {} (paper: 7/7 = 100%)",
        pct(correct, total)
    );
}
