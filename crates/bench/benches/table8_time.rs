//! Table 8 — average time cost of inferring one formula.
//!
//! Paper (Python/gplearn testbed): GP ≈ 201.40 s (UDS) / 192.19 s
//! (KWP 2000); linear regression ≈ 0.9–1.7 ms; polynomial curve fitting
//! ≈ 0.4–0.6 ms. Absolute numbers shift on a compiled Rust engine, but
//! the *shape* — GP several orders of magnitude slower than the
//! closed-form baselines, and both baselines sub-millisecond-ish — must
//! hold.

use std::time::Instant;

use dpr_baselines::{LinearRegression, PolynomialFit, Regressor};
use dpr_bench::{header, quick, EXPERIMENT_SEED};
use dpr_gp::{Dataset, GpConfig, SymbolicRegressor};

/// Representative inference data sets: UDS-shaped (one variable) and
/// KWP-shaped (two variables).
fn uds_dataset(seed: u64) -> Dataset {
    Dataset::from_pairs((0..120).map(|i| {
        let x = ((i * 37 + seed as usize * 13) % 256) as f64;
        (x, 0.75 * x - 40.0)
    }))
    .expect("well-formed")
}

fn kwp_dataset(seed: u64) -> Dataset {
    Dataset::from_triples((0..120).map(|i| {
        let x0 = (100 + (i * 37 + seed as usize * 7) % 150) as f64;
        let x1 = (8 + (i * 23) % 24) as f64;
        ((x0, x1), x0 * x1 / 5.0)
    }))
    .expect("well-formed")
}

fn time_gp(datasets: &[Dataset]) -> f64 {
    let start = Instant::now();
    for (i, d) in datasets.iter().enumerate() {
        let config = if quick() {
            GpConfig::fast(EXPERIMENT_SEED + i as u64)
        } else {
            GpConfig::paper(EXPERIMENT_SEED + i as u64)
        };
        let _ = SymbolicRegressor::new(config).fit(d);
    }
    start.elapsed().as_secs_f64() / datasets.len() as f64
}

fn time_baseline(regressor: &dyn Regressor, datasets: &[Dataset]) -> f64 {
    let start = Instant::now();
    // Baselines are so fast we repeat them for a stable reading.
    let reps = 200;
    for _ in 0..reps {
        for d in datasets {
            let _ = regressor.fit(d);
        }
    }
    start.elapsed().as_secs_f64() / (datasets.len() * reps) as f64
}

fn main() {
    header(
        "Table 8: average time cost of inferring formulas (seconds)",
        "GP: 201.40 (UDS) / 192.19 (KWP); linreg: 0.0009/0.0017; polyfit: 0.0004/0.0006",
    );
    let n = if quick() { 4 } else { 10 };
    let uds: Vec<Dataset> = (0..n).map(|i| uds_dataset(i as u64)).collect();
    let kwp: Vec<Dataset> = (0..n).map(|i| kwp_dataset(i as u64)).collect();

    println!(
        "{:10} {:>18} {:>18} {:>22}",
        "protocol", "genetic programming", "linear regression", "polynomial curve fit"
    );
    let mut ratios = Vec::new();
    for (name, datasets) in [("UDS", &uds), ("KWP 2000", &kwp)] {
        let gp = time_gp(datasets);
        let lin = time_baseline(&LinearRegression, datasets);
        let poly = time_baseline(&PolynomialFit, datasets);
        println!(
            "{:10} {:>17.4}s {:>17.6}s {:>21.6}s",
            name, gp, lin, poly
        );
        ratios.push(gp / lin.max(1e-12));
    }
    println!(
        "\nshape check: GP is {}x–{}x slower than linear regression",
        ratios.iter().cloned().fold(f64::INFINITY, f64::min) as u64,
        ratios.iter().cloned().fold(0.0, f64::max) as u64
    );
    println!("paper shape: GP five orders of magnitude slower (Python gplearn vs closed form);");
    println!("the compiled engine shrinks the absolute GP time but preserves the ordering");
    println!("GP >> linreg > polyfit only in absolute cost, with GP far ahead of both.");
}
