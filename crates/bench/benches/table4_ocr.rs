//! Table 4 — OCR precision per diagnostic tool.
//!
//! Paper: 500 screenshots per device; a frame counts as correct when the
//! OCR engine extracts all of its text exactly. AUTEL 919: 488/500 =
//! 97.6%; LAUNCH X431: 425/500 = 85.0%.

use dpr_bench::{header, pct, EXPERIMENT_SEED};
use dpr_can::Micros;
use dpr_ocr::OcrChannel;
use dpr_tool::{DiagnosticTool, ToolProfile, VehicleDatabase};
use dpr_vehicle::profiles::{self, CarId};

fn run_device(profile: ToolProfile, car: CarId, total_frames: usize) -> (usize, usize) {
    // Render a live data-stream page of a real car profile, tick it
    // through time, and OCR every frame.
    let vehicle = profiles::build(car, EXPERIMENT_SEED);
    let db = VehicleDatabase::for_vehicle(&vehicle);
    let mut tool = DiagnosticTool::new(profile.clone(), db);
    tool.goto_data_stream(0, 0);
    // Populate the page with values (as a live session would).
    let targets = tool.poll_targets();
    let channel = OcrChannel::new(profile.ocr_quality, EXPERIMENT_SEED ^ 0x0C4);

    let mut correct = 0usize;
    for frame_idx in 0..total_frames {
        let t = Micros::from_millis(200 * frame_idx as u64);
        for &(ecu, stream) in &targets {
            let value = 100.0 + ((frame_idx * 13 + stream * 7) % 900) as f64 / 10.0;
            tool.set_displayed(ecu, stream, value, t);
        }
        let shot = tool.render(t);
        let values = shot
            .widgets_of(dpr_tool::WidgetKind::Value)
            .filter(|w| w.text != "---")
            .count();
        let all_exact = (0..values).all(|widget_idx| channel.reads_exactly(frame_idx, widget_idx));
        if all_exact {
            correct += 1;
        }
    }
    (correct, total_frames)
}

fn main() {
    header(
        "Table 4: performance of the OCR engine",
        "AUTEL 919: 488/500 = 97.6%; LAUNCH X431: 425/500 = 85.0%",
    );
    let frames = 500;
    println!(
        "{:14} {:>11} {:>13} {:>10} {:>8}",
        "tool", "#total pics", "#correct pics", "measured", "paper"
    );
    for (profile, car, paper) in [
        (ToolProfile::autel_919(), CarId::L, "97.6%"),
        (ToolProfile::launch_x431(), CarId::A, "85.0%"),
    ] {
        let name = profile.name;
        let (correct, total) = run_device(profile, car, frames);
        println!(
            "{:14} {:>11} {:>13} {:>10} {:>8}",
            name,
            total,
            correct,
            pct(correct, total),
            paper
        );
    }
    println!("\nshape check: the larger, higher-resolution AUTEL screen reads");
    println!("substantially more frames perfectly than the LAUNCH handheld.");
}
