//! Criterion micro-benchmarks for the hot paths: GP inference (the Tab. 8
//! cost driver), compiled vs. recursive expression evaluation, 1- vs
//! N-thread generation scoring, ISO-TP stream reassembly, OCR frame
//! reading, and the click-route planner.
//!
//! Besides the Criterion medians this target emits a machine-readable
//! `BENCH_gp.json` at the workspace root (override with
//! `DPR_BENCH_JSON=<path>`) recording evals/sec and speedups for the GP
//! scoring paths — CI checks the compiled-vs-recursive speedup there.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};

use dpr_baselines::{LinearRegression, PolynomialFit, Regressor};
use dpr_can::Micros;
use dpr_cps::{plan_route, PlanStrategy};
use dpr_gp::expr::{BinaryOp, Expr, UnaryOp};
use dpr_gp::{BatchScratch, Columns, CompiledExpr, Dataset, GpConfig, Metric, SymbolicRegressor};
use dpr_ocr::{mad_inliers, OcrChannel};
use dpr_transport::isotp::IsoTpStreamDecoder;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn gp_dataset() -> Dataset {
    Dataset::from_triples((0..100).map(|i| {
        let x0 = f64::from(100 + (i * 37) % 150);
        let x1 = f64::from(8 + (i * 23) % 24);
        ((x0, x1), x0 * x1 / 5.0)
    }))
    .expect("well-formed")
}

fn bench_inference(c: &mut Criterion) {
    let data = gp_dataset();
    let mut group = c.benchmark_group("formula_inference");
    group.sample_size(10);
    group.bench_function("gp_fast_product_formula", |b| {
        b.iter(|| SymbolicRegressor::new(GpConfig::fast(7)).fit(black_box(&data)))
    });
    group.bench_function("linear_regression", |b| {
        b.iter(|| LinearRegression.fit(black_box(&data)))
    });
    group.bench_function("polynomial_fit", |b| {
        b.iter(|| PolynomialFit.fit(black_box(&data)))
    });
    group.finish();
}

/// A GP-typical population: random grow trees over the full 14-function
/// set, the shapes the engine actually scores every generation.
fn gp_population(n: usize, depth: usize) -> Vec<Expr> {
    let mut rng = StdRng::seed_from_u64(2023);
    (0..n)
        .map(|_| {
            Expr::random_grow(
                &mut rng,
                depth,
                2,
                &UnaryOp::ALL,
                &BinaryOp::ALL,
                (-10.0, 10.0),
            )
        })
        .collect()
}

fn bench_compiled_eval(c: &mut Criterion) {
    let data = gp_dataset();
    let cols = Columns::from_dataset(&data);
    let pop = gp_population(64, 6);
    let metric = Metric::MeanAbsoluteError;

    let mut group = c.benchmark_group("gp_scoring");
    group.sample_size(10);
    group.bench_function("recursive_tree_walk", |b| {
        b.iter(|| {
            pop.iter()
                .map(|e| metric.error(black_box(e), &data))
                .sum::<f64>()
        })
    });
    group.bench_function("compiled_bytecode", |b| {
        let mut scratch = BatchScratch::new();
        b.iter(|| {
            pop.iter()
                .map(|e| CompiledExpr::compile(black_box(e)).error_on(&cols, metric, &mut scratch))
                .sum::<f64>()
        })
    });
    let n_threads = dpr_par::threads().max(2);
    for (label, pool) in [
        ("scoring_pool_1_thread", dpr_par::Pool::new(1)),
        ("scoring_pool_n_threads", dpr_par::Pool::new(n_threads)),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                pool.par_map(&pop, |e| {
                    dpr_gp::compile::with_thread_scratch(|scratch| {
                        CompiledExpr::compile(e).error_on(&cols, metric, scratch)
                    })
                })
            })
        });
    }
    group.finish();
}

/// Runs `pass` repeatedly until `min` wall time has elapsed and returns
/// `(passes, elapsed)` — the explicit timing behind `BENCH_gp.json`,
/// since the vendored Criterion shim does not expose its measurements.
fn time_passes(min: Duration, mut pass: impl FnMut()) -> (u32, Duration) {
    pass(); // warm-up
    let mut passes = 0u32;
    let start = Instant::now();
    loop {
        pass();
        passes += 1;
        let elapsed = start.elapsed();
        if elapsed >= min {
            return (passes, elapsed);
        }
    }
}

/// Times the GP scoring paths and writes `BENCH_gp.json`: evals/sec for
/// recursive vs. compiled evaluation and 1- vs. N-thread pool scoring,
/// plus the two derived speedups.
fn emit_gp_json(_c: &mut Criterion) {
    let quick = dpr_bench::quick();
    let min = if quick {
        Duration::from_millis(60)
    } else {
        Duration::from_millis(400)
    };
    let data = gp_dataset();
    let cols = Columns::from_dataset(&data);
    let pop = gp_population(if quick { 32 } else { 128 }, 6);
    let metric = Metric::MeanAbsoluteError;
    let evals_per_pass = (pop.len() * data.len()) as f64;
    let rate = |(passes, elapsed): (u32, Duration)| {
        evals_per_pass * f64::from(passes) / elapsed.as_secs_f64()
    };

    let recursive = rate(time_passes(min, || {
        black_box(
            pop.iter()
                .map(|e| metric.error(e, &data))
                .sum::<f64>(),
        );
    }));
    let mut scratch = BatchScratch::new();
    let compiled = rate(time_passes(min, || {
        black_box(
            pop.iter()
                .map(|e| CompiledExpr::compile(e).error_on(&cols, metric, &mut scratch))
                .sum::<f64>(),
        );
    }));
    let n_threads = dpr_par::threads().max(2);
    let score_with = |pool: &dpr_par::Pool| {
        rate(time_passes(min, || {
            black_box(pool.par_map(&pop, |e| {
                dpr_gp::compile::with_thread_scratch(|scratch| {
                    CompiledExpr::compile(e).error_on(&cols, metric, scratch)
                })
            }));
        }))
    };
    let par1 = score_with(&dpr_par::Pool::new(1));
    let parn = score_with(&dpr_par::Pool::new(n_threads));

    // Superinstruction speedup: the same precompiled programs with and
    // without peephole fusion, scored single-threaded so the ratio
    // isolates the interpreter loop (no compile or dispatch cost).
    // Measured on formula-shaped arithmetic programs — the affine and
    // product expressions diagnostic formulas actually take (Tab. 2
    // recovers shapes like `64·X0 + 0.25·X1`), where leaf-adjacent
    // fusion covers most of each program; the full 14-function
    // population above understates the win because transcendental
    // evaluation, not dispatch, dominates its runtime.
    let mut rng = StdRng::seed_from_u64(7);
    let formula_pop: Vec<Expr> = (0..pop.len())
        .map(|_| {
            Expr::random_grow(
                &mut rng,
                6,
                2,
                &[UnaryOp::Neg],
                &[BinaryOp::Add, BinaryOp::Sub, BinaryOp::Mul, BinaryOp::Div],
                (-10.0, 10.0),
            )
        })
        .collect();
    let fused: Vec<CompiledExpr> = formula_pop.iter().map(CompiledExpr::compile).collect();
    let unfused: Vec<CompiledExpr> = formula_pop
        .iter()
        .map(CompiledExpr::compile_unfused)
        .collect();
    // Best of three windows per side: the max filters scheduler noise,
    // which otherwise dwarfs a dispatch-level difference.
    let score_programs = |programs: &[CompiledExpr]| {
        (0..3)
            .map(|_| {
                rate(time_passes(min, || {
                    black_box(
                        programs
                            .iter()
                            .map(|p| {
                                dpr_gp::compile::with_thread_scratch(|scratch| {
                                    p.error_on(&cols, metric, scratch)
                                })
                            })
                            .sum::<f64>(),
                    );
                }))
            })
            .fold(0.0f64, f64::max)
    };
    let unfused_rate = score_programs(&unfused);
    let fused_rate = score_programs(&fused);

    // Dedup speedup on a population with a 50% duplicate share — the
    // regime breeding actually produces (clone-heavy late generations).
    // The dedup side pays for grouping inside the timed pass, so the
    // ratio is honest about bookkeeping overhead.
    let dup_share = 0.5;
    let duplicated: Vec<CompiledExpr> = (0..fused.len() * 2)
        .map(|i| fused[i % fused.len()].clone())
        .collect();
    let dup_evals = (duplicated.len() * data.len()) as f64;
    let dup_rate = |(passes, elapsed): (u32, Duration)| {
        dup_evals * f64::from(passes) / elapsed.as_secs_f64()
    };
    let no_dedup = (0..3)
        .map(|_| {
            dup_rate(time_passes(min, || {
                black_box(
                    duplicated
                        .iter()
                        .map(|p| {
                            dpr_gp::compile::with_thread_scratch(|scratch| {
                                p.error_on(&cols, metric, scratch)
                            })
                        })
                        .sum::<f64>(),
                );
            }))
        })
        .fold(0.0f64, f64::max);
    let with_dedup = (0..3)
        .map(|_| {
            dup_rate(time_passes(min, || {
                let groups = dpr_gp::dedup::group(&duplicated);
                let rep_errors: Vec<f64> = groups
                    .reps
                    .iter()
                    .map(|&r| {
                        dpr_gp::compile::with_thread_scratch(|scratch| {
                            duplicated[r].error_on(&cols, metric, scratch)
                        })
                    })
                    .collect();
                black_box(
                    groups
                        .assign
                        .iter()
                        .map(|&class| rep_errors[class as usize])
                        .sum::<f64>(),
                );
            }))
        })
        .fold(0.0f64, f64::max);

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"gp_scoring\",\n",
            "  \"quick\": {quick},\n",
            "  \"population\": {pop},\n",
            "  \"rows\": {rows},\n",
            "  \"threads\": {threads},\n",
            "  \"recursive_evals_per_sec\": {recursive:.0},\n",
            "  \"compiled_evals_per_sec\": {compiled:.0},\n",
            "  \"compiled_speedup\": {cs:.2},\n",
            "  \"pool_1_thread_evals_per_sec\": {par1:.0},\n",
            "  \"pool_n_threads_evals_per_sec\": {parn:.0},\n",
            "  \"thread_speedup\": {ts:.2},\n",
            "  \"superinstruction_speedup\": {ss:.2},\n",
            "  \"dedup_duplicate_share\": {ds:.2},\n",
            "  \"dedup_speedup\": {dds:.2}\n",
            "}}\n"
        ),
        quick = quick,
        pop = pop.len(),
        rows = data.len(),
        threads = n_threads,
        recursive = recursive,
        compiled = compiled,
        cs = compiled / recursive,
        par1 = par1,
        parn = parn,
        ts = parn / par1,
        ss = fused_rate / unfused_rate,
        ds = dup_share,
        dds = with_dedup / no_dedup,
    );
    let path = std::env::var("DPR_BENCH_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_gp.json").to_string()
    });
    std::fs::write(&path, &json).expect("write BENCH_gp.json");
    println!(
        "gp scoring: compiled {:.1}x vs recursive, {n_threads}-thread pool {:.2}x vs 1, \
         superinstructions {:.2}x, dedup {:.2}x at {dup_share:.0}% duplicates — wrote {path}",
        compiled / recursive,
        parn / par1,
        fused_rate / unfused_rate,
        with_dedup / no_dedup,
        dup_share = dup_share * 100.0,
    );
}

fn bench_isotp_reassembly(c: &mut Criterion) {
    // A realistic multi-frame message stream: FF + 28 CFs, repeated.
    let mut frames: Vec<Vec<u8>> = Vec::new();
    for _ in 0..50 {
        frames.push(vec![0x10, 200, 1, 2, 3, 4, 5, 6]);
        for seq in 0..28u8 {
            let mut cf = vec![0x20 | ((seq + 1) & 0x0F)];
            cf.extend_from_slice(&[7; 7]);
            frames.push(cf);
        }
    }
    c.bench_function("isotp_stream_reassembly_50_messages", |b| {
        b.iter_batched(
            IsoTpStreamDecoder::new,
            |mut decoder| {
                for f in &frames {
                    decoder.push(black_box(f));
                }
                decoder.drain()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_ocr(c: &mut Criterion) {
    let channel = OcrChannel::new(0.9976, 3);
    c.bench_function("ocr_read_1000_values", |b| {
        b.iter(|| {
            let mut out = 0usize;
            for i in 0..1000 {
                out += channel.read(black_box(i), 0, "1234.5").len();
            }
            out
        })
    });
    let values: Vec<f64> = (0..500).map(|i| 25.0 + f64::from(i % 7)).collect();
    c.bench_function("mad_filter_500_values", |b| {
        b.iter(|| mad_inliers(black_box(&values), 8.0))
    });
}

fn bench_planner(c: &mut Criterion) {
    let targets: Vec<(f64, f64)> = (0..14)
        .map(|i| (((i * 13) % 60) as f64, ((i * 29) % 20) as f64))
        .collect();
    c.bench_function("nearest_neighbor_plan_14_targets", |b| {
        b.iter(|| plan_route((0.0, 0.0), black_box(&targets), PlanStrategy::NearestNeighbor))
    });
    let _ = Micros::ZERO;
}

criterion_group!(
    benches,
    bench_inference,
    bench_compiled_eval,
    bench_isotp_reassembly,
    bench_ocr,
    bench_planner,
    emit_gp_json
);
criterion_main!(benches);
