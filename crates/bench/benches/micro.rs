//! Criterion micro-benchmarks for the hot paths: GP inference (the Tab. 8
//! cost driver), ISO-TP stream reassembly, OCR frame reading, and the
//! click-route planner.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use dpr_baselines::{LinearRegression, PolynomialFit, Regressor};
use dpr_can::Micros;
use dpr_cps::{plan_route, PlanStrategy};
use dpr_gp::{Dataset, GpConfig, SymbolicRegressor};
use dpr_ocr::{mad_inliers, OcrChannel};
use dpr_transport::isotp::IsoTpStreamDecoder;

fn gp_dataset() -> Dataset {
    Dataset::from_triples((0..100).map(|i| {
        let x0 = f64::from(100 + (i * 37) % 150);
        let x1 = f64::from(8 + (i * 23) % 24);
        ((x0, x1), x0 * x1 / 5.0)
    }))
    .expect("well-formed")
}

fn bench_inference(c: &mut Criterion) {
    let data = gp_dataset();
    let mut group = c.benchmark_group("formula_inference");
    group.sample_size(10);
    group.bench_function("gp_fast_product_formula", |b| {
        b.iter(|| SymbolicRegressor::new(GpConfig::fast(7)).fit(black_box(&data)))
    });
    group.bench_function("linear_regression", |b| {
        b.iter(|| LinearRegression.fit(black_box(&data)))
    });
    group.bench_function("polynomial_fit", |b| {
        b.iter(|| PolynomialFit.fit(black_box(&data)))
    });
    group.finish();
}

fn bench_isotp_reassembly(c: &mut Criterion) {
    // A realistic multi-frame message stream: FF + 28 CFs, repeated.
    let mut frames: Vec<Vec<u8>> = Vec::new();
    for _ in 0..50 {
        frames.push(vec![0x10, 200, 1, 2, 3, 4, 5, 6]);
        for seq in 0..28u8 {
            let mut cf = vec![0x20 | ((seq + 1) & 0x0F)];
            cf.extend_from_slice(&[7; 7]);
            frames.push(cf);
        }
    }
    c.bench_function("isotp_stream_reassembly_50_messages", |b| {
        b.iter_batched(
            IsoTpStreamDecoder::new,
            |mut decoder| {
                for f in &frames {
                    decoder.push(black_box(f));
                }
                decoder.drain()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_ocr(c: &mut Criterion) {
    let channel = OcrChannel::new(0.9976, 3);
    c.bench_function("ocr_read_1000_values", |b| {
        b.iter(|| {
            let mut out = 0usize;
            for i in 0..1000 {
                out += channel.read(black_box(i), 0, "1234.5").len();
            }
            out
        })
    });
    let values: Vec<f64> = (0..500).map(|i| 25.0 + f64::from(i % 7)).collect();
    c.bench_function("mad_filter_500_values", |b| {
        b.iter(|| mad_inliers(black_box(&values), 8.0))
    });
}

fn bench_planner(c: &mut Criterion) {
    let targets: Vec<(f64, f64)> = (0..14)
        .map(|i| (((i * 13) % 60) as f64, ((i * 29) % 20) as f64))
        .collect();
    c.bench_function("nearest_neighbor_plan_14_targets", |b| {
        b.iter(|| plan_route((0.0, 0.0), black_box(&targets), PlanStrategy::NearestNeighbor))
    });
    let _ = Micros::ZERO;
}

criterion_group!(
    benches,
    bench_inference,
    bench_isotp_reassembly,
    bench_ocr,
    bench_planner
);
criterion_main!(benches);
