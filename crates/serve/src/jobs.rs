//! The job table and bounded FIFO behind `POST /jobs`.
//!
//! A [`JobStore`] holds every job this service has seen: queued jobs
//! waiting in a bounded FIFO, the jobs the worker pool is running, and
//! a bounded history of finished ones (oldest finished evicted first,
//! counted as `jobs.evicted` — a long-running service cannot grow its
//! job table without limit). [`submit`](JobStore::submit) is the
//! backpressure point: a full queue is an error the HTTP layer turns
//! into `429 Too Many Requests` *before* reading the request body.
//!
//! Progress reporting rides the telemetry spans the pipeline already
//! emits: each job carries a [`StageProgress`] sink that records
//! pipeline stage spans as they close, so `GET /jobs/<id>` can say
//! which stages a running job has finished without the pipeline knowing
//! the service exists.

use dpr_capture::CaptureSession;
use dpr_telemetry::{Registry, Sink, SpanRecord};
use parking_lot::Mutex as PlMutex;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// How many finished jobs the store retains by default.
pub const JOBS_KEPT: usize = 64;

/// Pipeline stage names [`StageProgress`] watches for. `ecr` runs
/// unspanned inside the association stage; everything else matches the
/// spans `DpReverser` enters per stage.
pub const STAGE_NAMES: [&str; 5] = ["capture", "transport", "ocr", "association", "inference"];

/// What one job analyzes.
#[derive(Debug)]
pub enum JobInput {
    /// A capture session parsed from an uploaded `.dprcap` body.
    Capture(Box<CaptureSession>),
    /// A named car profile (`{"car":"M"}`) to collect and analyze.
    Car(String),
}

/// A [`Sink`] recording which pipeline stages a running job has
/// finished, attached to the job's private telemetry registry.
#[derive(Debug, Default)]
pub struct StageProgress {
    done: PlMutex<Vec<String>>,
}

impl StageProgress {
    /// Stage names closed so far, in completion order.
    pub fn done(&self) -> Vec<String> {
        self.done.lock().clone()
    }
}

impl Sink for StageProgress {
    fn span_closed(&self, record: &SpanRecord) {
        // Stage spans sit at depth 1 (capture, outside the pipeline
        // span) or depth 2 (under `pipeline`); deeper spans with a
        // colliding name (e.g. a nested `ocr` helper) are not stages.
        if record.depth <= 2 && STAGE_NAMES.contains(&record.name) {
            self.done.lock().push(record.name.to_string());
        }
    }
}

/// One stage of a finished job: name and wall time, from the job's
/// [`PipelineTrace`](dpr_telemetry::PipelineTrace).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageLine {
    /// Stage name (`transport`, `ocr`, …).
    pub name: String,
    /// Stage wall time in microseconds.
    pub wall_us: u64,
}

/// What `GET /jobs/<id>` serializes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobStatus {
    /// External job id (`job-1`, `job-2`, …).
    pub id: String,
    /// `queued`, `running`, `done`, or `failed`.
    pub state: String,
    /// What was submitted: `capture` or `car:<letter>`.
    pub source: String,
    /// Stages finished so far (live progress while running; the full
    /// list once done).
    pub stages_done: Vec<String>,
    /// Per-stage wall times from the final trace (empty until done).
    pub stages: Vec<StageLine>,
    /// The [`RunStore`](dpr_obs::RunStore) id of the published result.
    pub run_id: Option<String>,
    /// Why the job failed, when it did.
    pub error: Option<String>,
    /// Total pipeline wall time in microseconds, once done.
    pub wall_us: Option<u64>,
}

enum Phase {
    Queued(JobInput),
    Running,
    Done {
        run_id: String,
        canonical: String,
        stages: Vec<StageLine>,
        wall_us: u64,
    },
    Failed {
        error: String,
    },
}

impl Phase {
    fn state(&self) -> &'static str {
        match self {
            Phase::Queued(_) => "queued",
            Phase::Running => "running",
            Phase::Done { .. } => "done",
            Phase::Failed { .. } => "failed",
        }
    }

    fn finished(&self) -> bool {
        matches!(self, Phase::Done { .. } | Phase::Failed { .. })
    }
}

struct Job {
    source: String,
    phase: Phase,
    progress: Arc<StageProgress>,
}

struct Inner {
    jobs: BTreeMap<u64, Job>,
    queue: VecDeque<u64>,
    finished: VecDeque<u64>,
    next_id: u64,
    draining: bool,
}

/// Why a submission was not enqueued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded FIFO is full — the caller should retry shortly (429).
    QueueFull,
    /// The service is shutting down (503).
    Draining,
}

/// What [`JobStore::result`] found.
#[derive(Debug)]
pub enum ResultLookup {
    /// The job finished; here is its canonical result JSON.
    Done(String),
    /// The job failed with this error.
    Failed(String),
    /// The job is still `queued` or `running`.
    Pending(&'static str),
    /// No such job.
    Unknown,
}

/// The bounded job table: FIFO queue, running set, finished history.
pub struct JobStore {
    inner: Mutex<Inner>,
    ready: Condvar,
    queue_capacity: usize,
    jobs_kept: usize,
    registry: Arc<Registry>,
}

fn lock<'a>(mutex: &'a Mutex<Inner>) -> MutexGuard<'a, Inner> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

impl JobStore {
    /// A store with a FIFO bounded to `queue_capacity` and a finished
    /// history bounded to `jobs_kept` (both floored to 1). `jobs.*`
    /// metrics land in `registry`.
    pub fn new(queue_capacity: usize, jobs_kept: usize, registry: Arc<Registry>) -> JobStore {
        JobStore {
            inner: Mutex::new(Inner {
                jobs: BTreeMap::new(),
                queue: VecDeque::new(),
                finished: VecDeque::new(),
                next_id: 0,
                draining: false,
            }),
            ready: Condvar::new(),
            queue_capacity: queue_capacity.max(1),
            jobs_kept: jobs_kept.max(1),
            registry,
        }
    }

    /// The FIFO bound.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// Jobs currently waiting in the FIFO.
    pub fn queue_len(&self) -> usize {
        lock(&self.inner).queue.len()
    }

    /// Whether a submission right now would be rejected. The HTTP layer
    /// checks this after parsing the request head and *before* reading
    /// the body, so a full queue costs an oversized upload nothing.
    pub fn is_full(&self) -> bool {
        let inner = lock(&self.inner);
        inner.draining || inner.queue.len() >= self.queue_capacity
    }

    /// Counts a submission refused before its body was read (the HTTP
    /// layer's early `429`, which never reaches [`submit`](Self::submit))
    /// under the same `jobs.rejected` counter as in-store rejections.
    pub fn note_rejected(&self) {
        self.registry.counter("jobs.rejected").inc(1);
    }

    /// Enqueues a job, returning its external id (`job-N`).
    pub fn submit(&self, source: String, input: JobInput) -> Result<String, SubmitError> {
        let mut inner = lock(&self.inner);
        if inner.draining {
            self.registry.counter("jobs.rejected").inc(1);
            return Err(SubmitError::Draining);
        }
        if inner.queue.len() >= self.queue_capacity {
            self.registry.counter("jobs.rejected").inc(1);
            return Err(SubmitError::QueueFull);
        }
        inner.next_id += 1;
        let id = inner.next_id;
        inner.jobs.insert(
            id,
            Job {
                source,
                phase: Phase::Queued(input),
                progress: Arc::new(StageProgress::default()),
            },
        );
        inner.queue.push_back(id);
        self.registry.counter("jobs.submitted").inc(1);
        self.registry
            .gauge("jobs.queue_depth")
            .set(inner.queue.len() as i64);
        drop(inner);
        self.ready.notify_one();
        Ok(format!("job-{id}"))
    }

    /// Blocks until a job is available and claims it for a worker.
    /// `None` once the store is draining and the FIFO is empty — queued
    /// jobs are always finished before workers exit (graceful drain).
    pub fn take_next(&self) -> Option<(u64, JobInput, Arc<StageProgress>)> {
        let mut inner = lock(&self.inner);
        loop {
            if let Some(id) = inner.queue.pop_front() {
                self.registry
                    .gauge("jobs.queue_depth")
                    .set(inner.queue.len() as i64);
                let job = inner.jobs.get_mut(&id).expect("queued id is in the table");
                let input = match std::mem::replace(&mut job.phase, Phase::Running) {
                    Phase::Queued(input) => input,
                    other => {
                        // Unreachable by construction; restore and skip.
                        job.phase = other;
                        continue;
                    }
                };
                let progress = Arc::clone(&job.progress);
                return Some((id, input, progress));
            }
            if inner.draining {
                return None;
            }
            inner = self
                .ready
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Records a job's successful completion.
    pub fn complete(
        &self,
        id: u64,
        run_id: String,
        canonical: String,
        stages: Vec<StageLine>,
        wall_us: u64,
    ) {
        self.finish(
            id,
            Phase::Done {
                run_id,
                canonical,
                stages,
                wall_us,
            },
        );
        self.registry.counter("jobs.completed").inc(1);
    }

    /// Records a job's failure.
    pub fn fail(&self, id: u64, error: String) {
        self.finish(id, Phase::Failed { error });
        self.registry.counter("jobs.failed").inc(1);
    }

    fn finish(&self, id: u64, phase: Phase) {
        let mut inner = lock(&self.inner);
        if let Some(job) = inner.jobs.get_mut(&id) {
            job.phase = phase;
        }
        inner.finished.push_back(id);
        let mut evicted = 0;
        while inner.finished.len() > self.jobs_kept {
            if let Some(old) = inner.finished.pop_front() {
                if inner.jobs.get(&old).is_some_and(|j| j.phase.finished()) {
                    inner.jobs.remove(&old);
                    evicted += 1;
                }
            }
        }
        if evicted > 0 {
            self.registry.counter("jobs.evicted").inc(evicted);
        }
    }

    /// The status of one job by external id (`job-N`).
    pub fn status(&self, external: &str) -> Option<JobStatus> {
        let id = parse_id(external)?;
        let inner = lock(&self.inner);
        inner.jobs.get(&id).map(|job| job_status(id, job))
    }

    /// The status of every retained job, oldest first.
    pub fn statuses(&self) -> Vec<JobStatus> {
        let inner = lock(&self.inner);
        inner
            .jobs
            .iter()
            .map(|(id, job)| job_status(*id, job))
            .collect()
    }

    /// The canonical result JSON of a finished job.
    pub fn result(&self, external: &str) -> ResultLookup {
        let Some(id) = parse_id(external) else {
            return ResultLookup::Unknown;
        };
        let inner = lock(&self.inner);
        match inner.jobs.get(&id).map(|j| &j.phase) {
            Some(Phase::Done { canonical, .. }) => ResultLookup::Done(canonical.clone()),
            Some(Phase::Failed { error }) => ResultLookup::Failed(error.clone()),
            Some(phase) => ResultLookup::Pending(phase.state()),
            None => ResultLookup::Unknown,
        }
    }

    /// Stops accepting submissions and wakes every worker; workers
    /// finish the queued backlog, then [`take_next`](Self::take_next)
    /// returns `None`.
    pub fn drain(&self) {
        lock(&self.inner).draining = true;
        self.ready.notify_all();
    }
}

impl std::fmt::Debug for JobStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = lock(&self.inner);
        f.debug_struct("JobStore")
            .field("jobs", &inner.jobs.len())
            .field("queued", &inner.queue.len())
            .field("queue_capacity", &self.queue_capacity)
            .field("draining", &inner.draining)
            .finish()
    }
}

fn parse_id(external: &str) -> Option<u64> {
    external.strip_prefix("job-")?.parse().ok()
}

fn job_status(id: u64, job: &Job) -> JobStatus {
    let (stages, run_id, error, wall_us) = match &job.phase {
        Phase::Done {
            run_id,
            stages,
            wall_us,
            ..
        } => (stages.clone(), Some(run_id.clone()), None, Some(*wall_us)),
        Phase::Failed { error } => (Vec::new(), None, Some(error.clone()), None),
        _ => (Vec::new(), None, None, None),
    };
    JobStatus {
        id: format!("job-{id}"),
        state: job.phase.state().to_string(),
        source: job.source.clone(),
        stages_done: job.progress.done(),
        stages,
        run_id,
        error,
        wall_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(capacity: usize, kept: usize) -> (JobStore, Arc<Registry>) {
        let registry = Arc::new(Registry::new());
        (JobStore::new(capacity, kept, Arc::clone(&registry)), registry)
    }

    #[test]
    fn submit_take_complete_round_trip() {
        let (store, registry) = store(2, 8);
        let id = store.submit("car:M".into(), JobInput::Car("M".into())).unwrap();
        assert_eq!(id, "job-1");
        assert_eq!(store.status("job-1").unwrap().state, "queued");
        assert_eq!(store.queue_len(), 1);

        let (raw, input, _progress) = store.take_next().unwrap();
        assert_eq!(raw, 1);
        assert!(matches!(input, JobInput::Car(name) if name == "M"));
        assert_eq!(store.status("job-1").unwrap().state, "running");

        store.complete(
            raw,
            "run-1".into(),
            "{}".into(),
            vec![StageLine {
                name: "transport".into(),
                wall_us: 5,
            }],
            42,
        );
        let status = store.status("job-1").unwrap();
        assert_eq!(status.state, "done");
        assert_eq!(status.run_id.as_deref(), Some("run-1"));
        assert_eq!(status.wall_us, Some(42));
        assert!(matches!(store.result("job-1"), ResultLookup::Done(j) if j == "{}"));
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counters.get("jobs.submitted"), Some(&1));
        assert_eq!(snapshot.counters.get("jobs.completed"), Some(&1));
    }

    #[test]
    fn full_queue_rejects_without_losing_jobs() {
        let (store, registry) = store(2, 8);
        store.submit("capture".into(), JobInput::Car("A".into())).unwrap();
        store.submit("capture".into(), JobInput::Car("B".into())).unwrap();
        assert!(store.is_full());
        assert_eq!(
            store.submit("capture".into(), JobInput::Car("C".into())),
            Err(SubmitError::QueueFull)
        );
        assert_eq!(store.queue_len(), 2);
        assert_eq!(registry.snapshot().counters.get("jobs.rejected"), Some(&1));

        // Draining a worker slot frees a queue slot.
        let _ = store.take_next().unwrap();
        assert!(!store.is_full());
        assert!(store.submit("capture".into(), JobInput::Car("C".into())).is_ok());
    }

    #[test]
    fn drain_finishes_backlog_then_stops_workers() {
        let (store, _registry) = store(4, 8);
        store.submit("car:M".into(), JobInput::Car("M".into())).unwrap();
        store.submit("car:B".into(), JobInput::Car("B".into())).unwrap();
        store.drain();
        assert_eq!(
            store.submit("car:C".into(), JobInput::Car("C".into())),
            Err(SubmitError::Draining)
        );
        // Queued jobs are still handed out after drain…
        assert!(store.take_next().is_some());
        assert!(store.take_next().is_some());
        // …and only then do workers see the end.
        assert!(store.take_next().is_none());
    }

    #[test]
    fn finished_history_is_bounded_and_eviction_counted() {
        let (store, registry) = store(8, 2);
        for _ in 0..5 {
            let id = store.submit("car:M".into(), JobInput::Car("M".into())).unwrap();
            let (raw, _, _) = store.take_next().unwrap();
            store.complete(raw, "run-x".into(), "{}".into(), vec![], 1);
            assert_eq!(store.status(&id).unwrap().state, "done");
        }
        // Only the last 2 finished jobs remain; 3 were evicted.
        assert_eq!(store.statuses().len(), 2);
        assert!(store.status("job-1").is_none());
        assert!(store.status("job-5").is_some());
        assert!(matches!(store.result("job-1"), ResultLookup::Unknown));
        assert_eq!(registry.snapshot().counters.get("jobs.evicted"), Some(&3));
    }

    #[test]
    fn stage_progress_records_stage_spans_only() {
        use dpr_telemetry::Span;
        let progress = Arc::new(StageProgress::default());
        let registry = Arc::new(Registry::new());
        registry.add_sink(Arc::clone(&progress) as Arc<dyn Sink>);
        dpr_telemetry::scoped(registry, || {
            let _pipeline = Span::enter("pipeline");
            {
                let _t = Span::enter("transport");
            }
            {
                let _o = Span::enter("ocr");
                // Depth-3 span with a stage name must not count.
                let _nested = Span::enter("transport");
            }
        });
        assert_eq!(progress.done(), vec!["transport".to_string(), "ocr".to_string()]);
    }
}
