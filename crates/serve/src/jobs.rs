//! The job table and bounded FIFO behind `POST /jobs`.
//!
//! A [`JobStore`] holds every job this service has seen: queued jobs
//! waiting in a bounded FIFO, the jobs the worker pool is running, and
//! a bounded history of finished ones (oldest finished evicted first,
//! counted as `jobs.evicted` — a long-running service cannot grow its
//! job table without limit). [`submit`](JobStore::submit) is the
//! backpressure point: a full queue is an error the HTTP layer turns
//! into `429 Too Many Requests` *before* reading the request body.
//!
//! Progress reporting rides the telemetry spans the pipeline already
//! emits: each job carries a [`StageProgress`] sink that records
//! pipeline stage spans as they close, so `GET /jobs/<id>` can say
//! which stages a running job has finished without the pipeline knowing
//! the service exists.

use dpr_capture::CaptureSession;
use dpr_telemetry::{Registry, Sink, SpanRecord};
use parking_lot::Mutex as PlMutex;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// How many finished jobs the store retains by default.
pub const JOBS_KEPT: usize = 64;

/// How many past events a job's [`EventHub`] replays to a late
/// subscriber.
pub const EVENT_HISTORY: usize = 256;

/// Per-subscriber queue bound; a subscriber this far behind starts
/// losing events (counted as `log.stream_dropped`) instead of ever
/// blocking the publisher.
pub const SUBSCRIBER_QUEUE: usize = 256;

/// One entry on a job's live event stream (`GET /jobs/<id>/events`),
/// serialized as one ndjson line per event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobEvent {
    /// Position on this job's stream, starting at 0. Every subscriber
    /// sees the same sequence (modulo drops at the two bounds).
    pub seq: u64,
    /// Microseconds since process start ([`dpr_log::now_us`]).
    pub t_us: u64,
    /// `state` (lifecycle transition), `stage` (pipeline stage
    /// finished), or `log` (a structured log record about this job).
    pub kind: String,
    /// The transition / stage name / log target.
    pub what: String,
    /// Supporting detail: the job source, stage wall-µs, or the full
    /// JSON-lines log record.
    pub detail: String,
}

/// One subscriber's channel: its bounded queue plus the flags the hub
/// and the subscriber use to signal each other.
struct SubChannel {
    queue: Mutex<VecDeque<JobEvent>>,
    ready: Condvar,
    ended: AtomicBool,
    detached: AtomicBool,
}

/// What [`Subscriber::wait`] yielded.
#[derive(Debug)]
pub enum EventWait {
    /// The next event on the stream.
    Event(JobEvent),
    /// Nothing arrived within the timeout; the job is still going.
    /// Streams use this to emit a keepalive.
    Idle,
    /// The job finished and every buffered event has been delivered.
    Ended,
}

/// A handle on one job's event stream. Dropping it detaches the
/// subscription — the hub stops queueing for it on its next publish.
pub struct Subscriber {
    channel: Arc<SubChannel>,
}

impl Subscriber {
    /// Blocks up to `timeout` for the next event.
    pub fn wait(&mut self, timeout: Duration) -> EventWait {
        let deadline = Instant::now() + timeout;
        let mut queue = self
            .channel
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(event) = queue.pop_front() {
                return EventWait::Event(event);
            }
            if self.channel.ended.load(Ordering::SeqCst) {
                return EventWait::Ended;
            }
            let now = Instant::now();
            if now >= deadline {
                return EventWait::Idle;
            }
            let (guard, _timeout) = self
                .channel
                .ready
                .wait_timeout(queue, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            queue = guard;
        }
    }
}

impl Drop for Subscriber {
    fn drop(&mut self) {
        self.channel.detached.store(true, Ordering::SeqCst);
    }
}

impl std::fmt::Debug for Subscriber {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subscriber")
            .field("ended", &self.channel.ended.load(Ordering::Relaxed))
            .finish()
    }
}

struct HubState {
    history: VecDeque<JobEvent>,
    next_seq: u64,
    subscribers: Vec<Arc<SubChannel>>,
    ended: bool,
}

/// One job's event fan-out: a bounded replay history plus any number
/// of live subscribers, each behind its own bounded queue.
///
/// [`push`](EventHub::push) never blocks and never waits on a slow
/// subscriber — a full subscriber queue drops the event for that
/// subscriber and counts it (`log.stream_dropped`), so the analysis
/// worker is isolated from stalled or dead stream clients.
pub struct EventHub {
    state: Mutex<HubState>,
    registry: Arc<Registry>,
}

impl EventHub {
    /// An empty hub counting drops into `registry`.
    pub fn new(registry: Arc<Registry>) -> EventHub {
        EventHub {
            state: Mutex::new(HubState {
                history: VecDeque::new(),
                next_seq: 0,
                subscribers: Vec::new(),
                ended: false,
            }),
            registry,
        }
    }

    /// Appends an event and fans it out. No-op after
    /// [`finish`](EventHub::finish).
    pub fn push(&self, kind: &str, what: &str, detail: &str) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.ended {
            return;
        }
        let event = JobEvent {
            seq: state.next_seq,
            t_us: dpr_log::now_us(),
            kind: kind.to_string(),
            what: what.to_string(),
            detail: detail.to_string(),
        };
        state.next_seq += 1;
        state.history.push_back(event.clone());
        while state.history.len() > EVENT_HISTORY {
            state.history.pop_front();
        }
        state
            .subscribers
            .retain(|channel| !channel.detached.load(Ordering::SeqCst));
        let mut dropped = 0;
        for channel in &state.subscribers {
            let mut queue = channel.queue.lock().unwrap_or_else(PoisonError::into_inner);
            if queue.len() >= SUBSCRIBER_QUEUE {
                dropped += 1;
            } else {
                queue.push_back(event.clone());
                channel.ready.notify_one();
            }
        }
        if dropped > 0 {
            self.registry.counter("log.stream_dropped").inc(dropped);
        }
    }

    /// Marks the stream complete: subscribers drain what is queued,
    /// then see [`EventWait::Ended`].
    pub fn finish(&self) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.ended = true;
        for channel in &state.subscribers {
            channel.ended.store(true, Ordering::SeqCst);
            channel.ready.notify_one();
        }
    }

    /// A new subscriber, preloaded with the replay history. A
    /// subscriber attached after [`finish`](EventHub::finish) still
    /// gets the history, then an immediate end-of-stream.
    pub fn subscribe(&self) -> Subscriber {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let channel = Arc::new(SubChannel {
            queue: Mutex::new(state.history.iter().cloned().collect()),
            ready: Condvar::new(),
            ended: AtomicBool::new(state.ended),
            detached: AtomicBool::new(false),
        });
        if !state.ended {
            state.subscribers.push(Arc::clone(&channel));
        }
        Subscriber { channel }
    }

    /// How many events this hub has published.
    pub fn published(&self) -> u64 {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .next_seq
    }
}

impl std::fmt::Debug for EventHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        f.debug_struct("EventHub")
            .field("published", &state.next_seq)
            .field("subscribers", &state.subscribers.len())
            .field("ended", &state.ended)
            .finish()
    }
}

/// One analysis worker's liveness line in `GET /healthz`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerReport {
    /// The worker thread's name (`dpr-serve-analyze-0`).
    pub name: String,
    /// `idle` (blocked on the queue) or `running` (mid-analysis).
    pub state: String,
    /// Milliseconds since this worker last checked in.
    pub heartbeat_age_ms: u64,
}

struct WorkerSlot {
    name: String,
    state: &'static str,
    last_beat: Instant,
}

/// The analysis workers' heartbeat board: each worker checks in at
/// every lifecycle transition, and `GET /healthz` reports the age of
/// each worker's last beat.
#[derive(Default)]
pub struct WorkerHealth {
    workers: PlMutex<Vec<WorkerSlot>>,
}

impl WorkerHealth {
    /// Registers a worker (initially `idle`); returns its slot index.
    pub fn register(&self, name: String) -> usize {
        let mut workers = self.workers.lock();
        workers.push(WorkerSlot {
            name,
            state: "idle",
            last_beat: Instant::now(),
        });
        workers.len() - 1
    }

    /// Records a heartbeat: the worker at `slot` is now in `state`.
    pub fn beat(&self, slot: usize, state: &'static str) {
        let mut workers = self.workers.lock();
        if let Some(worker) = workers.get_mut(slot) {
            worker.state = state;
            worker.last_beat = Instant::now();
        }
    }

    /// Every worker's current state and heartbeat age.
    pub fn report(&self) -> Vec<WorkerReport> {
        self.workers
            .lock()
            .iter()
            .map(|w| WorkerReport {
                name: w.name.clone(),
                state: w.state.to_string(),
                heartbeat_age_ms: w.last_beat.elapsed().as_millis() as u64,
            })
            .collect()
    }
}

impl std::fmt::Debug for WorkerHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerHealth")
            .field("workers", &self.workers.lock().len())
            .finish()
    }
}

/// Pipeline stage names [`StageProgress`] watches for. `ecr` runs
/// unspanned inside the association stage; everything else matches the
/// spans `DpReverser` enters per stage.
pub const STAGE_NAMES: [&str; 5] = ["capture", "transport", "ocr", "association", "inference"];

/// What one job analyzes.
#[derive(Debug)]
pub enum JobInput {
    /// A capture session parsed from an uploaded `.dprcap` body.
    Capture(Box<CaptureSession>),
    /// A named car profile (`{"car":"M"}`) to collect and analyze.
    Car(String),
}

/// A [`Sink`] recording which pipeline stages a running job has
/// finished, attached to the job's private telemetry registry. With a
/// hub attached it also pushes a `stage` event per finished stage, so
/// `GET /jobs/<id>/events` streams stage transitions live.
#[derive(Debug, Default)]
pub struct StageProgress {
    done: PlMutex<Vec<String>>,
    hub: Option<Arc<EventHub>>,
}

impl StageProgress {
    /// A progress sink that mirrors stage completions onto `hub`.
    pub fn with_hub(hub: Arc<EventHub>) -> StageProgress {
        StageProgress {
            done: PlMutex::default(),
            hub: Some(hub),
        }
    }

    /// Stage names closed so far, in completion order.
    pub fn done(&self) -> Vec<String> {
        self.done.lock().clone()
    }
}

impl Sink for StageProgress {
    fn span_closed(&self, record: &SpanRecord) {
        // Stage spans sit at depth 1 (capture, outside the pipeline
        // span) or depth 2 (under `pipeline`); deeper spans with a
        // colliding name (e.g. a nested `ocr` helper) are not stages.
        if record.depth <= 2 && STAGE_NAMES.contains(&record.name) {
            self.done.lock().push(record.name.to_string());
            if let Some(hub) = &self.hub {
                hub.push(
                    "stage",
                    record.name,
                    &format!("{}", record.wall.as_micros()),
                );
            }
        }
    }
}

/// One stage of a finished job: name and wall time, from the job's
/// [`PipelineTrace`](dpr_telemetry::PipelineTrace).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageLine {
    /// Stage name (`transport`, `ocr`, …).
    pub name: String,
    /// Stage wall time in microseconds.
    pub wall_us: u64,
}

/// What `GET /jobs/<id>` serializes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobStatus {
    /// External job id (`job-1`, `job-2`, …).
    pub id: String,
    /// `queued`, `running`, `done`, or `failed`.
    pub state: String,
    /// What was submitted: `capture` or `car:<letter>`.
    pub source: String,
    /// Stages finished so far (live progress while running; the full
    /// list once done).
    pub stages_done: Vec<String>,
    /// Per-stage wall times from the final trace (empty until done).
    pub stages: Vec<StageLine>,
    /// The [`RunStore`](dpr_obs::RunStore) id of the published result.
    pub run_id: Option<String>,
    /// Why the job failed, when it did.
    pub error: Option<String>,
    /// Total pipeline wall time in microseconds, once done.
    pub wall_us: Option<u64>,
}

enum Phase {
    Queued(JobInput),
    Running,
    Done {
        run_id: String,
        canonical: String,
        stages: Vec<StageLine>,
        wall_us: u64,
    },
    Failed {
        error: String,
    },
}

impl Phase {
    fn state(&self) -> &'static str {
        match self {
            Phase::Queued(_) => "queued",
            Phase::Running => "running",
            Phase::Done { .. } => "done",
            Phase::Failed { .. } => "failed",
        }
    }

    fn finished(&self) -> bool {
        matches!(self, Phase::Done { .. } | Phase::Failed { .. })
    }
}

struct Job {
    source: String,
    phase: Phase,
    progress: Arc<StageProgress>,
    events: Arc<EventHub>,
}

struct Inner {
    jobs: BTreeMap<u64, Job>,
    queue: VecDeque<u64>,
    finished: VecDeque<u64>,
    next_id: u64,
    draining: bool,
}

/// Why a submission was not enqueued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded FIFO is full — the caller should retry shortly (429).
    QueueFull,
    /// The service is shutting down (503).
    Draining,
}

/// What [`JobStore::result`] found.
#[derive(Debug)]
pub enum ResultLookup {
    /// The job finished; here is its canonical result JSON.
    Done(String),
    /// The job failed with this error.
    Failed(String),
    /// The job is still `queued` or `running`.
    Pending(&'static str),
    /// No such job.
    Unknown,
}

/// The bounded job table: FIFO queue, running set, finished history.
pub struct JobStore {
    inner: Mutex<Inner>,
    ready: Condvar,
    queue_capacity: usize,
    jobs_kept: usize,
    registry: Arc<Registry>,
}

fn lock<'a>(mutex: &'a Mutex<Inner>) -> MutexGuard<'a, Inner> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

impl JobStore {
    /// A store with a FIFO bounded to `queue_capacity` and a finished
    /// history bounded to `jobs_kept` (both floored to 1). `jobs.*`
    /// metrics land in `registry`.
    pub fn new(queue_capacity: usize, jobs_kept: usize, registry: Arc<Registry>) -> JobStore {
        JobStore {
            inner: Mutex::new(Inner {
                jobs: BTreeMap::new(),
                queue: VecDeque::new(),
                finished: VecDeque::new(),
                next_id: 0,
                draining: false,
            }),
            ready: Condvar::new(),
            queue_capacity: queue_capacity.max(1),
            jobs_kept: jobs_kept.max(1),
            registry,
        }
    }

    /// The FIFO bound.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// Jobs currently waiting in the FIFO.
    pub fn queue_len(&self) -> usize {
        lock(&self.inner).queue.len()
    }

    /// Whether a submission right now would be rejected. The HTTP layer
    /// checks this after parsing the request head and *before* reading
    /// the body, so a full queue costs an oversized upload nothing.
    pub fn is_full(&self) -> bool {
        let inner = lock(&self.inner);
        inner.draining || inner.queue.len() >= self.queue_capacity
    }

    /// Counts a submission refused before its body was read (the HTTP
    /// layer's early `429`, which never reaches [`submit`](Self::submit))
    /// under the same `jobs.rejected` counter as in-store rejections.
    pub fn note_rejected(&self) {
        self.registry.counter("jobs.rejected").inc(1);
    }

    /// Enqueues a job, returning its external id (`job-N`).
    pub fn submit(&self, source: String, input: JobInput) -> Result<String, SubmitError> {
        let mut inner = lock(&self.inner);
        if inner.draining {
            self.registry.counter("jobs.rejected").inc(1);
            return Err(SubmitError::Draining);
        }
        if inner.queue.len() >= self.queue_capacity {
            self.registry.counter("jobs.rejected").inc(1);
            return Err(SubmitError::QueueFull);
        }
        inner.next_id += 1;
        let id = inner.next_id;
        let events = Arc::new(EventHub::new(Arc::clone(&self.registry)));
        events.push("state", "queued", &source);
        inner.jobs.insert(
            id,
            Job {
                phase: Phase::Queued(input),
                progress: Arc::new(StageProgress::with_hub(Arc::clone(&events))),
                events,
                source,
            },
        );
        inner.queue.push_back(id);
        self.registry.counter("jobs.submitted").inc(1);
        self.registry
            .gauge("jobs.queue_depth")
            .set(inner.queue.len() as i64);
        // Logged under the store lock so this record always precedes the
        // worker's "job started": `take_next` needs the same lock to
        // claim the job. Ambient context carries the HTTP edge's
        // `req_id` in, tying the request to the queue hand-off.
        dpr_log::info(
            "serve.job",
            "job accepted",
            &[
                ("job_id", format!("job-{id}").into()),
                ("source", inner.jobs[&id].source.as_str().into()),
            ],
        );
        drop(inner);
        self.ready.notify_one();
        Ok(format!("job-{id}"))
    }

    /// Blocks until a job is available and claims it for a worker.
    /// `None` once the store is draining and the FIFO is empty — queued
    /// jobs are always finished before workers exit (graceful drain).
    pub fn take_next(&self) -> Option<(u64, JobInput, Arc<StageProgress>, Arc<EventHub>)> {
        let mut inner = lock(&self.inner);
        loop {
            if let Some(id) = inner.queue.pop_front() {
                self.registry
                    .gauge("jobs.queue_depth")
                    .set(inner.queue.len() as i64);
                let job = inner.jobs.get_mut(&id).expect("queued id is in the table");
                let input = match std::mem::replace(&mut job.phase, Phase::Running) {
                    Phase::Queued(input) => input,
                    other => {
                        // Unreachable by construction; restore and skip.
                        job.phase = other;
                        continue;
                    }
                };
                let progress = Arc::clone(&job.progress);
                let events = Arc::clone(&job.events);
                events.push("state", "running", "");
                return Some((id, input, progress, events));
            }
            if inner.draining {
                return None;
            }
            inner = self
                .ready
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Records a job's successful completion.
    pub fn complete(
        &self,
        id: u64,
        run_id: String,
        canonical: String,
        stages: Vec<StageLine>,
        wall_us: u64,
    ) {
        let detail = run_id.clone();
        let events = self.finish(
            id,
            Phase::Done {
                run_id,
                canonical,
                stages,
                wall_us,
            },
        );
        self.registry.counter("jobs.completed").inc(1);
        if let Some(events) = events {
            events.push("state", "done", &detail);
            events.finish();
        }
    }

    /// Records a job's failure.
    pub fn fail(&self, id: u64, error: String) {
        let detail = error.clone();
        let events = self.finish(id, Phase::Failed { error });
        self.registry.counter("jobs.failed").inc(1);
        if let Some(events) = events {
            events.push("state", "failed", &detail);
            events.finish();
        }
    }

    fn finish(&self, id: u64, phase: Phase) -> Option<Arc<EventHub>> {
        let mut inner = lock(&self.inner);
        let events = inner.jobs.get_mut(&id).map(|job| {
            job.phase = phase;
            Arc::clone(&job.events)
        });
        inner.finished.push_back(id);
        let mut evicted = 0;
        while inner.finished.len() > self.jobs_kept {
            if let Some(old) = inner.finished.pop_front() {
                if inner.jobs.get(&old).is_some_and(|j| j.phase.finished()) {
                    inner.jobs.remove(&old);
                    evicted += 1;
                }
            }
        }
        if evicted > 0 {
            self.registry.counter("jobs.evicted").inc(evicted);
        }
        events
    }

    /// Subscribes to one job's live event stream. `None` for unknown
    /// (or already-evicted) jobs; a finished job yields its replay
    /// history followed by end-of-stream.
    pub fn subscribe(&self, external: &str) -> Option<Subscriber> {
        let id = parse_id(external)?;
        let inner = lock(&self.inner);
        inner.jobs.get(&id).map(|job| job.events.subscribe())
    }

    /// How many jobs are being analyzed right now.
    pub fn running(&self) -> usize {
        let inner = lock(&self.inner);
        inner
            .jobs
            .values()
            .filter(|job| matches!(job.phase, Phase::Running))
            .count()
    }

    /// The status of one job by external id (`job-N`).
    pub fn status(&self, external: &str) -> Option<JobStatus> {
        let id = parse_id(external)?;
        let inner = lock(&self.inner);
        inner.jobs.get(&id).map(|job| job_status(id, job))
    }

    /// The status of every retained job, oldest first.
    pub fn statuses(&self) -> Vec<JobStatus> {
        let inner = lock(&self.inner);
        inner
            .jobs
            .iter()
            .map(|(id, job)| job_status(*id, job))
            .collect()
    }

    /// The canonical result JSON of a finished job.
    pub fn result(&self, external: &str) -> ResultLookup {
        let Some(id) = parse_id(external) else {
            return ResultLookup::Unknown;
        };
        let inner = lock(&self.inner);
        match inner.jobs.get(&id).map(|j| &j.phase) {
            Some(Phase::Done { canonical, .. }) => ResultLookup::Done(canonical.clone()),
            Some(Phase::Failed { error }) => ResultLookup::Failed(error.clone()),
            Some(phase) => ResultLookup::Pending(phase.state()),
            None => ResultLookup::Unknown,
        }
    }

    /// Stops accepting submissions and wakes every worker; workers
    /// finish the queued backlog, then [`take_next`](Self::take_next)
    /// returns `None`.
    pub fn drain(&self) {
        lock(&self.inner).draining = true;
        self.ready.notify_all();
    }
}

impl std::fmt::Debug for JobStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = lock(&self.inner);
        f.debug_struct("JobStore")
            .field("jobs", &inner.jobs.len())
            .field("queued", &inner.queue.len())
            .field("queue_capacity", &self.queue_capacity)
            .field("draining", &inner.draining)
            .finish()
    }
}

fn parse_id(external: &str) -> Option<u64> {
    external.strip_prefix("job-")?.parse().ok()
}

fn job_status(id: u64, job: &Job) -> JobStatus {
    let (stages, run_id, error, wall_us) = match &job.phase {
        Phase::Done {
            run_id,
            stages,
            wall_us,
            ..
        } => (stages.clone(), Some(run_id.clone()), None, Some(*wall_us)),
        Phase::Failed { error } => (Vec::new(), None, Some(error.clone()), None),
        _ => (Vec::new(), None, None, None),
    };
    JobStatus {
        id: format!("job-{id}"),
        state: job.phase.state().to_string(),
        source: job.source.clone(),
        stages_done: job.progress.done(),
        stages,
        run_id,
        error,
        wall_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(capacity: usize, kept: usize) -> (JobStore, Arc<Registry>) {
        let registry = Arc::new(Registry::new());
        (JobStore::new(capacity, kept, Arc::clone(&registry)), registry)
    }

    #[test]
    fn submit_take_complete_round_trip() {
        let (store, registry) = store(2, 8);
        let id = store.submit("car:M".into(), JobInput::Car("M".into())).unwrap();
        assert_eq!(id, "job-1");
        assert_eq!(store.status("job-1").unwrap().state, "queued");
        assert_eq!(store.queue_len(), 1);

        let (raw, input, _progress, _events) = store.take_next().unwrap();
        assert_eq!(raw, 1);
        assert!(matches!(input, JobInput::Car(name) if name == "M"));
        assert_eq!(store.status("job-1").unwrap().state, "running");

        store.complete(
            raw,
            "run-1".into(),
            "{}".into(),
            vec![StageLine {
                name: "transport".into(),
                wall_us: 5,
            }],
            42,
        );
        let status = store.status("job-1").unwrap();
        assert_eq!(status.state, "done");
        assert_eq!(status.run_id.as_deref(), Some("run-1"));
        assert_eq!(status.wall_us, Some(42));
        assert!(matches!(store.result("job-1"), ResultLookup::Done(j) if j == "{}"));
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counters.get("jobs.submitted"), Some(&1));
        assert_eq!(snapshot.counters.get("jobs.completed"), Some(&1));
    }

    #[test]
    fn full_queue_rejects_without_losing_jobs() {
        let (store, registry) = store(2, 8);
        store.submit("capture".into(), JobInput::Car("A".into())).unwrap();
        store.submit("capture".into(), JobInput::Car("B".into())).unwrap();
        assert!(store.is_full());
        assert_eq!(
            store.submit("capture".into(), JobInput::Car("C".into())),
            Err(SubmitError::QueueFull)
        );
        assert_eq!(store.queue_len(), 2);
        assert_eq!(registry.snapshot().counters.get("jobs.rejected"), Some(&1));

        // Draining a worker slot frees a queue slot.
        let _ = store.take_next().unwrap();
        assert!(!store.is_full());
        assert!(store.submit("capture".into(), JobInput::Car("C".into())).is_ok());
    }

    #[test]
    fn drain_finishes_backlog_then_stops_workers() {
        let (store, _registry) = store(4, 8);
        store.submit("car:M".into(), JobInput::Car("M".into())).unwrap();
        store.submit("car:B".into(), JobInput::Car("B".into())).unwrap();
        store.drain();
        assert_eq!(
            store.submit("car:C".into(), JobInput::Car("C".into())),
            Err(SubmitError::Draining)
        );
        // Queued jobs are still handed out after drain…
        assert!(store.take_next().is_some());
        assert!(store.take_next().is_some());
        // …and only then do workers see the end.
        assert!(store.take_next().is_none());
    }

    #[test]
    fn finished_history_is_bounded_and_eviction_counted() {
        let (store, registry) = store(8, 2);
        for _ in 0..5 {
            let id = store.submit("car:M".into(), JobInput::Car("M".into())).unwrap();
            let (raw, _, _, _) = store.take_next().unwrap();
            store.complete(raw, "run-x".into(), "{}".into(), vec![], 1);
            assert_eq!(store.status(&id).unwrap().state, "done");
        }
        // Only the last 2 finished jobs remain; 3 were evicted.
        assert_eq!(store.statuses().len(), 2);
        assert!(store.status("job-1").is_none());
        assert!(store.status("job-5").is_some());
        assert!(matches!(store.result("job-1"), ResultLookup::Unknown));
        assert_eq!(registry.snapshot().counters.get("jobs.evicted"), Some(&3));
    }

    #[test]
    fn stage_progress_records_stage_spans_only() {
        use dpr_telemetry::Span;
        let progress = Arc::new(StageProgress::default());
        let registry = Arc::new(Registry::new());
        registry.add_sink(Arc::clone(&progress) as Arc<dyn Sink>);
        dpr_telemetry::scoped(registry, || {
            let _pipeline = Span::enter("pipeline");
            {
                let _t = Span::enter("transport");
            }
            {
                let _o = Span::enter("ocr");
                // Depth-3 span with a stage name must not count.
                let _nested = Span::enter("transport");
            }
        });
        assert_eq!(progress.done(), vec!["transport".to_string(), "ocr".to_string()]);
    }
}
