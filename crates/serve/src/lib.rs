//! `dpr-serve` — a concurrent, backpressured HTTP analysis service.
//!
//! The crate turns the DP-Reverser pipeline into a long-running job
//! service, std-only like everything else in the workspace:
//!
//! * `POST /jobs` accepts either a `.dprcap` capture body (streamed
//!   through the corruption-tolerant
//!   [`CaptureReader`](dpr_capture::CaptureReader), never buffered
//!   unboundedly) or a tiny `{"car":"M"}` JSON form naming a simulated
//!   car profile, and answers `202 Accepted` with a job id once the job
//!   is on the queue.
//! * The queue is a **bounded FIFO** drained by a **fixed pool** of
//!   analysis workers. When it is full the service answers
//!   `429 Too Many Requests` with a `Retry-After` header *before
//!   reading the request body* — backpressure is explicit and cheap,
//!   not an out-of-memory event. Queue depth is exported as the
//!   `jobs.queue_depth` gauge.
//! * `GET /jobs/<id>` reports `queued` / `running` / `done` / `failed`
//!   with per-stage progress (the stage spans of the job's
//!   [`PipelineTrace`](dpr_telemetry::PipelineTrace), observed live by
//!   a span sink). `GET /jobs/<id>/result` serves the canonical result
//!   JSON — byte-identical to what a direct
//!   `DpReverser::analyze_capture` call would produce.
//! * Completed runs publish their evidence ledgers into the shared
//!   [`RunStore`](dpr_obs::RunStore), so the existing `/runs` and
//!   `/evidence/<sensor>` observability routes work on service results
//!   unchanged, alongside `/metrics`, `/trace`, and `/healthz`.
//!
//! The HTTP substrate (bounded request parsing, slot-map session table
//! with idle timeouts, handler pool) lives in [`dpr_obs`]; this crate
//! adds the job model on top. The service itself stays decoupled from
//! *how* analyses run through the [`Analyzer`] trait — the `dpr-bench`
//! binary plugs in the real pipeline, tests plug in stubs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod jobs;
pub mod router;
mod worker;

pub use jobs::{
    EventHub, EventWait, JobEvent, JobInput, JobStatus, JobStore, ResultLookup, StageLine,
    StageProgress, SubmitError, Subscriber, WorkerHealth, WorkerReport, EVENT_HISTORY, JOBS_KEPT,
    STAGE_NAMES, SUBSCRIBER_QUEUE,
};
pub use router::{ServiceHealth, ServiceRouter, SubmitResponse, SERVE_ROUTES};

use dpr_obs::{shared_runs, shared_trace, HttpServer, ObsRouter, ServerConfig, SharedRuns, SharedTrace};
use dpr_series::{Sampler, SeriesConfig};
use dpr_telemetry::Registry;
use std::io;
use std::net::SocketAddr;
use std::sync::Arc;
use std::thread::JoinHandle;

/// How a service turns a submitted job into a recovered protocol.
///
/// Implementations must be cheap to share across worker threads. Each
/// call runs with a fresh job-local [`Registry`] already scoped onto
/// the thread, so `analyze` implementations just run the pipeline —
/// spans and counters land in the right place automatically.
pub trait Analyzer: Send + Sync {
    /// Runs the full pipeline on one job input. `Err` marks the job
    /// failed with the given reason; panics are caught and treated the
    /// same way.
    fn analyze(&self, input: JobInput) -> Result<dp_reverser::ReverseEngineeringResult, String>;

    /// Whether `{"car":"<name>"}` names a profile this analyzer can
    /// collect and analyze. Unknown names are rejected with `400` at
    /// submit time instead of failing the job later.
    fn knows_car(&self, _name: &str) -> bool {
        true
    }
}

/// Tuning for an [`AnalysisService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// The HTTP layer: handler pool width, session table, timeouts.
    pub server: ServerConfig,
    /// Fixed number of analysis worker threads draining the job queue.
    pub analysis_workers: usize,
    /// Bounded job-queue capacity; submissions beyond it get `429`.
    pub queue_capacity: usize,
    /// Largest request body accepted, in bytes; beyond it, `413`.
    pub max_body_bytes: u64,
    /// Finished jobs kept queryable before eviction (`jobs.evicted`).
    pub jobs_kept: usize,
    /// Metrics-history sampling: interval and per-series retention for
    /// `/metrics/history` and the SLO burn-rate grades on `/healthz`.
    /// `None` disables the sampler entirely (no thread, empty `slos`).
    pub series: Option<SeriesConfig>,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            server: ServerConfig::default(),
            analysis_workers: 2,
            queue_capacity: 8,
            max_body_bytes: 64 * 1024 * 1024,
            jobs_kept: JOBS_KEPT,
            series: Some(SeriesConfig::from_env()),
        }
    }
}

/// The running service: an [`HttpServer`] fronting a bounded job queue
/// and a fixed analysis worker pool.
///
/// Shutdown ([`stop`](AnalysisService::stop), or drop) is a graceful
/// drain: the listener closes first, then queued jobs finish, then the
/// workers join.
pub struct AnalysisService {
    server: Option<HttpServer>,
    store: Arc<JobStore>,
    workers: Vec<JoinHandle<()>>,
    registry: Arc<Registry>,
    runs: SharedRuns,
    trace: SharedTrace,
    health: Arc<WorkerHealth>,
    series: Option<Arc<Sampler>>,
}

impl AnalysisService {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts the service:
    /// analysis workers first, then the HTTP listener, so the first
    /// accepted job already has someone to run it.
    pub fn start(
        addr: &str,
        config: ServiceConfig,
        analyzer: Arc<dyn Analyzer>,
    ) -> io::Result<AnalysisService> {
        let registry = Arc::new(Registry::new());
        let trace = shared_trace();
        let runs = shared_runs();
        let store = Arc::new(JobStore::new(
            config.queue_capacity,
            config.jobs_kept,
            Arc::clone(&registry),
        ));
        let health = Arc::new(WorkerHealth::default());
        let mut workers = Vec::new();
        for i in 0..config.analysis_workers.max(1) {
            let name = format!("dpr-serve-analyze-{i}");
            let slot = health.register(name.clone());
            let store = Arc::clone(&store);
            let analyzer = Arc::clone(&analyzer);
            let registry = Arc::clone(&registry);
            let trace = Arc::clone(&trace);
            let runs = Arc::clone(&runs);
            let health = Arc::clone(&health);
            let handle = std::thread::Builder::new()
                .name(name)
                .spawn(move || {
                    worker::run_worker(slot, store, analyzer, registry, trace, runs, health)
                })?;
            workers.push(handle);
        }
        let series = config.series.map(|series_config| {
            Sampler::start(
                Arc::clone(&registry),
                series_config,
                dpr_series::service_slos(config.queue_capacity),
            )
        });
        let mut obs = ObsRouter::new(Arc::clone(&registry), Arc::clone(&trace), Arc::clone(&runs));
        if let Some(sampler) = &series {
            obs = obs.with_series(Arc::clone(sampler));
        }
        let router = Arc::new(ServiceRouter::new(
            obs,
            Arc::clone(&store),
            analyzer,
            Arc::clone(&health),
            config.max_body_bytes,
        ));
        let server = match HttpServer::start(addr, "dpr-serve", config.server, router, Arc::clone(&registry)) {
            Ok(server) => server,
            Err(e) => {
                // Bind failed: unwind the already-running workers
                // before reporting, so no threads leak.
                if let Some(sampler) = &series {
                    sampler.stop();
                }
                store.drain();
                for handle in workers {
                    let _ = handle.join();
                }
                return Err(e);
            }
        };
        Ok(AnalysisService {
            server: Some(server),
            store,
            workers,
            registry,
            runs,
            trace,
            health,
            series,
        })
    }

    /// The bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.server
            .as_ref()
            .expect("a running service has a server")
            .addr()
    }

    /// The registry the `serve.*` / `jobs.*` metrics land in.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The job store (queue + finished-job history).
    pub fn store(&self) -> &Arc<JobStore> {
        &self.store
    }

    /// The shared run store `/runs` and `/evidence/<sensor>` serve.
    pub fn runs(&self) -> &SharedRuns {
        &self.runs
    }

    /// The latest-trace cell `/trace` serves.
    pub fn trace(&self) -> &SharedTrace {
        &self.trace
    }

    /// The analysis workers' heartbeat board `/healthz` reports.
    pub fn health(&self) -> &Arc<WorkerHealth> {
        &self.health
    }

    /// The metrics-history sampler, when one is configured — the same
    /// data `/metrics/history` serves, without a round trip.
    pub fn series(&self) -> Option<&Arc<Sampler>> {
        self.series.as_ref()
    }

    /// Graceful drain: stop accepting, answer in-flight requests,
    /// finish every queued job, join the workers.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if let Some(server) = self.server.take() {
            server.stop();
        }
        self.store.drain();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        // Last, so the sampler keeps ticking while the drain produces
        // its final jobs.* deltas.
        if let Some(sampler) = self.series.take() {
            sampler.stop();
        }
    }
}

impl Drop for AnalysisService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for AnalysisService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnalysisService")
            .field("addr", &self.server.as_ref().map(HttpServer::addr))
            .field("store", &self.store)
            .finish()
    }
}
