//! The service's HTTP surface: `/jobs` routes in front of the
//! observability routes.
//!
//! The submit path is ordered so hostile or unlucky traffic costs the
//! least possible work:
//!
//! 1. parse the (bounded) request head — `400`/`413` come from the
//!    server core before this router runs;
//! 2. validate `Content-Length` — `411` missing, `400` junk, `413`
//!    over the body cap, all before reading a single body byte;
//! 3. check queue backpressure — a full FIFO answers
//!    `429 Too Many Requests` + `Retry-After` **without reading the
//!    body at all**;
//! 4. only then stream the body, through a pooled reusable buffer, into
//!    either the corruption-tolerant [`CaptureReader`] (a `.dprcap`
//!    upload) or the tiny `{"car":"M"}` JSON form.

use crate::jobs::{
    EventWait, JobInput, JobStore, ResultLookup, SubmitError, WorkerHealth, WorkerReport,
};
use crate::Analyzer;
use dpr_capture::CaptureReader;
use dpr_obs::http::{BodyReader, RequestHead};
use dpr_obs::{Conn, HttpHandler, ObsRouter, OBS_ROUTES};
use dpr_telemetry::json::{self, Value};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::io::{self, Read};
use std::sync::Arc;
use std::time::Duration;

/// Bodies at most this large may be the JSON car form; larger bodies
/// must be captures and are streamed, never buffered whole.
const SMALL_BODY: u64 = 4 * 1024;

/// How long the event stream waits for the next event before emitting
/// a keepalive blank line (which doubles as the disconnect probe).
const EVENT_POLL: Duration = Duration::from_millis(250);

/// The service's own route list (the obs routes are appended in 404s).
pub const SERVE_ROUTES: &str = "POST /jobs, GET /jobs, GET /jobs/<id>, GET /jobs/<id>/result, \
     GET /jobs/<id>/events, GET /healthz, GET /debug/snapshot";

/// What the *service's* `GET /healthz` serializes — the obs
/// [`HealthStatus`](dpr_obs::HealthStatus) fields plus the job queue
/// and per-worker liveness, so a load driver can refuse to hammer an
/// unhealthy service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceHealth {
    /// `ok`, or `no-workers` when no analysis worker ever registered.
    /// SLO burn-rate grades live in `slos`, separately — a burning SLO
    /// means the service is *degraded*, not that the process is down,
    /// so liveness probes keep their meaning.
    pub status: String,
    /// The `dpr-serve` crate version compiled into this binary.
    pub version: String,
    /// Whole seconds since the service started.
    pub uptime_secs: u64,
    /// Runs published through the shared run store so far.
    pub runs_published: u64,
    /// Jobs waiting in the bounded FIFO right now.
    pub queue_depth: u64,
    /// The FIFO bound (`429` beyond it).
    pub queue_capacity: u64,
    /// Jobs being analyzed right now.
    pub jobs_running: u64,
    /// Each analysis worker's state and last-heartbeat age.
    pub workers: Vec<WorkerReport>,
    /// Burn-rate grade of every service SLO (`ok`/`warn`/`burning`);
    /// empty when the service runs without a series sampler.
    pub slos: Vec<dpr_series::SloStatus>,
}

/// What a successful `POST /jobs` returns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubmitResponse {
    /// The assigned job id (`job-N`).
    pub job: String,
    /// Where to poll for status.
    pub poll: String,
}

/// A small free-list of capture read buffers, shared by the HTTP
/// handler threads so steady-state uploads reuse buffers instead of
/// allocating per request.
struct BufferPool {
    free: Mutex<Vec<Vec<u8>>>,
    keep: usize,
}

impl BufferPool {
    fn new(keep: usize) -> BufferPool {
        BufferPool {
            free: Mutex::new(Vec::new()),
            keep,
        }
    }

    fn take(&self) -> Vec<u8> {
        self.free.lock().pop().unwrap_or_default()
    }

    fn put(&self, mut buf: Vec<u8>) {
        buf.clear();
        let mut free = self.free.lock();
        if free.len() < self.keep {
            free.push(buf);
        }
    }
}

/// The [`HttpHandler`] of an analysis service: job routes first, the
/// observability routes as fallback.
pub struct ServiceRouter {
    obs: ObsRouter,
    store: Arc<JobStore>,
    analyzer: Arc<dyn Analyzer>,
    health: Arc<WorkerHealth>,
    max_body: u64,
    buffers: BufferPool,
}

impl ServiceRouter {
    /// A router submitting to `store`, validating car names against
    /// `analyzer`, reporting `health` on `/healthz`, and falling back
    /// to `obs` (which also carries the series sampler, when one is
    /// attached, for `/metrics/history` and the SLO grades).
    pub fn new(
        obs: ObsRouter,
        store: Arc<JobStore>,
        analyzer: Arc<dyn Analyzer>,
        health: Arc<WorkerHealth>,
        max_body: u64,
    ) -> ServiceRouter {
        ServiceRouter {
            obs,
            store,
            analyzer,
            health,
            max_body,
            buffers: BufferPool::new(8),
        }
    }

    fn service_health(&self) -> ServiceHealth {
        let workers = self.health.report();
        ServiceHealth {
            status: if workers.is_empty() {
                "no-workers".to_string()
            } else {
                "ok".to_string()
            },
            version: env!("CARGO_PKG_VERSION").to_string(),
            uptime_secs: self.obs.uptime_secs(),
            runs_published: self.obs.runs().lock().published(),
            queue_depth: self.store.queue_len() as u64,
            queue_capacity: self.store.queue_capacity() as u64,
            jobs_running: self.store.running() as u64,
            workers,
            slos: self
                .obs
                .series()
                .map(|sampler| sampler.statuses())
                .unwrap_or_default(),
        }
    }

    fn healthz(&self, conn: &mut Conn<'_>) -> io::Result<()> {
        let body = json::to_string(&self.service_health())
            .unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"));
        conn.respond("200 OK", "application/json", &body)
    }

    /// One JSON diagnostics bundle: service health, the jobs table,
    /// the pool profile, the full metrics snapshot, the sampled metric
    /// history with SLO grades (`null` without a sampler), and the
    /// in-memory log ring — everything a bug report needs, in one
    /// request.
    fn snapshot(&self, conn: &mut Conn<'_>) -> io::Result<()> {
        fn or_err(out: Result<String, dpr_telemetry::json::Error>) -> String {
            out.unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"))
        }
        let health = or_err(json::to_string(&self.service_health()));
        let jobs = or_err(json::to_string(&self.store.statuses()));
        let profile = or_err(json::to_string(&dpr_prof::snapshot()));
        let metrics = or_err(json::to_string(&conn.registry().snapshot()));
        let series = match self.obs.series() {
            Some(sampler) => or_err(json::to_string(&sampler.history())),
            None => "null".to_string(),
        };
        let ring = dpr_log::logger().ring();
        let records: Vec<String> = ring
            .snapshot()
            .iter()
            .map(|entry| entry.record.to_json())
            .collect();
        let log = format!(
            "{{\"pushed\":{},\"overwritten\":{},\"records\":[{}]}}",
            ring.pushed(),
            ring.overwritten(),
            records.join(",")
        );
        let body = format!(
            "{{\"health\":{health},\"jobs\":{jobs},\"profile\":{profile},\
             \"metrics\":{metrics},\"series\":{series},\"log\":{log}}}"
        );
        conn.respond("200 OK", "application/json", &body)
    }

    /// Streams one job's events as chunked ndjson: the replay history,
    /// then live events as they happen, a blank-line keepalive while
    /// idle, and EOF once the job finishes. A client that disconnects
    /// mid-stream just ends this handler — the analysis worker never
    /// notices (its hub push never blocks).
    fn events(&self, external: &str, conn: &mut Conn<'_>) -> io::Result<()> {
        let Some(mut subscriber) = self.store.subscribe(external) else {
            return conn.respond(
                "404 Not Found",
                "text/plain",
                &format!("unknown job {external:?}\n"),
            );
        };
        conn.start_chunked("200 OK", "application/x-ndjson", &[])?;
        loop {
            match subscriber.wait(EVENT_POLL) {
                EventWait::Event(event) => {
                    let mut line = json::to_string(&event)
                        .unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"));
                    line.push('\n');
                    if conn.write_chunk(line.as_bytes()).is_err() {
                        // Client went away; nothing upstream to unwind.
                        return Ok(());
                    }
                }
                EventWait::Idle => {
                    if conn.write_chunk(b"\n").is_err() {
                        return Ok(());
                    }
                }
                EventWait::Ended => return conn.finish_chunked(),
            }
        }
    }

    fn submit(&self, head: &RequestHead, conn: &mut Conn<'_>) -> io::Result<()> {
        // Content-Length gatekeeping: everything here happens before a
        // single body byte is read.
        let declared = match head.content_length() {
            Err(why) => {
                return conn.respond("400 Bad Request", "text/plain", &format!("{why}\n"));
            }
            Ok(None) => {
                return conn.respond(
                    "411 Length Required",
                    "text/plain",
                    "POST /jobs requires Content-Length\n",
                );
            }
            Ok(Some(0)) => {
                return conn.respond("400 Bad Request", "text/plain", "empty job body\n");
            }
            Ok(Some(n)) => n,
        };
        if declared > self.max_body {
            return conn.respond(
                "413 Content Too Large",
                "text/plain",
                &format!(
                    "job body of {declared} bytes exceeds the {} byte limit\n",
                    self.max_body
                ),
            );
        }
        // Backpressure: a full queue refuses the job while the body is
        // still unread (and mostly still un-sent, for large uploads).
        if self.store.is_full() {
            self.store.note_rejected();
            return reject_full(conn);
        }
        let (source, input) = {
            let mut body = BodyReader::new(&head.leftover, conn.stream(), declared);
            match self.parse_body(&mut body, declared) {
                Ok(parsed) => {
                    if !body.complete() {
                        // parse_body can succeed on a prefix (the capture
                        // reader tolerates truncation); a torn body is
                        // still a client error, not a job.
                        return conn.respond(
                            "400 Bad Request",
                            "text/plain",
                            "connection closed before the declared body length arrived\n",
                        );
                    }
                    parsed
                }
                Err(why) => {
                    return conn.respond("400 Bad Request", "text/plain", &format!("{why}\n"));
                }
            }
        };
        match self.store.submit(source.clone(), input) {
            Ok(job) => {
                let response = SubmitResponse {
                    poll: format!("/jobs/{job}"),
                    job,
                };
                let body = json::to_string(&response)
                    .unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"));
                conn.respond("202 Accepted", "application/json", &body)
            }
            // The queue filled while we read the body: same answer as
            // the pre-body check, the client just paid for the upload.
            Err(SubmitError::QueueFull) => reject_full(conn),
            Err(SubmitError::Draining) => conn.respond(
                "503 Service Unavailable",
                "text/plain",
                "service is draining\n",
            ),
        }
    }

    /// Reads one job body: the `{"car":"M"}` form (small bodies opening
    /// with `{`) or a `.dprcap` capture stream.
    fn parse_body<R: Read>(
        &self,
        body: &mut BodyReader<'_, R>,
        declared: u64,
    ) -> Result<(String, JobInput), String> {
        if declared <= SMALL_BODY {
            let mut buf = self.buffers.take();
            body.take(SMALL_BODY)
                .read_to_end(&mut buf)
                .map_err(|e| format!("reading job body: {e}"))?;
            let parsed = if buf.first() == Some(&b'{') {
                self.parse_car_json(&buf)
            } else {
                parse_capture(buf.as_slice(), self.buffers.take())
                    .map(|(session, spare)| {
                        self.buffers.put(spare);
                        ("capture".to_string(), JobInput::Capture(session))
                    })
                    .map_err(|(why, spare)| {
                        self.buffers.put(spare);
                        why
                    })
            };
            self.buffers.put(buf);
            parsed
        } else {
            let (parsed, spare) = match parse_capture(body, self.buffers.take()) {
                Ok((session, spare)) => (
                    Ok(("capture".to_string(), JobInput::Capture(session))),
                    spare,
                ),
                Err((why, spare)) => (Err(why), spare),
            };
            self.buffers.put(spare);
            parsed
        }
    }

    fn parse_car_json(&self, buf: &[u8]) -> Result<(String, JobInput), String> {
        let text = std::str::from_utf8(buf).map_err(|_| "job body is not UTF-8".to_string())?;
        let doc = json::parse(text).map_err(|e| format!("malformed job JSON: {e}"))?;
        let Value::Object(entries) = doc else {
            return Err("job JSON must be an object like {\"car\":\"M\"}".to_string());
        };
        let car = entries
            .iter()
            .find(|(k, _)| k == "car")
            .map(|(_, v)| v.clone());
        let Some(Value::Str(car)) = car else {
            return Err("job JSON must carry a \"car\" string".to_string());
        };
        if !self.analyzer.knows_car(&car) {
            return Err(format!("unknown car profile {car:?}"));
        }
        Ok((format!("car:{car}"), JobInput::Car(car)))
    }

    fn status(&self, external: &str, conn: &mut Conn<'_>) -> io::Result<()> {
        match self.store.status(external) {
            Some(status) => {
                let body =
                    json::to_string(&status).unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"));
                conn.respond("200 OK", "application/json", &body)
            }
            None => conn.respond(
                "404 Not Found",
                "text/plain",
                &format!("unknown job {external:?}\n"),
            ),
        }
    }

    fn list(&self, conn: &mut Conn<'_>) -> io::Result<()> {
        let body = json::to_string(&self.store.statuses())
            .unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"));
        conn.respond("200 OK", "application/json", &body)
    }

    fn result(&self, external: &str, conn: &mut Conn<'_>) -> io::Result<()> {
        match self.store.result(external) {
            ResultLookup::Done(canonical) => {
                conn.respond("200 OK", "application/json", &canonical)
            }
            ResultLookup::Failed(error) => conn.respond(
                "500 Internal Server Error",
                "text/plain",
                &format!("job failed: {error}\n"),
            ),
            ResultLookup::Pending(state) => conn.respond(
                "202 Accepted",
                "text/plain",
                &format!("job is {state}; poll again\n"),
            ),
            ResultLookup::Unknown => conn.respond(
                "404 Not Found",
                "text/plain",
                &format!("unknown job {external:?}\n"),
            ),
        }
    }
}

/// The shared `429` answer: retriable, and carrying the request's
/// correlation id so a shed submission is attributable in the logs.
fn reject_full(conn: &mut Conn<'_>) -> io::Result<()> {
    let body = format!(
        "{{\"error\":\"job queue is full, retry shortly\",\"req_id\":\"{}\"}}\n",
        conn.req_id()
    );
    conn.respond_with(
        "429 Too Many Requests",
        "application/json",
        &["Retry-After: 1"],
        &body,
    )
}

/// A parsed capture (or the reason it failed to parse); either way the
/// pooled read buffer rides along so the caller can return it.
type ParsedCapture = Result<(Box<dpr_capture::CaptureSession>, Vec<u8>), (String, Vec<u8>)>;

/// Streams a capture body through [`CaptureReader`] using `buf` as the
/// reader's internal buffer; hands the buffer back in both outcomes.
fn parse_capture<R: Read>(src: R, buf: Vec<u8>) -> ParsedCapture {
    match CaptureReader::with_buffer(src, buf) {
        Ok(reader) => {
            let (session, _stats, buf) = reader.read_session_reusing();
            Ok((Box::new(session), buf))
        }
        // The header check reads only a few bytes; the buffer it used
        // is lost to the error path, so hand back an empty one.
        Err(e) => Err((format!("not a readable capture: {e}"), Vec::new())),
    }
}

impl HttpHandler for ServiceRouter {
    fn handle(&self, head: &RequestHead, conn: &mut Conn<'_>) -> io::Result<()> {
        let path = head.path();
        if path == "/jobs" {
            return match head.method.as_str() {
                "POST" => self.submit(head, conn),
                "GET" => self.list(conn),
                _ => conn.respond(
                    "405 Method Not Allowed",
                    "text/plain",
                    "use POST to submit or GET to list\n",
                ),
            };
        }
        if let Some(rest) = path.strip_prefix("/jobs/") {
            if head.method != "GET" {
                return conn.respond("405 Method Not Allowed", "text/plain", "GET only\n");
            }
            if let Some(id) = rest.strip_suffix("/events") {
                return self.events(id, conn);
            }
            return match rest.strip_suffix("/result") {
                Some(id) => self.result(id, conn),
                None => self.status(rest, conn),
            };
        }
        if path == "/healthz" || path == "/debug/snapshot" {
            if head.method != "GET" {
                return conn.respond("405 Method Not Allowed", "text/plain", "GET only\n");
            }
            return if path == "/healthz" {
                self.healthz(conn)
            } else {
                self.snapshot(conn)
            };
        }
        if self.obs.try_route(head, conn)? {
            return Ok(());
        }
        conn.respond(
            "404 Not Found",
            "text/plain",
            &format!("routes: {SERVE_ROUTES} — plus {OBS_ROUTES}\n"),
        )
    }
}

impl std::fmt::Debug for ServiceRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceRouter")
            .field("store", &self.store)
            .field("max_body", &self.max_body)
            .finish()
    }
}
