//! The analysis worker pool: a fixed set of threads draining the
//! [`JobStore`] FIFO.
//!
//! Each job runs against its own fresh [`Registry`] (scoped
//! thread-locally for the duration of the analysis) so pipeline
//! counters never bleed between concurrent jobs, with the job's
//! [`StageProgress`] attached as a span sink — that is where the live
//! per-stage progress reported by `GET /jobs/<id>` comes from. Results
//! publish to the shared run store (evidence chains) and latest-trace
//! cell, exactly as a direct `dpr-bench` run would.
//!
//! Correlation: the worker pushes `job_id` onto its `dpr-log` context
//! for the duration of the job (the pipeline's stage logs, and —
//! through `dpr-par`'s context inheritance — records from pool worker
//! threads all carry it), registers a log tap that mirrors the job's
//! records onto its [`EventHub`](crate::jobs::EventHub) stream, stamps
//! the published [`PipelineTrace`](dpr_telemetry::PipelineTrace) with
//! the job id, and publishes the run with the job attached.

use crate::jobs::{EventHub, JobStore, StageLine, WorkerHealth};
use crate::Analyzer;
use dpr_log::{FieldValue, LogSink, Record};
use dpr_obs::{SharedRuns, SharedTrace};
use dpr_telemetry::Registry;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

/// Mirrors this job's structured log records onto its event stream:
/// any record whose (context-supplied) `job_id` field matches becomes
/// a `log` event carrying the full JSON line.
struct JobLogTap {
    job: String,
    events: Arc<EventHub>,
}

impl LogSink for JobLogTap {
    fn record(&self, record: &Arc<Record>) {
        let ours = matches!(
            record.field("job_id"),
            Some(FieldValue::Str(id)) if *id == self.job
        );
        if ours {
            self.events.push("log", &record.target, &record.to_json());
        }
    }
}

/// One worker thread's life: block on the queue, analyze, publish,
/// repeat — until the store drains and `take_next` returns `None`.
pub(crate) fn run_worker(
    slot: usize,
    store: Arc<JobStore>,
    analyzer: Arc<dyn Analyzer>,
    service_registry: Arc<Registry>,
    trace: SharedTrace,
    runs: SharedRuns,
    health: Arc<WorkerHealth>,
) {
    while let Some((id, input, progress, events)) = store.take_next() {
        health.beat(slot, "running");
        let external = format!("job-{id}");
        let _job_ctx = dpr_log::push_context("job_id", external.as_str());
        dpr_log::info("serve.job", "job started", &[]);
        let tap = dpr_log::add_sink(Arc::new(JobLogTap {
            job: external.clone(),
            events,
        }) as Arc<dyn LogSink>);
        // A registry per job: the pipeline's own counters and spans are
        // job-local, and the progress sink sees only this job's stages.
        let job_registry = Arc::new(Registry::new());
        job_registry.add_sink(progress as _);
        let outcome = dpr_telemetry::scoped(Arc::clone(&job_registry), || {
            panic::catch_unwind(AssertUnwindSafe(|| analyzer.analyze(input)))
        });
        match outcome {
            Ok(Ok(result)) => {
                let canonical = result.canonical_json();
                let stages = result
                    .trace
                    .stages
                    .iter()
                    .map(|s| StageLine {
                        name: s.name.clone(),
                        wall_us: s.wall_us,
                    })
                    .collect();
                let wall_us = result.trace.total_us;
                let at_ms = std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_millis() as u64)
                    .unwrap_or(0);
                // Publish under the service registry so bookkeeping
                // like `runs.evicted` lands on `/metrics`, not in the
                // throwaway job registry.
                let run_id = dpr_telemetry::scoped(Arc::clone(&service_registry), || {
                    runs.lock()
                        .publish_for(at_ms, Some(external.clone()), result.evidence.clone())
                });
                // The served trace carries the job id; the job's own
                // canonical result stays byte-identical to a direct
                // pipeline run.
                let mut published = result.trace.clone();
                published.job_id = Some(external.clone());
                *trace.lock() = Some(published);
                service_registry.histogram("jobs.run_us").record(wall_us as f64);
                dpr_log::info(
                    "serve.job",
                    "run published",
                    &[
                        ("run_id", run_id.as_str().into()),
                        ("wall_us", wall_us.into()),
                    ],
                );
                dpr_log::remove_sink(tap);
                store.complete(id, run_id, canonical, stages, wall_us);
            }
            Ok(Err(error)) => {
                dpr_log::warn("serve.job", "job failed", &[("error", error.as_str().into())]);
                dpr_log::remove_sink(tap);
                store.fail(id, error);
            }
            Err(panic) => {
                let what = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "analysis panicked".to_string());
                dpr_log::warn("serve.job", "job failed", &[("error", what.as_str().into())]);
                dpr_log::remove_sink(tap);
                store.fail(id, format!("analysis panicked: {what}"));
            }
        }
        health.beat(slot, "idle");
    }
}
