//! The analysis worker pool: a fixed set of threads draining the
//! [`JobStore`] FIFO.
//!
//! Each job runs against its own fresh [`Registry`] (scoped
//! thread-locally for the duration of the analysis) so pipeline
//! counters never bleed between concurrent jobs, with the job's
//! [`StageProgress`] attached as a span sink — that is where the live
//! per-stage progress reported by `GET /jobs/<id>` comes from. Results
//! publish to the shared run store (evidence chains) and latest-trace
//! cell, exactly as a direct `dpr-bench` run would.

use crate::jobs::{JobStore, StageLine};
use crate::Analyzer;
use dpr_obs::{SharedRuns, SharedTrace};
use dpr_telemetry::Registry;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

/// One worker thread's life: block on the queue, analyze, publish,
/// repeat — until the store drains and `take_next` returns `None`.
pub(crate) fn run_worker(
    store: Arc<JobStore>,
    analyzer: Arc<dyn Analyzer>,
    service_registry: Arc<Registry>,
    trace: SharedTrace,
    runs: SharedRuns,
) {
    while let Some((id, input, progress)) = store.take_next() {
        // A registry per job: the pipeline's own counters and spans are
        // job-local, and the progress sink sees only this job's stages.
        let job_registry = Arc::new(Registry::new());
        job_registry.add_sink(progress as _);
        let outcome = dpr_telemetry::scoped(Arc::clone(&job_registry), || {
            panic::catch_unwind(AssertUnwindSafe(|| analyzer.analyze(input)))
        });
        match outcome {
            Ok(Ok(result)) => {
                let canonical = result.canonical_json();
                let stages = result
                    .trace
                    .stages
                    .iter()
                    .map(|s| StageLine {
                        name: s.name.clone(),
                        wall_us: s.wall_us,
                    })
                    .collect();
                let wall_us = result.trace.total_us;
                let at_ms = std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_millis() as u64)
                    .unwrap_or(0);
                // Publish under the service registry so bookkeeping
                // like `runs.evicted` lands on `/metrics`, not in the
                // throwaway job registry.
                let run_id = dpr_telemetry::scoped(Arc::clone(&service_registry), || {
                    runs.lock().publish(at_ms, result.evidence.clone())
                });
                *trace.lock() = Some(result.trace.clone());
                service_registry.histogram("jobs.run_us").record(wall_us as f64);
                store.complete(id, run_id, canonical, stages, wall_us);
            }
            Ok(Err(error)) => store.fail(id, error),
            Err(panic) => {
                let what = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "analysis panicked".to_string());
                store.fail(id, format!("analysis panicked: {what}"));
            }
        }
    }
}
