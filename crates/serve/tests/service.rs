//! End-to-end tests of the analysis service over real `TcpStream`s:
//! byte-identity between the HTTP job path and a direct
//! `analyze_capture` call, observable backpressure, graceful failure
//! handling, and the HTTP parsing edge cases a hostile or unlucky
//! client can produce.

use dp_reverser::{CaptureReader, CaptureWriter, DpReverser, PipelineConfig};
use dpr_can::Micros;
use dpr_capture::record_report;
use dpr_cps::{collect_vehicle, CollectConfig, CollectionReport};
use dpr_frames::Scheme;
use dpr_serve::{
    AnalysisService, Analyzer, JobInput, JobStatus, ServiceConfig, SubmitResponse,
};
use dpr_telemetry::json;
use dpr_tool::{ToolProfile, ToolSession};
use dpr_vehicle::profiles::{self, CarId};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

const SEED: u64 = 5;

fn quick_collect(id: CarId, seed: u64) -> CollectionReport {
    let car = profiles::build(id, seed);
    let spec = profiles::spec(id);
    let session = ToolSession::new(car, ToolProfile::by_name(spec.tool).unwrap());
    collect_vehicle(
        session,
        &CollectConfig {
            read_wait: Micros::from_secs(4),
            ..CollectConfig::default()
        },
    )
    .unwrap()
}

fn capture_bytes(report: &CollectionReport) -> Vec<u8> {
    let mut writer = CaptureWriter::new(Vec::new()).unwrap();
    writer.write_meta("car", "M").unwrap();
    record_report(report, &mut writer).unwrap();
    writer.finish().unwrap()
}

/// The production-shaped analyzer: replays uploaded captures and
/// collects-then-analyzes the one car profile it knows, always through
/// the same fixed pipeline config so results are deterministic.
struct ReplayAnalyzer {
    seed: u64,
}

impl Analyzer for ReplayAnalyzer {
    fn analyze(&self, input: JobInput) -> Result<dp_reverser::ReverseEngineeringResult, String> {
        let pipeline = DpReverser::new(PipelineConfig::fast(Scheme::IsoTp, self.seed));
        match input {
            JobInput::Capture(session) => Ok(pipeline.analyze_replay(&session)),
            JobInput::Car(name) => {
                if name != "M" {
                    return Err(format!("unknown car {name:?}"));
                }
                let report = quick_collect(CarId::M, self.seed);
                Ok(pipeline.analyze(&report.log, &report.frames, Some(&report.execution)))
            }
        }
    }

    fn knows_car(&self, name: &str) -> bool {
        name == "M"
    }
}

/// An analyzer that parks on a gate until the test releases it — lets a
/// test hold the worker pool busy and fill the queue deterministically.
struct BlockingAnalyzer {
    gate: Arc<(Mutex<bool>, Condvar)>,
}

impl BlockingAnalyzer {
    fn new() -> (Arc<(Mutex<bool>, Condvar)>, BlockingAnalyzer) {
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let analyzer = BlockingAnalyzer {
            gate: Arc::clone(&gate),
        };
        (gate, analyzer)
    }
}

impl Analyzer for BlockingAnalyzer {
    fn analyze(&self, _input: JobInput) -> Result<dp_reverser::ReverseEngineeringResult, String> {
        let (lock, cvar) = &*self.gate;
        let mut released = lock.lock().unwrap();
        while !*released {
            released = cvar.wait(released).unwrap();
        }
        Err("released without a result".to_string())
    }
}

fn release(gate: &Arc<(Mutex<bool>, Condvar)>) {
    let (lock, cvar) = &**gate;
    *lock.lock().unwrap() = true;
    cvar.notify_all();
}

/// Releases the gate when dropped, so a failing assertion unwinds
/// cleanly instead of deadlocking the service's drain-on-drop against
/// a worker still parked in [`BlockingAnalyzer::analyze`].
struct ReleaseOnDrop(Arc<(Mutex<bool>, Condvar)>);

impl Drop for ReleaseOnDrop {
    fn drop(&mut self) {
        release(&self.0);
    }
}

/// Sends raw bytes, half-closes the write side, and reads the whole
/// response. One request per connection is the service's contract.
fn send_raw(addr: SocketAddr, data: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    stream.write_all(data).unwrap();
    let _ = stream.shutdown(Shutdown::Write);
    let mut out = Vec::new();
    stream.read_to_end(&mut out).unwrap();
    String::from_utf8_lossy(&out).into_owned()
}

fn split_response(raw: &str) -> (String, String) {
    match raw.split_once("\r\n\r\n") {
        Some((head, body)) => (head.to_string(), body.to_string()),
        None => (raw.to_string(), String::new()),
    }
}

fn get(addr: SocketAddr, path: &str) -> (String, String) {
    let req = format!("GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n");
    split_response(&send_raw(addr, req.as_bytes()))
}

fn post(addr: SocketAddr, path: &str, body: &[u8]) -> (String, String) {
    let mut req = format!(
        "POST {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )
    .into_bytes();
    req.extend_from_slice(body);
    split_response(&send_raw(addr, &req))
}

fn submit(addr: SocketAddr, body: &[u8]) -> SubmitResponse {
    let (head, body) = post(addr, "/jobs", body);
    assert!(head.starts_with("HTTP/1.1 202"), "{head}\n{body}");
    json::from_str(&body).unwrap()
}

fn wait_for(addr: SocketAddr, job: &str, want: &str) -> JobStatus {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (head, body) = get(addr, &format!("/jobs/{job}"));
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        let status: JobStatus = json::from_str(&body).unwrap();
        if status.state == want {
            return status;
        }
        assert!(
            !(status.state == "failed" && want == "done"),
            "job {job} failed: {:?}",
            status.error
        );
        assert!(
            Instant::now() < deadline,
            "job {job} stuck in {:?} waiting for {want:?}",
            status.state
        );
        std::thread::sleep(Duration::from_millis(30));
    }
}

#[test]
fn http_submitted_capture_matches_direct_analysis_byte_for_byte() {
    let report = quick_collect(CarId::M, SEED);
    let bytes = capture_bytes(&report);

    // The ground truth: the same capture analyzed directly, in-process.
    let pipeline = DpReverser::new(PipelineConfig::fast(Scheme::IsoTp, SEED));
    let direct = pipeline.analyze_capture(CaptureReader::new(bytes.as_slice()).unwrap());
    let expected = direct.canonical_json();

    let service = AnalysisService::start(
        "127.0.0.1:0",
        ServiceConfig::default(),
        Arc::new(ReplayAnalyzer { seed: SEED }),
    )
    .unwrap();
    let addr = service.addr();

    let accepted = submit(addr, &bytes);
    assert_eq!(accepted.poll, format!("/jobs/{}", accepted.job));

    let status = wait_for(addr, &accepted.job, "done");
    assert_eq!(status.source, "capture");
    for stage in ["transport", "ocr", "association", "inference"] {
        assert!(
            status.stages_done.iter().any(|s| s == stage),
            "stage {stage} missing from progress: {:?}",
            status.stages_done
        );
    }
    assert!(!status.stages.is_empty(), "final stage timings missing");
    assert!(status.wall_us.is_some());
    let run_id = status.run_id.clone().expect("done job published a run");

    // The service's result is the direct result, to the byte.
    let (head, body) = get(addr, &format!("/jobs/{}/result", accepted.job));
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_eq!(body, expected, "service result diverged from direct analysis");

    // The published run is reachable through the obs routes: listed at
    // /runs, every chain served at /evidence/<sensor>.
    let (head, runs_body) = get(addr, "/runs");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(runs_body.contains(&run_id), "run {run_id} not in {runs_body}");
    let sensors = service.runs().lock().known_sensors();
    assert!(!sensors.is_empty(), "a recovered run lists its sensors");
    for slug in &sensors {
        let (head, chain) = get(addr, &format!("/evidence/{slug}"));
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(chain.contains(slug));
    }

    // And the service's own metrics taxonomy is live on /metrics.
    let (_, metrics) = get(addr, "/metrics");
    for metric in ["jobs_submitted 1", "jobs_completed 1", "serve_requests"] {
        assert!(metrics.contains(metric), "{metric} missing:\n{metrics}");
    }

    service.stop();
}

#[test]
fn car_profile_job_runs_the_named_collection() {
    let pipeline = DpReverser::new(PipelineConfig::fast(Scheme::IsoTp, SEED));
    let report = quick_collect(CarId::M, SEED);
    let expected = pipeline
        .analyze(&report.log, &report.frames, Some(&report.execution))
        .canonical_json();

    let service = AnalysisService::start(
        "127.0.0.1:0",
        ServiceConfig::default(),
        Arc::new(ReplayAnalyzer { seed: SEED }),
    )
    .unwrap();
    let addr = service.addr();

    let accepted = submit(addr, b"{\"car\":\"M\"}");
    let status = wait_for(addr, &accepted.job, "done");
    assert_eq!(status.source, "car:M");
    let (head, body) = get(addr, &format!("/jobs/{}/result", accepted.job));
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_eq!(body, expected);

    // An unknown profile is rejected at submit time, not failed later.
    let (head, body) = post(addr, "/jobs", b"{\"car\":\"Z\"}");
    assert!(head.starts_with("HTTP/1.1 400"), "{head}");
    assert!(body.contains("unknown car profile"), "{body}");

    service.stop();
}

#[test]
fn full_queue_answers_429_with_retry_after_before_reading_the_body() {
    let (gate, analyzer) = BlockingAnalyzer::new();
    let config = ServiceConfig {
        analysis_workers: 1,
        queue_capacity: 1,
        ..ServiceConfig::default()
    };
    let service = AnalysisService::start("127.0.0.1:0", config, Arc::new(analyzer)).unwrap();
    let _open_gate_on_panic = ReleaseOnDrop(Arc::clone(&gate));
    let addr = service.addr();

    // Job 1 occupies the only worker; job 2 fills the only queue slot.
    let first = submit(addr, b"{\"car\":\"M\"}");
    wait_for(addr, &first.job, "running");
    let second = submit(addr, b"{\"car\":\"M\"}");
    assert_eq!(service.store().queue_len(), 1);

    // Submission 3 declares a large body but sends ONLY the head. The
    // 429 must come back anyway — the service answers a full queue
    // without reading (or waiting for) a single body byte.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream
        .write_all(
            b"POST /jobs HTTP/1.1\r\nHost: test\r\nContent-Length: 1000000\r\n\r\n",
        )
        .unwrap();
    let started = Instant::now();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let (head, _) = split_response(&String::from_utf8_lossy(&raw));
    assert!(head.starts_with("HTTP/1.1 429"), "{head}");
    assert!(head.contains("Retry-After: 1"), "{head}");
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "429 took {:?} — the server waited for body bytes",
        started.elapsed()
    );
    drop(stream);

    assert_eq!(service.registry().counter("jobs.rejected").get(), 1);
    assert_eq!(service.registry().counter("jobs.submitted").get(), 2);

    // Releasing the gate drains the backlog; both jobs finish (failed,
    // by the blocking analyzer's contract) and their status is served.
    release(&gate);
    let status = wait_for(addr, &second.job, "failed");
    assert!(status.error.is_some());
    let (head, body) = get(addr, &format!("/jobs/{}/result", second.job));
    assert!(head.starts_with("HTTP/1.1 500"), "{head}");
    assert!(body.contains("released without a result"), "{body}");

    service.stop();
}

#[test]
fn submit_rejects_bad_lengths_before_reading_bodies() {
    let service = AnalysisService::start(
        "127.0.0.1:0",
        ServiceConfig {
            max_body_bytes: 1024,
            ..ServiceConfig::default()
        },
        Arc::new(ReplayAnalyzer { seed: SEED }),
    )
    .unwrap();
    let addr = service.addr();

    // Over the cap: 413, before any body byte is sent.
    let raw = send_raw(
        addr,
        b"POST /jobs HTTP/1.1\r\nHost: test\r\nContent-Length: 99999\r\n\r\n",
    );
    assert!(raw.starts_with("HTTP/1.1 413"), "{raw}");

    // No length at all: 411.
    let raw = send_raw(addr, b"POST /jobs HTTP/1.1\r\nHost: test\r\n\r\n");
    assert!(raw.starts_with("HTTP/1.1 411"), "{raw}");

    // Unparseable length: 400.
    let raw = send_raw(
        addr,
        b"POST /jobs HTTP/1.1\r\nHost: test\r\nContent-Length: banana\r\n\r\n",
    );
    assert!(raw.starts_with("HTTP/1.1 400"), "{raw}");

    // Zero-length body: 400.
    let (head, _) = post(addr, "/jobs", b"");
    assert!(head.starts_with("HTTP/1.1 400"), "{head}");

    service.stop();
}

#[test]
fn http_edge_cases_do_not_wedge_the_service() {
    let config = ServiceConfig {
        server: dpr_obs::ServerConfig {
            read_timeout: Duration::from_millis(250),
            ..dpr_obs::ServerConfig::default()
        },
        ..ServiceConfig::default()
    };
    let service =
        AnalysisService::start("127.0.0.1:0", config, Arc::new(ReplayAnalyzer { seed: SEED }))
            .unwrap();
    let addr = service.addr();

    // A torn request head: the client stalls mid-request-line. The
    // server times the read out (408) instead of wedging a handler.
    let mut torn = TcpStream::connect(addr).unwrap();
    torn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    torn.write_all(b"GET /hea").unwrap();
    let mut raw = Vec::new();
    torn.read_to_end(&mut raw).unwrap();
    let raw = String::from_utf8_lossy(&raw);
    assert!(
        raw.is_empty() || raw.starts_with("HTTP/1.1 408"),
        "torn head got: {raw}"
    );

    // Premature close mid-body: a valid capture header, a declared
    // length the client never delivers. The parse survives (the reader
    // is corruption tolerant) but the job is refused as a client error.
    let empty_capture = CaptureWriter::new(Vec::new()).unwrap().finish().unwrap();
    let mut req = format!(
        "POST /jobs HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n",
        empty_capture.len() as u64 + 100_000
    )
    .into_bytes();
    req.extend_from_slice(&empty_capture);
    let raw = send_raw(addr, &req);
    assert!(raw.starts_with("HTTP/1.1 400"), "{raw}");
    assert!(raw.contains("before the declared body length"), "{raw}");

    // A body that is neither JSON nor a capture: 400, not a panic.
    let (head, body) = post(addr, "/jobs", b"this is not a capture at all");
    assert!(head.starts_with("HTTP/1.1 400"), "{head}");
    assert!(body.contains("not a readable capture"), "{body}");

    // A pipelined second request on a one-request connection: exactly
    // one response, then the connection closes cleanly.
    let raw = send_raw(
        addr,
        b"GET /healthz HTTP/1.1\r\nHost: test\r\n\r\nGET /metrics HTTP/1.1\r\nHost: test\r\n\r\n",
    );
    assert_eq!(
        raw.matches("HTTP/1.1 ").count(),
        1,
        "pipelining must yield exactly one response: {raw}"
    );
    assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");

    // Unknown jobs and unknown routes answer, with the route list on
    // the latter; the service is still healthy afterwards.
    let (head, _) = get(addr, "/jobs/job-999");
    assert!(head.starts_with("HTTP/1.1 404"), "{head}");
    let (head, body) = get(addr, "/nope");
    assert!(head.starts_with("HTTP/1.1 404"), "{head}");
    assert!(body.contains("POST /jobs"), "{body}");
    let (head, _) = get(addr, "/healthz");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");

    service.stop();
}

#[test]
fn stopping_the_service_drains_queued_jobs() {
    let (gate, analyzer) = BlockingAnalyzer::new();
    let config = ServiceConfig {
        analysis_workers: 1,
        queue_capacity: 4,
        ..ServiceConfig::default()
    };
    let service = AnalysisService::start("127.0.0.1:0", config, Arc::new(analyzer)).unwrap();
    let _open_gate_on_panic = ReleaseOnDrop(Arc::clone(&gate));
    let addr = service.addr();

    submit(addr, b"{\"car\":\"M\"}");
    submit(addr, b"{\"car\":\"M\"}");
    submit(addr, b"{\"car\":\"M\"}");
    let store = Arc::clone(service.store());

    // Release the gate from a helper thread shortly after stop()
    // begins its drain, then stop: every queued job must still run.
    let releaser = std::thread::spawn({
        let gate = Arc::clone(&gate);
        move || {
            std::thread::sleep(Duration::from_millis(100));
            release(&gate);
        }
    });
    service.stop();
    releaser.join().unwrap();

    for id in ["job-1", "job-2", "job-3"] {
        let status = store.status(id).unwrap();
        assert_eq!(status.state, "failed", "{id} was dropped in the drain");
    }
}
