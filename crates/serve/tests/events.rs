//! Edge cases of the `GET /jobs/<id>/events` live stream, over real
//! `TcpStream`s: a subscriber that arrives after the job finished, a
//! client that disconnects mid-stream (the worker must never notice),
//! and two concurrent subscribers seeing identical sequences.

use dpr_serve::{AnalysisService, Analyzer, JobEvent, JobInput, ServiceConfig, SubmitResponse};
use dpr_telemetry::json;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Fails every job immediately — the cheapest way to drive a full
/// queued → running → failed lifecycle.
struct FailingAnalyzer;

impl Analyzer for FailingAnalyzer {
    fn analyze(&self, _input: JobInput) -> Result<dp_reverser::ReverseEngineeringResult, String> {
        Err("synthetic failure".to_string())
    }
}

/// Parks on a gate until the test releases it (copied from the service
/// tests — each integration test binary is standalone).
struct BlockingAnalyzer {
    gate: Arc<(Mutex<bool>, Condvar)>,
}

impl BlockingAnalyzer {
    fn new() -> (Arc<(Mutex<bool>, Condvar)>, BlockingAnalyzer) {
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let analyzer = BlockingAnalyzer {
            gate: Arc::clone(&gate),
        };
        (gate, analyzer)
    }
}

impl Analyzer for BlockingAnalyzer {
    fn analyze(&self, _input: JobInput) -> Result<dp_reverser::ReverseEngineeringResult, String> {
        let (lock, cvar) = &*self.gate;
        let mut released = lock.lock().unwrap();
        while !*released {
            released = cvar.wait(released).unwrap();
        }
        Err("released without a result".to_string())
    }
}

fn release(gate: &Arc<(Mutex<bool>, Condvar)>) {
    let (lock, cvar) = &**gate;
    *lock.lock().unwrap() = true;
    cvar.notify_all();
}

struct ReleaseOnDrop(Arc<(Mutex<bool>, Condvar)>);

impl Drop for ReleaseOnDrop {
    fn drop(&mut self) {
        release(&self.0);
    }
}

fn send_raw(addr: SocketAddr, data: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    stream.write_all(data).unwrap();
    let mut out = Vec::new();
    stream.read_to_end(&mut out).unwrap();
    String::from_utf8_lossy(&out).into_owned()
}

fn get(addr: SocketAddr, path: &str) -> (String, String) {
    let req = format!("GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n");
    let raw = send_raw(addr, req.as_bytes());
    match raw.split_once("\r\n\r\n") {
        Some((head, body)) => (head.to_string(), body.to_string()),
        None => (raw, String::new()),
    }
}

fn submit_car(addr: SocketAddr) -> String {
    let body = b"{\"car\":\"M\"}";
    let req = format!(
        "POST /jobs HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let mut data = req.into_bytes();
    data.extend_from_slice(body);
    let raw = send_raw(addr, &data);
    let (head, body) = raw.split_once("\r\n\r\n").unwrap();
    assert!(head.starts_with("HTTP/1.1 202"), "{head}");
    let accepted: SubmitResponse = json::from_str(body).unwrap();
    accepted.job
}

fn wait_state(addr: SocketAddr, job: &str, want: &str) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (head, body) = get(addr, &format!("/jobs/{job}"));
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        if body.contains(&format!("\"state\":\"{want}\"")) {
            return;
        }
        assert!(Instant::now() < deadline, "{job} never reached {want}: {body}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Removes HTTP/1.1 chunked framing, returning the reassembled body.
fn dechunk(body: &str) -> String {
    let mut out = String::new();
    let mut rest = body;
    loop {
        let Some((size_line, after)) = rest.split_once("\r\n") else {
            return out;
        };
        let Ok(size) = usize::from_str_radix(size_line.trim(), 16) else {
            return out;
        };
        if size == 0 || after.len() < size {
            return out;
        }
        out.push_str(&after[..size]);
        rest = after[size..].strip_prefix("\r\n").unwrap_or(&after[size..]);
    }
}

/// Streams `/jobs/<id>/events` to EOF, returning the parsed events
/// (keepalive blank lines skipped).
fn read_events(addr: SocketAddr, job: &str) -> Vec<JobEvent> {
    let (head, body) = get(addr, &format!("/jobs/{job}/events"));
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(head.contains("Transfer-Encoding: chunked"), "{head}");
    parse_events(&dechunk(&body))
}

fn parse_events(ndjson: &str) -> Vec<JobEvent> {
    ndjson
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| json::from_str::<JobEvent>(l).unwrap_or_else(|e| panic!("{e}: {l}")))
        .collect()
}

fn states(events: &[JobEvent]) -> Vec<&str> {
    events
        .iter()
        .filter(|e| e.kind == "state")
        .map(|e| e.what.as_str())
        .collect()
}

#[test]
fn late_subscriber_gets_history_terminal_event_and_eof() {
    let service = AnalysisService::start(
        "127.0.0.1:0",
        ServiceConfig::default(),
        Arc::new(FailingAnalyzer),
    )
    .unwrap();
    let addr = service.addr();

    let job = submit_car(addr);
    wait_state(addr, &job, "failed");

    // Connecting *after* completion: the replay history (all three
    // lifecycle transitions), then an immediate end-of-stream. The
    // deadline proves EOF, not keepalive limbo.
    let started = Instant::now();
    let events = read_events(addr, &job);
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "late subscriber hung instead of getting EOF"
    );
    assert_eq!(states(&events), vec!["queued", "running", "failed"]);
    let failed = events
        .iter()
        .find(|e| e.kind == "state" && e.what == "failed")
        .unwrap();
    assert!(failed.detail.contains("synthetic failure"), "{failed:?}");
    // Seqs are the hub's, strictly increasing from 0.
    for (i, event) in events.iter().enumerate() {
        assert_eq!(event.seq, i as u64, "gap in replayed sequence: {events:?}");
    }

    // An unknown job is a plain 404, not an empty stream.
    let (head, _) = get(addr, "/jobs/job-999/events");
    assert!(head.starts_with("HTTP/1.1 404"), "{head}");

    service.stop();
}

#[test]
fn mid_stream_disconnect_never_blocks_the_worker() {
    let (gate, analyzer) = BlockingAnalyzer::new();
    let service = AnalysisService::start(
        "127.0.0.1:0",
        ServiceConfig {
            analysis_workers: 1,
            ..ServiceConfig::default()
        },
        Arc::new(analyzer),
    )
    .unwrap();
    let _open_gate_on_panic = ReleaseOnDrop(Arc::clone(&gate));
    let addr = service.addr();

    let job = submit_car(addr);
    wait_state(addr, &job, "running");

    // Subscribe and read just past the `running` event, then hang up
    // with the job still in flight.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(
        stream,
        "GET /jobs/{job}/events HTTP/1.1\r\nHost: test\r\n\r\n"
    )
    .unwrap();
    let mut seen = Vec::new();
    let mut chunk = [0u8; 1024];
    while !String::from_utf8_lossy(&seen).contains("\"running\"") {
        let n = stream.read(&mut chunk).unwrap();
        assert!(n > 0, "stream closed before the running event");
        seen.extend_from_slice(&chunk[..n]);
    }
    drop(stream);

    // The worker is still parked on the gate; releasing it must finish
    // the job promptly — a blocked hub push would hang this wait.
    release(&gate);
    wait_state(addr, &job, "failed");

    // And the stream is still subscribable afterwards.
    let events = read_events(addr, &job);
    assert_eq!(states(&events), vec!["queued", "running", "failed"]);

    service.stop();
}

#[test]
fn concurrent_subscribers_see_identical_sequences() {
    let (gate, analyzer) = BlockingAnalyzer::new();
    let service = AnalysisService::start(
        "127.0.0.1:0",
        ServiceConfig {
            analysis_workers: 1,
            ..ServiceConfig::default()
        },
        Arc::new(analyzer),
    )
    .unwrap();
    let _open_gate_on_panic = ReleaseOnDrop(Arc::clone(&gate));
    let addr = service.addr();

    let job = submit_car(addr);
    wait_state(addr, &job, "running");

    // Two live subscribers attach mid-job…
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let job = job.clone();
            std::thread::spawn(move || read_events(addr, &job))
        })
        .collect();
    // …with time to connect and drain the history before the end.
    std::thread::sleep(Duration::from_millis(300));
    release(&gate);

    let sequences: Vec<Vec<JobEvent>> = readers
        .into_iter()
        .map(|h| h.join().expect("subscriber thread"))
        .collect();
    assert_eq!(
        sequences[0], sequences[1],
        "subscribers diverged on one job's stream"
    );
    assert_eq!(states(&sequences[0]), vec!["queued", "running", "failed"]);

    service.stop();
}
