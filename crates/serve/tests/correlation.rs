//! The acceptance story for correlated observability, over real
//! `TcpStream`s: submit a job, tail `GET /jobs/<id>/events` live while
//! it runs, and afterwards check that the streamed events, the global
//! log ring, the `DPR_LOG_JSON` file, and the job's `PipelineTrace` all
//! tell the *same* story for one `job_id` — request arrival, queueing,
//! stage transitions, result publish.
//!
//! Single `#[test]` on purpose: it points the global logger's JSON sink
//! at a temp file, which sibling tests in this binary would race on.

use dp_reverser::{DpReverser, PipelineConfig};
use dpr_can::Micros;
use dpr_cps::{collect_vehicle, CollectConfig, CollectionReport};
use dpr_frames::Scheme;
use dpr_log::FieldValue;
use dpr_serve::{
    AnalysisService, Analyzer, JobEvent, JobInput, JobStatus, ServiceConfig, SubmitResponse,
    STAGE_NAMES,
};
use dpr_telemetry::json;
use dpr_tool::{ToolProfile, ToolSession};
use dpr_vehicle::profiles::{self, CarId};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn quick_collect(id: CarId, seed: u64) -> CollectionReport {
    let car = profiles::build(id, seed);
    let spec = profiles::spec(id);
    let session = ToolSession::new(car, ToolProfile::by_name(spec.tool).unwrap());
    collect_vehicle(
        session,
        &CollectConfig {
            read_wait: Micros::from_secs(4),
            ..CollectConfig::default()
        },
    )
    .unwrap()
}

struct ReplayAnalyzer {
    seed: u64,
}

impl Analyzer for ReplayAnalyzer {
    fn analyze(&self, input: JobInput) -> Result<dp_reverser::ReverseEngineeringResult, String> {
        let pipeline = DpReverser::new(PipelineConfig::fast(Scheme::IsoTp, self.seed));
        match input {
            JobInput::Capture(session) => Ok(pipeline.analyze_replay(&session)),
            JobInput::Car(name) => {
                if name != "M" {
                    return Err(format!("unknown car {name:?}"));
                }
                let report = quick_collect(CarId::M, self.seed);
                Ok(pipeline.analyze(&report.log, &report.frames, Some(&report.execution)))
            }
        }
    }

    fn knows_car(&self, name: &str) -> bool {
        name == "M"
    }
}

fn send_raw(addr: SocketAddr, data: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    stream.write_all(data).unwrap();
    let mut out = Vec::new();
    stream.read_to_end(&mut out).unwrap();
    String::from_utf8_lossy(&out).into_owned()
}

fn get(addr: SocketAddr, path: &str) -> (String, String) {
    let req = format!("GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n");
    let raw = send_raw(addr, req.as_bytes());
    match raw.split_once("\r\n\r\n") {
        Some((head, body)) => (head.to_string(), body.to_string()),
        None => (raw, String::new()),
    }
}

fn dechunk(body: &str) -> String {
    let mut out = String::new();
    let mut rest = body;
    loop {
        let Some((size_line, after)) = rest.split_once("\r\n") else {
            return out;
        };
        let Ok(size) = usize::from_str_radix(size_line.trim(), 16) else {
            return out;
        };
        if size == 0 || after.len() < size {
            return out;
        }
        out.push_str(&after[..size]);
        rest = after[size..].strip_prefix("\r\n").unwrap_or(&after[size..]);
    }
}

/// The (target, message) pair of a streamed `log` event's record.
fn log_origin(event: &JobEvent) -> (String, String) {
    let record = dpr_log::Record::from_json(&event.detail)
        .unwrap_or_else(|| panic!("unparseable log record: {}", event.detail));
    (record.target.clone(), record.message.clone())
}

#[test]
fn one_job_id_correlates_stream_ring_json_log_and_trace() {
    let json_path = std::env::temp_dir().join(format!(
        "dpr-serve-correlation-{}.jsonl",
        std::process::id()
    ));
    dpr_log::set_json_path(Some(&json_path)).expect("enable json sink");

    let service = AnalysisService::start(
        "127.0.0.1:0",
        ServiceConfig {
            analysis_workers: 1,
            ..ServiceConfig::default()
        },
        Arc::new(ReplayAnalyzer { seed: 5 }),
    )
    .unwrap();
    let addr = service.addr();

    // Submit the car-M job over a real socket.
    let body = b"{\"car\":\"M\"}";
    let req = format!(
        "POST /jobs HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let mut data = req.into_bytes();
    data.extend_from_slice(body);
    let raw = send_raw(addr, &data);
    let (head, submit_body) = raw.split_once("\r\n\r\n").unwrap();
    assert!(head.starts_with("HTTP/1.1 202"), "{head}");
    let job = json::from_str::<SubmitResponse>(submit_body).unwrap().job;

    // Prove the tail is live, not a replay: the job has not finished
    // yet when the subscriber connects (collection alone takes far
    // longer than these two requests).
    let (head, status_body) = get(addr, &format!("/jobs/{job}"));
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    let early: JobStatus = json::from_str(&status_body).unwrap();
    assert!(
        early.state == "queued" || early.state == "running",
        "job finished before the live tail could attach: {early:?}"
    );

    // Tail the event stream to EOF — this blocks across the whole
    // analysis, receiving events as the worker emits them.
    let (head, stream_body) = get(addr, &format!("/jobs/{job}/events"));
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(head.contains("Transfer-Encoding: chunked"), "{head}");
    let events: Vec<JobEvent> = dechunk(&stream_body)
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| json::from_str::<JobEvent>(l).unwrap_or_else(|e| panic!("{e}: {l}")))
        .collect();

    // -- The stream alone tells the lifecycle story, in order. --------
    let states: Vec<&str> = events
        .iter()
        .filter(|e| e.kind == "state")
        .map(|e| e.what.as_str())
        .collect();
    assert_eq!(states, vec!["queued", "running", "done"]);
    for pair in events.windows(2) {
        assert!(pair[0].seq < pair[1].seq, "stream out of order: {pair:?}");
        assert!(pair[0].t_us <= pair[1].t_us, "time ran backwards: {pair:?}");
    }
    let streamed_stages: Vec<&str> = events
        .iter()
        .filter(|e| e.kind == "stage")
        .map(|e| e.what.as_str())
        .collect();
    assert_eq!(
        streamed_stages,
        vec!["transport", "ocr", "association", "inference"],
        "stage events out of pipeline order"
    );

    // The job's final status agrees with what was streamed.
    let (_, status_body) = get(addr, &format!("/jobs/{job}"));
    let done: JobStatus = json::from_str(&status_body).unwrap();
    assert_eq!(done.state, "done");
    let status_stages: Vec<&str> = done
        .stages
        .iter()
        .map(|s| s.name.as_str())
        .filter(|name| STAGE_NAMES.contains(name))
        .collect();
    assert_eq!(streamed_stages, status_stages);
    let run_id = done.run_id.expect("done job has a run id");
    let done_event = events
        .iter()
        .find(|e| e.kind == "state" && e.what == "done")
        .unwrap();
    assert_eq!(done_event.detail, run_id, "done event names the wrong run");

    // Streamed log events are this job's records, worker-window only:
    // the stage completions, then the publish.
    let log_events: Vec<(String, String)> = events
        .iter()
        .filter(|e| e.kind == "log")
        .map(log_origin)
        .collect();
    let stage_logs: Vec<&str> = events
        .iter()
        .filter(|e| e.kind == "log")
        .filter_map(|e| {
            let record = dpr_log::Record::from_json(&e.detail).unwrap();
            match (record.message.as_str(), record.field("stage")) {
                ("stage complete", Some(FieldValue::Str(stage))) => STAGE_NAMES
                    .iter()
                    .find(|known| **known == stage.as_str())
                    .copied(),
                _ => None,
            }
        })
        .collect();
    assert_eq!(stage_logs, streamed_stages, "log records disagree with stage events");
    assert!(
        log_events.contains(&("serve.job".to_string(), "run published".to_string())),
        "publish record missing from the stream: {log_events:?}"
    );

    // -- The post-hoc ring, filtered to this job_id, matches. ---------
    let ring: Vec<Arc<dpr_log::Record>> = dpr_log::logger()
        .ring()
        .snapshot()
        .into_iter()
        .map(|entry| entry.record)
        .filter(|r| matches!(r.field("job_id"), Some(FieldValue::Str(id)) if *id == job))
        .collect();
    let ring_story: Vec<(&str, &str)> = ring
        .iter()
        .map(|r| (r.target.as_str(), r.message.as_str()))
        .collect();
    assert_eq!(
        ring_story,
        vec![
            ("serve.job", "job accepted"),
            ("serve.job", "job started"),
            ("pipeline", "stage complete"),
            ("pipeline", "stage complete"),
            ("pipeline", "stage complete"),
            ("pipeline", "stage complete"),
            ("serve.job", "run published"),
        ],
        "ring does not reconstruct the job story"
    );
    // The arrival record ties the job to the HTTP request that made it.
    assert!(
        matches!(ring[0].field("req_id"), Some(FieldValue::Str(r)) if r.starts_with("req-")),
        "accept record lost its req_id: {:?}",
        ring[0]
    );
    // Worker-window ring records are exactly the streamed log events.
    let ring_window: Vec<(String, String)> = ring
        .iter()
        .skip(2) // accepted + started happen outside the tap window
        .map(|r| (r.target.clone(), r.message.clone()))
        .collect();
    assert_eq!(ring_window, log_events, "stream and ring diverge");

    // -- `grep <job_id> $DPR_LOG_JSON` recovers the same story. -------
    let logged = std::fs::read_to_string(&json_path).expect("json log written");
    let file_story: Vec<(String, String)> = logged
        .lines()
        .filter(|line| line.contains(&job))
        .map(|line| {
            dpr_log::Record::from_json(line)
                .unwrap_or_else(|| panic!("unparseable log line: {line}"))
        })
        .filter(|r| matches!(r.field("job_id"), Some(FieldValue::Str(id)) if *id == job))
        .map(|r| (r.target.clone(), r.message.clone()))
        .collect();
    let ring_full: Vec<(String, String)> = ring_story
        .iter()
        .map(|(t, m)| (t.to_string(), m.to_string()))
        .collect();
    assert_eq!(file_story, ring_full, "JSON-lines file diverges from the ring");

    // -- The published trace carries the job id. ----------------------
    let (head, trace_body) = get(addr, "/trace");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(
        trace_body.contains(&format!("\"job_id\":\"{job}\"")),
        "published trace is not stamped with the job id: {trace_body}"
    );

    service.stop();
    dpr_log::set_json_path(None).expect("disable json sink");
    let _ = std::fs::remove_file(&json_path);
}
