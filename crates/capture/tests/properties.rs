//! Adversarial-input properties of the capture reader: **no mutation
//! of a capture stream may ever panic the reader, and every lost event
//! must be accounted for in the skip tallies.**
//!
//! Three mutation families, per the durability contract:
//! truncation at every byte offset, random bit flips, and duplicated
//! records.

use dpr_can::{CanFrame, CanId, Micros, TimestampedFrame};
use dpr_capture::format::HEADER_LEN;
use dpr_capture::{CaptureEvent, CaptureReader, CaptureWriter, ClockSyncSample};
use dpr_tool::{Screenshot, UiFrame, WidgetKind};
use proptest::prelude::*;

/// A small but kind-diverse event stream: CAN frames, screen frames,
/// actions, clock syncs, metadata.
fn sample_events() -> Vec<CaptureEvent> {
    let mut events = vec![CaptureEvent::Meta {
        key: "car".to_string(),
        value: "M".to_string(),
    }];
    for i in 0..60u64 {
        events.push(CaptureEvent::Can(TimestampedFrame {
            at: Micros::from_millis(10 + i),
            frame: CanFrame::new(
                CanId::standard(0x700 + (i % 8) as u16).unwrap(),
                &[i as u8, 0x41, (i * 3) as u8],
            )
            .unwrap(),
        }));
        if i % 7 == 0 {
            let mut shot = Screenshot::new(Micros::from_millis(10 + i), 40, 10);
            shot.push(WidgetKind::Title, 0, 0, "Read Data Stream");
            shot.push(WidgetKind::Label, 1, 2, "Engine Speed");
            shot.push(WidgetKind::Value, 25, 2, format!("{}", 700 + i));
            events.push(CaptureEvent::Screen(UiFrame {
                at: Micros::from_millis(10 + i),
                screenshot: shot,
            }));
        }
        if i % 11 == 0 {
            events.push(CaptureEvent::Action(dpr_cps::script::LogEntry {
                at: Micros::from_millis(10 + i),
                action: "[Next Page]".to_string(),
                position: (3, 9),
            }));
        }
        if i % 13 == 0 {
            events.push(CaptureEvent::ClockSync(ClockSyncSample {
                bus_at: Micros::from_millis(10 + i),
                camera_at: Micros::from_millis(10 + i),
            }));
        }
    }
    events
}

/// Serializes the sample events, also returning each record's end
/// offset in the byte stream (sync markers the writer interleaves make
/// the boundaries non-uniform).
fn sample_capture() -> (Vec<CaptureEvent>, Vec<u8>, Vec<(usize, usize)>) {
    let events = sample_events();
    let mut writer = CaptureWriter::new(Vec::new()).unwrap();
    let mut spans = Vec::new();
    for event in &events {
        let before = writer.bytes_written() as usize;
        writer.write_event(event).unwrap();
        spans.push((before, writer.bytes_written() as usize));
    }
    let bytes = writer.finish().unwrap();
    (events, bytes, spans)
}

/// Replays mutated bytes; panics bubble out and fail the test.
fn replay(bytes: &[u8]) -> Option<(Vec<CaptureEvent>, dpr_capture::CorruptionStats)> {
    let mut reader = CaptureReader::new(bytes).ok()?;
    let events: Vec<CaptureEvent> = reader.by_ref().collect();
    Some((events, *reader.stats()))
}

/// Record boundaries of a well-formed stream, walked with an
/// independent reference framer (header, then `kind|len|payload|crc`).
fn record_boundaries(bytes: &[u8]) -> std::collections::HashSet<usize> {
    let mut boundaries = std::collections::HashSet::new();
    let mut pos = HEADER_LEN;
    boundaries.insert(pos);
    while pos + 9 <= bytes.len() {
        let len = u32::from_le_bytes([
            bytes[pos + 1],
            bytes[pos + 2],
            bytes[pos + 3],
            bytes[pos + 4],
        ]) as usize;
        pos += 9 + len;
        boundaries.insert(pos);
    }
    boundaries
}

#[test]
fn truncation_at_every_offset_never_panics_and_keeps_a_prefix() {
    let (events, bytes, _) = sample_capture();
    let boundaries = record_boundaries(&bytes);
    for cut in 0..bytes.len() {
        match replay(&bytes[..cut]) {
            None => assert!(
                cut < HEADER_LEN,
                "only a header shorter than {HEADER_LEN} may fail to open (cut {cut})"
            ),
            Some((got, stats)) => {
                // A truncated stream replays an exact prefix of the
                // original events…
                assert!(
                    got.len() <= events.len() && got == events[..got.len()],
                    "cut {cut}: replay is not a prefix"
                );
                // …and losing events with a clean tally is only
                // legitimate when the cut fell exactly on a record
                // boundary (indistinguishable from a shorter capture).
                if got.len() < events.len() && stats.skipped() == 0 {
                    assert!(
                        boundaries.contains(&cut),
                        "cut {cut}: lost {} events with clean stats {stats:?}",
                        events.len() - got.len()
                    );
                }
            }
        }
    }
}

#[test]
fn every_single_bit_flip_is_detected_or_harmless() {
    // Exhaustive over a prefix of the stream (covers the header, sync
    // markers, and several full records), sampled over the rest.
    let (events, bytes, _) = sample_capture();
    let exhaustive = 600.min(bytes.len());
    let mut offsets: Vec<usize> = (0..exhaustive).collect();
    offsets.extend((exhaustive..bytes.len()).step_by(97));
    for offset in offsets {
        for bit in 0..8 {
            let mut mutated = bytes.clone();
            mutated[offset] ^= 1 << bit;
            match replay(&mutated) {
                // Header damage: refused up front, never a panic.
                None => assert!(offset < HEADER_LEN, "offset {offset} bit {bit}"),
                Some((got, stats)) => {
                    // Every event the flip cost us is accounted for: a
                    // replay that differs from the original must have a
                    // nonzero skip tally.
                    if got != events {
                        assert!(
                            stats.skipped() > 0,
                            "offset {offset} bit {bit}: silent divergence {stats:?}"
                        );
                    }
                }
            }
        }
    }
}

proptest! {
    /// Random multi-byte corruption: any number of flips anywhere in
    /// the stream neither panics nor silently alters the replay.
    #[test]
    fn random_bit_flips_never_panic(
        flips in proptest::collection::vec((any::<u16>(), 0u8..8), 1..24)
    ) {
        let (events, bytes, _) = sample_capture();
        let mut mutated = bytes.clone();
        for (pos, bit) in flips {
            let pos = pos as usize % mutated.len();
            mutated[pos] ^= 1 << bit;
        }
        if let Some((got, stats)) = replay(&mutated) {
            if got != events {
                prop_assert!(stats.skipped() > 0, "silent divergence: {stats:?}");
            }
        }
    }

    /// Duplicating any whole record leaves a readable stream: the
    /// duplicate replays as one extra event (or nothing, for sync
    /// markers swallowed by the duplicated span) and no skips are
    /// charged.
    #[test]
    fn duplicated_records_replay_cleanly(which in any::<u16>()) {
        let (events, bytes, spans) = sample_capture();
        let (start, end) = spans[which as usize % spans.len()];
        let mut mutated = Vec::with_capacity(bytes.len() + (end - start));
        mutated.extend_from_slice(&bytes[..end]);
        mutated.extend_from_slice(&bytes[start..end]);
        mutated.extend_from_slice(&bytes[end..]);

        let (got, stats) = replay(&mutated).expect("header untouched");
        prop_assert_eq!(stats.skipped(), 0, "duplication is not damage");
        prop_assert_eq!(stats.bytes_skipped, 0);
        // The duplicated span carries exactly one event (plus possibly
        // a sync marker), so the replay is the original stream with
        // that one event repeated.
        let idx = which as usize % spans.len();
        let mut expected = events.clone();
        expected.insert(idx + 1, events[idx].clone());
        prop_assert_eq!(got, expected);
    }

    /// Slicing a random window out of the middle (torn write / lost
    /// block) still replays: events outside the window survive, damage
    /// is tallied.
    #[test]
    fn torn_streams_resync(start in any::<u16>(), len in 1u16..2000) {
        let (events, bytes, _) = sample_capture();
        let boundaries = record_boundaries(&bytes);
        let start = HEADER_LEN + (start as usize % (bytes.len() - HEADER_LEN - 1));
        let end = (start + len as usize).min(bytes.len());
        let mut mutated = Vec::new();
        mutated.extend_from_slice(&bytes[..start]);
        mutated.extend_from_slice(&bytes[end..]);

        let (got, stats) = replay(&mutated).expect("header untouched");
        prop_assert!(got.len() <= events.len());
        // A window spanning whole records splices seamlessly — clean
        // stats are only wrong when a record was cut mid-body.
        let seamless = boundaries.contains(&start) && boundaries.contains(&end);
        if got.len() < events.len() && !seamless {
            prop_assert!(
                stats.skipped() > 0 || stats.bytes_skipped > 0,
                "lost events with clean stats: {stats:?}"
            );
        }
        // Every surviving event is a genuine original, unaltered.
        for event in &got {
            prop_assert!(events.contains(event));
        }
    }
}
