//! Golden-trace regression: a small Car M capture is checked into the
//! repo at `tests/golden/car_m.dprcap`. The whole stack under it —
//! vehicle simulator, tool, bus timing, collector, capture encoding —
//! runs on seeded logical time, so re-recording the same car with the
//! same seed must reproduce the file **byte for byte**. A mismatch
//! means a simulator or format change silently altered recorded data;
//! bump [`dpr_capture::FORMAT_VERSION`] or regenerate deliberately
//! with:
//!
//! ```text
//! DPR_REGEN_GOLDEN=1 cargo test -p dpr-capture --test golden
//! ```

use dpr_can::Micros;
use dpr_capture::{record_report, CaptureReader, CaptureWriter};
use dpr_cps::{collect_vehicle, CollectConfig};
use dpr_tool::{ToolProfile, ToolSession};
use dpr_vehicle::profiles::{self, CarId};
use std::path::PathBuf;

const GOLDEN_CAR: CarId = CarId::M;
const GOLDEN_SEED: u64 = 31;
const GOLDEN_READ_SECS: u64 = 2;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("car_m.dprcap")
}

/// Records the golden session deterministically.
fn record_golden() -> Vec<u8> {
    let car = profiles::build(GOLDEN_CAR, GOLDEN_SEED);
    let spec = profiles::spec(GOLDEN_CAR);
    let session = ToolSession::new(car, ToolProfile::by_name(spec.tool).unwrap());
    let report = collect_vehicle(
        session,
        &CollectConfig {
            read_wait: Micros::from_secs(GOLDEN_READ_SECS),
            ..CollectConfig::default()
        },
    )
    .unwrap();
    let mut writer = CaptureWriter::new(Vec::new()).unwrap();
    writer.write_meta("car", "M").unwrap();
    writer.write_meta("seed", &GOLDEN_SEED.to_string()).unwrap();
    writer
        .write_meta("read_secs", &GOLDEN_READ_SECS.to_string())
        .unwrap();
    writer.write_meta("tool", spec.tool).unwrap();
    record_report(&report, &mut writer).unwrap();
    writer.finish().unwrap()
}

#[test]
fn golden_capture_is_reproducible_byte_for_byte() {
    let path = golden_path();
    let fresh = record_golden();
    if std::env::var("DPR_REGEN_GOLDEN").is_ok() {
        std::fs::write(&path, &fresh).unwrap();
        println!("regenerated {} ({} bytes)", path.display(), fresh.len());
        return;
    }
    let checked_in = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "{} unreadable ({e}); regenerate with DPR_REGEN_GOLDEN=1",
            path.display()
        )
    });
    assert!(
        checked_in == fresh,
        "recorded capture diverged from the golden file ({} vs {} bytes) — \
         a simulator or capture-format change altered recorded data; if \
         intentional, regenerate with DPR_REGEN_GOLDEN=1",
        fresh.len(),
        checked_in.len()
    );
}

#[test]
fn golden_capture_replays_cleanly() {
    let path = golden_path();
    if !path.exists() {
        panic!("golden file missing; regenerate with DPR_REGEN_GOLDEN=1");
    }
    let reader = CaptureReader::open(&path).unwrap();
    let (session, stats) = reader.read_session();
    assert!(stats.is_clean(), "{stats:?}");
    assert!(session.log.len() > 100, "CAN capture too small: {}", session.log.len());
    assert!(session.frames.len() > 20, "too few frames: {}", session.frames.len());
    assert!(!session.execution.entries.is_empty());
    assert!(!session.clock_syncs.is_empty());
    assert_eq!(session.meta.get("car").map(String::as_str), Some("M"));
    assert_eq!(session.estimated_offset_us(), Some(0));
}
