//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the checksum
//! guarding every capture record.
//!
//! Implemented as a `const fn` over a compile-time lookup table so the
//! constant wire image of the sync marker ([`crate::format::SYNC_WIRE`])
//! can embed its own CRC at compile time.

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const TABLE: [u32; 256] = make_table();

/// A running CRC-32, for checksumming a record without materializing it
/// in one contiguous buffer.
#[derive(Debug, Clone, Copy)]
pub struct Crc32(u32);

impl Crc32 {
    /// Starts a fresh checksum.
    pub const fn new() -> Self {
        Crc32(0xFFFF_FFFF)
    }

    /// Folds `bytes` into the checksum.
    pub const fn update(mut self, bytes: &[u8]) -> Self {
        let mut i = 0;
        while i < bytes.len() {
            self.0 = TABLE[((self.0 ^ bytes[i] as u32) & 0xFF) as usize] ^ (self.0 >> 8);
            i += 1;
        }
        self
    }

    /// The final CRC value.
    pub const fn finish(self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of a byte slice.
pub const fn crc32(bytes: &[u8]) -> u32 {
    Crc32::new().update(bytes).finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let whole = crc32(b"hello capture world");
        let split = Crc32::new()
            .update(b"hello ")
            .update(b"capture ")
            .update(b"world")
            .finish();
        assert_eq!(whole, split);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let base = b"abcdefgh".to_vec();
        let reference = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut mutated = base.clone();
                mutated[byte] ^= 1 << bit;
                assert_ne!(crc32(&mutated), reference, "flip {byte}:{bit} undetected");
            }
        }
    }
}
