//! Streaming capture reading that survives corruption.
//!
//! [`CaptureReader`] pulls bytes from any [`Read`] source through a
//! bounded internal buffer and yields [`CaptureEvent`]s. A record whose
//! CRC fails, whose payload is malformed, or that runs past the end of
//! the stream is **counted and skipped, never panicked on**: the reader
//! scans forward for the next sync marker ([`SYNC_WIRE`]) and resumes
//! parsing there, so one damaged block costs at most one
//! [`SYNC_INTERVAL`](crate::writer::SYNC_INTERVAL) worth of records.

use std::fs::File;
use std::io::{self, BufReader, Read};
use std::path::Path;

use crate::crc::crc32;
use crate::format::{
    decode_header, decode_payload, CaptureEvent, HeaderError, KIND_SYNC, MAX_RECORD_LEN,
    SYNC_WIRE,
};

/// How much to request from the source per refill.
const FILL_CHUNK: usize = 64 * 1024;
/// Compact the buffer once this many consumed bytes accumulate.
const COMPACT_THRESHOLD: usize = 256 * 1024;

/// Tallies of everything the reader skipped or recovered from.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CorruptionStats {
    /// Valid records parsed, including sync markers.
    pub records_read: u64,
    /// Events yielded to the caller (valid non-sync records).
    pub events: u64,
    /// Records dropped because their CRC did not verify.
    pub crc_skipped: u64,
    /// CRC-valid records whose payload did not decode (unknown kind
    /// byte, bad enum tag, truncated field, trailing garbage).
    pub malformed: u64,
    /// Records that ran past the end of the stream.
    pub truncated: u64,
    /// Forward scans to a sync marker after a bad record.
    pub resyncs: u64,
    /// Bytes discarded while skipping damage.
    pub bytes_skipped: u64,
}

impl CorruptionStats {
    /// Total records the reader had to skip.
    pub fn skipped(&self) -> u64 {
        self.crc_skipped + self.malformed + self.truncated
    }

    /// Whether the stream replayed without any damage.
    pub fn is_clean(&self) -> bool {
        self.skipped() == 0 && self.bytes_skipped == 0
    }

    /// Publishes the reader-side `capture.*` counters for this tally to
    /// the active telemetry registry — what
    /// [`read_session`](crate::CaptureReader::read_session) reports at
    /// end of stream. Callers that drain a reader by hand (e.g. the
    /// `capture info` tool) can call this to get the same counters.
    pub fn publish_telemetry(&self) {
        dpr_telemetry::counter("capture.records_read").inc(self.records_read);
        dpr_telemetry::counter("capture.crc_skipped").inc(self.skipped());
    }
}

/// Failure to open a capture stream.
#[derive(Debug)]
pub enum CaptureError {
    /// The stream's header is missing, damaged, or from an unsupported
    /// format version.
    Header(HeaderError),
    /// The underlying source failed.
    Io(io::Error),
}

impl std::fmt::Display for CaptureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CaptureError::Header(e) => write!(f, "{e}"),
            CaptureError::Io(e) => write!(f, "capture i/o: {e}"),
        }
    }
}

impl std::error::Error for CaptureError {}

impl From<HeaderError> for CaptureError {
    fn from(e: HeaderError) -> Self {
        CaptureError::Header(e)
    }
}

impl From<io::Error> for CaptureError {
    fn from(e: io::Error) -> Self {
        CaptureError::Io(e)
    }
}

/// A streaming, corruption-tolerant capture reader.
pub struct CaptureReader<R: Read> {
    src: R,
    buf: Vec<u8>,
    /// Start of the unconsumed region within `buf`.
    start: usize,
    eof: bool,
    done: bool,
    version: u16,
    stats: CorruptionStats,
}

impl CaptureReader<BufReader<File>> {
    /// Opens a capture file.
    ///
    /// # Errors
    ///
    /// Returns [`CaptureError::Io`] if the file cannot be opened and
    /// [`CaptureError::Header`] if it is not a readable capture.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, CaptureError> {
        CaptureReader::new(BufReader::new(File::open(path)?))
    }
}

impl<R: Read> CaptureReader<R> {
    /// Wraps a byte source, reading and validating the header.
    ///
    /// # Errors
    ///
    /// Returns [`CaptureError::Header`] when the magic, version, or
    /// header length is wrong, [`CaptureError::Io`] on source failure.
    pub fn new(src: R) -> Result<Self, CaptureError> {
        CaptureReader::with_buffer(src, Vec::with_capacity(FILL_CHUNK))
    }

    /// [`CaptureReader::new`] reading through a caller-provided buffer.
    /// Long-lived consumers (the analysis service's worker threads) pass
    /// the buffer recovered from the previous reader via
    /// [`into_buffer`](CaptureReader::into_buffer), so steady-state
    /// replay does no per-capture buffer allocation.
    pub fn with_buffer(src: R, mut buf: Vec<u8>) -> Result<Self, CaptureError> {
        buf.clear();
        let mut reader = CaptureReader {
            src,
            buf,
            start: 0,
            eof: false,
            done: false,
            version: 0,
            stats: CorruptionStats::default(),
        };
        reader.ensure(crate::format::HEADER_LEN);
        let header = &reader.buf[reader.start..];
        reader.version = decode_header(header)?;
        reader.start += crate::format::HEADER_LEN;
        Ok(reader)
    }

    /// Consumes the reader, returning its internal buffer for reuse by
    /// the next [`CaptureReader::with_buffer`].
    pub fn into_buffer(self) -> Vec<u8> {
        self.buf
    }

    /// The capture's format version (from the header).
    pub fn version(&self) -> u16 {
        self.version
    }

    /// The damage tallies so far.
    pub fn stats(&self) -> &CorruptionStats {
        &self.stats
    }

    fn available(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Refills until at least `n` bytes are available or the source is
    /// exhausted. I/O errors end the stream like an EOF (the bytes
    /// simply are not there; a capture must stay readable to the last
    /// decodable record).
    fn ensure(&mut self, n: usize) -> bool {
        while self.available() < n && !self.eof {
            if self.start >= COMPACT_THRESHOLD {
                self.buf.drain(..self.start);
                self.start = 0;
            }
            let old_len = self.buf.len();
            self.buf.resize(old_len + FILL_CHUNK, 0);
            match self.src.read(&mut self.buf[old_len..]) {
                Ok(0) | Err(_) => {
                    self.buf.truncate(old_len);
                    self.eof = true;
                }
                Ok(got) => self.buf.truncate(old_len + got),
            }
        }
        self.available() >= n
    }

    /// Discards `n` available bytes as damage.
    fn skip_damage(&mut self, n: usize) {
        self.start += n;
        self.stats.bytes_skipped += n as u64;
    }

    /// Scans forward for the next sync marker. Returns `false` when the
    /// stream ends first (everything remaining is discarded).
    fn resync(&mut self) -> bool {
        // The record at `start` is damaged: never re-parse its first byte.
        if self.available() > 0 {
            self.skip_damage(1);
        }
        loop {
            let window = &self.buf[self.start..];
            if let Some(rel) = find(window, &SYNC_WIRE) {
                self.skip_damage(rel);
                self.stats.resyncs += 1;
                return true;
            }
            // Keep a possible marker prefix at the tail, drop the rest.
            let keep = SYNC_WIRE.len() - 1;
            if self.available() > keep {
                let drop = self.available() - keep;
                self.skip_damage(drop);
            }
            if self.eof {
                let rest = self.available();
                self.skip_damage(rest);
                return false;
            }
            let want = self.available() + FILL_CHUNK;
            self.ensure(want);
        }
    }

    /// Yields the next event, transparently skipping damaged records.
    /// `None` means the stream is exhausted.
    pub fn next_event(&mut self) -> Option<CaptureEvent> {
        while !self.done {
            // kind + len
            if !self.ensure(5) {
                if self.available() > 0 {
                    self.stats.truncated += 1;
                    let rest = self.available();
                    self.skip_damage(rest);
                }
                self.done = true;
                return None;
            }
            let kind = self.buf[self.start];
            let len = u32::from_le_bytes([
                self.buf[self.start + 1],
                self.buf[self.start + 2],
                self.buf[self.start + 3],
                self.buf[self.start + 4],
            ]);
            if len > MAX_RECORD_LEN {
                self.stats.crc_skipped += 1;
                if !self.resync() {
                    self.done = true;
                    return None;
                }
                continue;
            }
            let body_len = 5 + len as usize;
            if !self.ensure(body_len + 4) {
                // The record overruns the stream: truncated tail, or a
                // damaged length field near the end. Either way, look
                // for a later sync marker before giving up.
                self.stats.truncated += 1;
                if !self.resync() {
                    self.done = true;
                    return None;
                }
                continue;
            }
            let body = &self.buf[self.start..self.start + body_len];
            let stored = u32::from_le_bytes([
                self.buf[self.start + body_len],
                self.buf[self.start + body_len + 1],
                self.buf[self.start + body_len + 2],
                self.buf[self.start + body_len + 3],
            ]);
            if crc32(body) != stored {
                self.stats.crc_skipped += 1;
                if !self.resync() {
                    self.done = true;
                    return None;
                }
                continue;
            }
            // A verified record: consume it (not damage).
            let payload_range = self.start + 5..self.start + body_len;
            self.stats.records_read += 1;
            if kind == KIND_SYNC {
                self.start += body_len + 4;
                continue;
            }
            let event = decode_payload(kind, &self.buf[payload_range]);
            self.start += body_len + 4;
            match event {
                Some(event) => {
                    self.stats.events += 1;
                    return Some(event);
                }
                None => {
                    self.stats.malformed += 1;
                    continue;
                }
            }
        }
        None
    }
}

impl<R: Read> Iterator for CaptureReader<R> {
    type Item = CaptureEvent;

    fn next(&mut self) -> Option<CaptureEvent> {
        self.next_event()
    }
}

/// First occurrence of `needle` in `haystack`.
fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() || haystack.len() < needle.len() {
        return None;
    }
    let first = needle[0];
    let mut i = 0;
    while i + needle.len() <= haystack.len() {
        if haystack[i] == first && &haystack[i..i + needle.len()] == needle {
            return Some(i);
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::ClockSyncSample;
    use crate::writer::CaptureWriter;
    use dpr_can::{CanFrame, CanId, Micros, TimestampedFrame};

    fn can_event(at: u64) -> CaptureEvent {
        CaptureEvent::Can(TimestampedFrame {
            at: Micros::from_micros(at),
            frame: CanFrame::new(CanId::standard(0x123).unwrap(), &[at as u8, 0xFF]).unwrap(),
        })
    }

    fn capture_of(events: &[CaptureEvent]) -> Vec<u8> {
        let mut writer = CaptureWriter::new(Vec::new()).unwrap();
        for e in events {
            writer.write_event(e).unwrap();
        }
        writer.finish().unwrap()
    }

    #[test]
    fn round_trips_a_clean_stream() {
        let events: Vec<CaptureEvent> = (0..100).map(can_event).collect();
        let bytes = capture_of(&events);
        let mut reader = CaptureReader::new(bytes.as_slice()).unwrap();
        let back: Vec<CaptureEvent> = reader.by_ref().collect();
        assert_eq!(back, events);
        assert!(reader.stats().is_clean(), "{:?}", reader.stats());
        assert_eq!(reader.stats().events, 100);
        assert_eq!(reader.version(), crate::format::FORMAT_VERSION);
    }

    #[test]
    fn bad_crc_skips_to_next_sync() {
        let events: Vec<CaptureEvent> = (0..80).map(can_event).collect();
        let mut bytes = capture_of(&events);
        // Damage one byte inside the first record after the initial sync.
        let offset = crate::format::HEADER_LEN + SYNC_WIRE.len() + 7;
        bytes[offset] ^= 0x40;
        let mut reader = CaptureReader::new(bytes.as_slice()).unwrap();
        let back: Vec<CaptureEvent> = reader.by_ref().collect();
        // Everything from the damaged record to the next sync marker
        // (one SYNC_INTERVAL) is lost; the rest replays.
        assert!(back.len() >= 80 - crate::writer::SYNC_INTERVAL);
        assert!(back.len() < 80);
        let stats = reader.stats();
        assert_eq!(stats.crc_skipped, 1);
        assert_eq!(stats.resyncs, 1);
        assert!(stats.bytes_skipped > 0);
        // The surviving events are an exact subsequence of the originals.
        assert!(back.iter().all(|e| events.contains(e)));
    }

    #[test]
    fn truncated_tail_is_counted_not_panicked() {
        let events: Vec<CaptureEvent> = (0..10).map(can_event).collect();
        let bytes = capture_of(&events);
        let cut = bytes.len() - 10;
        let mut reader = CaptureReader::new(&bytes[..cut]).unwrap();
        let back: Vec<CaptureEvent> = reader.by_ref().collect();
        assert!(back.len() <= 10);
        assert!(reader.stats().truncated >= 1, "{:?}", reader.stats());
    }

    #[test]
    fn clock_sync_and_meta_survive_interleaving() {
        let events = vec![
            CaptureEvent::Meta {
                key: "car".into(),
                value: "A".into(),
            },
            can_event(5),
            CaptureEvent::ClockSync(ClockSyncSample {
                bus_at: Micros::from_secs(1),
                camera_at: Micros::from_secs(1),
            }),
            can_event(6),
        ];
        let bytes = capture_of(&events);
        let back: Vec<CaptureEvent> = CaptureReader::new(bytes.as_slice()).unwrap().collect();
        assert_eq!(back, events);
    }

    #[test]
    fn header_damage_is_an_error_not_a_panic() {
        let bytes = capture_of(&[can_event(1)]);
        // Bytes 10..12 are reserved padding the reader ignores.
        for i in 0..10 {
            let mut bad = bytes.clone();
            bad[i] ^= 0xFF;
            assert!(matches!(
                CaptureReader::new(bad.as_slice()),
                Err(CaptureError::Header(_))
            ));
        }
        assert!(matches!(
            CaptureReader::new(&b"short"[..]),
            Err(CaptureError::Header(HeaderError::Truncated(_)))
        ));
    }
}
