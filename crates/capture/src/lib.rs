//! # dpr-capture — durable session captures and offline replay
//!
//! The paper's pipeline works entirely from recordings: the CAN traffic
//! sniffed at the OBD port plus the camera's view of the diagnostic
//! tool's screen. This crate is that data layer — a versioned,
//! streaming, on-disk capture format that decouples *collection* from
//! *analysis*, the way CAN-D and ACTT operate on recorded CAN logs:
//!
//! * [`format`] — the record layout: an 8-byte magic + version header,
//!   then length-prefixed, CRC-32-framed records carrying four event
//!   kinds (timestamped CAN frames, rendered-screen frames, clicker
//!   actions, clock-sync samples) plus session metadata, with periodic
//!   sync markers for damage recovery.
//! * [`writer`] — [`CaptureWriter`]: buffered streaming append with
//!   automatic sync markers and `capture.records_written` /
//!   `capture.bytes` telemetry.
//! * [`reader`] — [`CaptureReader`]: streaming replay that tolerates
//!   corruption. A bad-CRC, malformed, or truncated record is counted
//!   ([`CorruptionStats`], `capture.crc_skipped`) and skipped; reading
//!   resumes at the next sync marker instead of panicking.
//! * [`session`] — [`record_report`] taps a live `dpr-cps` collection
//!   run into a capture; [`CaptureSession`] reassembles the pipeline's
//!   inputs from a stream for `DpReverser::analyze_capture`.
//!
//! # Example
//!
//! ```
//! use dpr_capture::{CaptureEvent, CaptureReader, CaptureWriter};
//! use dpr_can::{CanFrame, CanId, Micros};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut writer = CaptureWriter::new(Vec::new())?;
//! writer.write_meta("car", "M")?;
//! writer.write_can(
//!     Micros::from_millis(5),
//!     CanFrame::new(CanId::standard(0x7E0)?, &[0x02, 0x01, 0x0C])?,
//! )?;
//! let bytes = writer.finish()?;
//!
//! let reader = CaptureReader::new(bytes.as_slice())?;
//! let (session, stats) = reader.read_session();
//! assert!(stats.is_clean());
//! assert_eq!(session.log.len(), 1);
//! assert_eq!(session.meta.get("car").map(String::as_str), Some("M"));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc;
pub mod format;
pub mod reader;
pub mod session;
pub mod writer;

pub use format::{CaptureEvent, ClockSyncSample, HeaderError, FORMAT_VERSION};
pub use reader::{CaptureError, CaptureReader, CorruptionStats};
pub use session::{record_report, CaptureSession};
pub use writer::{CaptureWriter, SYNC_INTERVAL};
