//! Buffered capture writing with periodic sync markers.

use std::io::{self, BufWriter, Write};

use dpr_can::{CanFrame, Micros, TimestampedFrame};
use dpr_cps::script::LogEntry;
use dpr_tool::UiFrame;

use crate::format::{encode_header, encode_record, CaptureEvent, ClockSyncSample, SYNC_WIRE};

/// Emit a sync marker after this many records, bounding how far a
/// reader must scan past a corrupt record before it can resume.
pub const SYNC_INTERVAL: usize = 32;

/// A buffered, streaming capture writer.
///
/// Writes the file header on construction, then frames every event as a
/// CRC-guarded record, inserting a sync marker every [`SYNC_INTERVAL`]
/// records. [`finish`](Self::finish) writes a final sync marker, flushes,
/// and publishes the `capture.records_written` / `capture.bytes`
/// telemetry counters (published in bulk at the end so recording inside
/// a [`dpr_telemetry::scoped`] region attributes to that scope).
#[derive(Debug)]
pub struct CaptureWriter<W: Write> {
    out: BufWriter<W>,
    records: u64,
    bytes: u64,
    since_sync: usize,
}

impl<W: Write> CaptureWriter<W> {
    /// Starts a capture: writes the header and an initial sync marker.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn new(sink: W) -> io::Result<Self> {
        let mut writer = CaptureWriter {
            out: BufWriter::new(sink),
            records: 0,
            bytes: 0,
            since_sync: 0,
        };
        let header = encode_header();
        writer.out.write_all(&header)?;
        writer.bytes += header.len() as u64;
        writer.write_sync()?;
        Ok(writer)
    }

    fn write_sync(&mut self) -> io::Result<()> {
        self.out.write_all(&SYNC_WIRE)?;
        self.bytes += SYNC_WIRE.len() as u64;
        self.records += 1;
        self.since_sync = 0;
        Ok(())
    }

    /// Appends one event.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write_event(&mut self, event: &CaptureEvent) -> io::Result<()> {
        let record = encode_record(event);
        self.out.write_all(&record)?;
        self.bytes += record.len() as u64;
        self.records += 1;
        self.since_sync += 1;
        if self.since_sync >= SYNC_INTERVAL {
            self.write_sync()?;
        }
        Ok(())
    }

    /// Appends a timestamped CAN frame.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write_can(&mut self, at: Micros, frame: CanFrame) -> io::Result<()> {
        self.write_event(&CaptureEvent::Can(TimestampedFrame { at, frame }))
    }

    /// Appends a camera frame of the rendered screen.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write_screen(&mut self, frame: &UiFrame) -> io::Result<()> {
        self.write_event(&CaptureEvent::Screen(frame.clone()))
    }

    /// Appends a clicker action.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write_action(&mut self, entry: &LogEntry) -> io::Result<()> {
        self.write_event(&CaptureEvent::Action(entry.clone()))
    }

    /// Appends a clock-sync sample.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write_clock_sync(&mut self, sample: ClockSyncSample) -> io::Result<()> {
        self.write_event(&CaptureEvent::ClockSync(sample))
    }

    /// Appends a session-metadata key/value pair.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write_meta(&mut self, key: &str, value: &str) -> io::Result<()> {
        self.write_event(&CaptureEvent::Meta {
            key: key.to_string(),
            value: value.to_string(),
        })
    }

    /// Records written so far, including sync markers.
    pub fn records_written(&self) -> u64 {
        self.records
    }

    /// Bytes written so far, including the header.
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Writes a trailing sync marker, flushes, publishes telemetry
    /// counters, and returns the underlying sink.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the final writes and flush.
    pub fn finish(mut self) -> io::Result<W> {
        if self.since_sync > 0 {
            self.write_sync()?;
        }
        self.out.flush()?;
        dpr_telemetry::counter("capture.records_written").inc(self.records);
        dpr_telemetry::counter("capture.bytes").inc(self.bytes);
        self.out
            .into_inner()
            .map_err(|e| io::Error::other(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{HEADER_LEN, KIND_SYNC};
    use dpr_can::CanId;

    fn can_event(at: u64) -> CaptureEvent {
        CaptureEvent::Can(TimestampedFrame {
            at: Micros::from_micros(at),
            frame: CanFrame::new(CanId::standard(0x7E0).unwrap(), &[at as u8]).unwrap(),
        })
    }

    #[test]
    fn header_then_initial_sync() {
        let bytes = CaptureWriter::new(Vec::new()).unwrap().finish().unwrap();
        assert_eq!(&bytes[..8], b"DPRCAP\r\n");
        assert_eq!(&bytes[HEADER_LEN..], &SYNC_WIRE);
    }

    #[test]
    fn periodic_sync_markers_appear() {
        let mut writer = CaptureWriter::new(Vec::new()).unwrap();
        for i in 0..(SYNC_INTERVAL as u64 * 2 + 3) {
            writer.write_event(&can_event(i)).unwrap();
        }
        let bytes = writer.finish().unwrap();
        let syncs = bytes
            .windows(SYNC_WIRE.len())
            .filter(|w| *w == SYNC_WIRE)
            .count();
        // initial + two periodic + trailing
        assert_eq!(syncs, 4);
        assert_eq!(bytes[HEADER_LEN], KIND_SYNC);
    }

    #[test]
    fn accounting_matches_output_size() {
        let mut writer = CaptureWriter::new(Vec::new()).unwrap();
        writer.write_meta("car", "M").unwrap();
        writer.write_event(&can_event(1)).unwrap();
        let records = writer.records_written();
        let bytes_len = writer.bytes_written();
        let out = writer.finish().unwrap();
        // finish adds exactly one trailing sync.
        assert_eq!(out.len() as u64, bytes_len + SYNC_WIRE.len() as u64);
        assert_eq!(records, 1 + 2); // initial sync + two events
    }
}
