//! The on-disk record layout: header, record framing, event payloads.
//!
//! A capture file is a 12-byte header followed by a stream of framed
//! records:
//!
//! ```text
//! header  := magic[8] = "DPRCAP\r\n" | version u16 LE | reserved u16 LE
//! record  := kind u8 | len u32 LE | payload[len] | crc u32 LE
//! ```
//!
//! The CRC-32 covers `kind`, `len`, and the payload, so a bit flip
//! anywhere in a record — including its length field — is detected. A
//! *sync marker* is an ordinary record (`kind = 0x5A`, fixed 8-byte
//! payload) whose full 17-byte wire image is a compile-time constant:
//! after a corrupt record the reader scans forward for that byte string
//! and resumes parsing at the next marker. All integers are
//! little-endian; all strings are UTF-8 with a `u32` length prefix.

use dpr_can::{CanFrame, CanId, Micros, TimestampedFrame};
use dpr_cps::script::LogEntry;
use dpr_tool::{Screenshot, UiFrame, Widget, WidgetKind};

use crate::crc::{crc32, Crc32};

/// The 8-byte file magic. The `\r\n` tail catches ASCII-mode transfer
/// mangling the way PNG's does.
pub const MAGIC: [u8; 8] = *b"DPRCAP\r\n";

/// Current format version. Readers accept exactly the versions they
/// know; see DESIGN.md "Capture format" for the compatibility rules.
pub const FORMAT_VERSION: u16 = 1;

/// Total header length in bytes.
pub const HEADER_LEN: usize = 12;

/// Record kind byte of a sync marker.
pub const KIND_SYNC: u8 = 0x5A;
/// Record kind byte of a timestamped CAN frame.
pub const KIND_CAN: u8 = 0x01;
/// Record kind byte of a rendered-screen (camera) frame.
pub const KIND_SCREEN: u8 = 0x02;
/// Record kind byte of a clicker-script action.
pub const KIND_ACTION: u8 = 0x03;
/// Record kind byte of a clock-sync sample.
pub const KIND_CLOCK_SYNC: u8 = 0x04;
/// Record kind byte of a session-metadata key/value pair.
pub const KIND_META: u8 = 0x05;

/// The sync marker's fixed payload.
pub const SYNC_PAYLOAD: [u8; 8] = *b"DPRSYNC\0";

/// Hard upper bound on a single record's payload; a length field above
/// this is treated as corruption rather than honored.
pub const MAX_RECORD_LEN: u32 = 16 * 1024 * 1024;

/// The complete, constant wire image of a sync marker:
/// `kind | len | payload | crc` — 17 bytes the reader can scan for.
pub const SYNC_WIRE: [u8; 17] = {
    let mut wire = [0u8; 17];
    wire[0] = KIND_SYNC;
    wire[1] = SYNC_PAYLOAD.len() as u8; // len u32 LE, high bytes zero
    let mut i = 0;
    while i < 8 {
        wire[5 + i] = SYNC_PAYLOAD[i];
        i += 1;
    }
    let crc = Crc32::new().update(&[wire[0]]).update(&[wire[1], 0, 0, 0]).update(&SYNC_PAYLOAD).finish();
    let cb = crc.to_le_bytes();
    wire[13] = cb[0];
    wire[14] = cb[1];
    wire[15] = cb[2];
    wire[16] = cb[3];
    wire
};

/// A clock-sync sample: the same instant as seen by the bus sniffer's
/// clock and by the camera's timestamp overlay. A run with perfectly
/// synchronized clocks (NTP done out of band, or a simulation) records
/// equal values; the difference stream is what offline alignment
/// estimators consume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockSyncSample {
    /// The instant on the bus-capture clock.
    pub bus_at: Micros,
    /// The same instant on the camera clock.
    pub camera_at: Micros,
}

impl ClockSyncSample {
    /// Camera-minus-bus offset in microseconds.
    pub fn offset_us(&self) -> i64 {
        self.camera_at.as_micros() as i64 - self.bus_at.as_micros() as i64
    }
}

/// One event in a capture stream.
#[derive(Debug, Clone, PartialEq)]
pub enum CaptureEvent {
    /// A CAN frame sniffed at the OBD port.
    Can(TimestampedFrame),
    /// A camera frame of the tool's rendered screen.
    Screen(UiFrame),
    /// One executed clicker action.
    Action(LogEntry),
    /// A clock-sync sample.
    ClockSync(ClockSyncSample),
    /// A session-metadata key/value pair (car profile, seed, tool…).
    Meta {
        /// Metadata key.
        key: String,
        /// Metadata value.
        value: String,
    },
}

impl CaptureEvent {
    /// The record kind byte this event serializes under.
    pub fn kind(&self) -> u8 {
        match self {
            CaptureEvent::Can(_) => KIND_CAN,
            CaptureEvent::Screen(_) => KIND_SCREEN,
            CaptureEvent::Action(_) => KIND_ACTION,
            CaptureEvent::ClockSync(_) => KIND_CLOCK_SYNC,
            CaptureEvent::Meta { .. } => KIND_META,
        }
    }
}

/// Serializes the file header.
pub fn encode_header() -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[..8].copy_from_slice(&MAGIC);
    h[8..10].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    // bytes 10..12 reserved, zero
    h
}

/// Parses and validates a file header, returning the format version.
pub fn decode_header(bytes: &[u8]) -> Result<u16, HeaderError> {
    if bytes.len() < HEADER_LEN {
        return Err(HeaderError::Truncated(bytes.len()));
    }
    if bytes[..8] != MAGIC {
        return Err(HeaderError::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[8], bytes[9]]);
    if version != FORMAT_VERSION {
        return Err(HeaderError::UnsupportedVersion(version));
    }
    Ok(version)
}

/// Why a header failed to parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeaderError {
    /// Fewer than [`HEADER_LEN`] bytes available.
    Truncated(usize),
    /// The magic bytes do not match [`MAGIC`].
    BadMagic,
    /// A version this reader does not understand.
    UnsupportedVersion(u16),
}

impl std::fmt::Display for HeaderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeaderError::Truncated(n) => write!(f, "capture header truncated at {n} bytes"),
            HeaderError::BadMagic => write!(f, "not a DPRCAP capture (bad magic)"),
            HeaderError::UnsupportedVersion(v) => {
                write!(f, "unsupported capture format version {v} (reader supports {FORMAT_VERSION})")
            }
        }
    }
}

impl std::error::Error for HeaderError {}

// ———————————————————————————— encoding ————————————————————————————

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn widget_kind_byte(kind: WidgetKind) -> u8 {
    match kind {
        WidgetKind::Title => 0,
        WidgetKind::Button => 1,
        WidgetKind::Label => 2,
        WidgetKind::Value => 3,
        WidgetKind::Timestamp => 4,
    }
}

fn widget_kind_from(byte: u8) -> Option<WidgetKind> {
    Some(match byte {
        0 => WidgetKind::Title,
        1 => WidgetKind::Button,
        2 => WidgetKind::Label,
        3 => WidgetKind::Value,
        4 => WidgetKind::Timestamp,
        _ => return None,
    })
}

/// Serializes one event's payload (the bytes between `len` and `crc`).
pub fn encode_payload(event: &CaptureEvent) -> Vec<u8> {
    let mut out = Vec::new();
    match event {
        CaptureEvent::Can(tf) => {
            put_u64(&mut out, tf.at.as_micros());
            match tf.frame.id() {
                CanId::Standard(raw) => {
                    out.push(0);
                    put_u32(&mut out, u32::from(raw));
                }
                CanId::Extended(raw) => {
                    out.push(1);
                    put_u32(&mut out, raw);
                }
            }
            out.push(tf.frame.dlc() as u8);
            out.extend_from_slice(tf.frame.data());
        }
        CaptureEvent::Screen(frame) => {
            put_u64(&mut out, frame.at.as_micros());
            put_u64(&mut out, frame.screenshot.at.as_micros());
            put_u32(&mut out, frame.screenshot.cols as u32);
            put_u32(&mut out, frame.screenshot.rows as u32);
            put_u32(&mut out, frame.screenshot.widgets.len() as u32);
            for w in &frame.screenshot.widgets {
                out.push(widget_kind_byte(w.kind));
                put_u32(&mut out, w.x as u32);
                put_u32(&mut out, w.y as u32);
                put_u32(&mut out, w.w as u32);
                put_str(&mut out, &w.text);
            }
        }
        CaptureEvent::Action(entry) => {
            put_u64(&mut out, entry.at.as_micros());
            put_u32(&mut out, entry.position.0 as u32);
            put_u32(&mut out, entry.position.1 as u32);
            put_str(&mut out, &entry.action);
        }
        CaptureEvent::ClockSync(sample) => {
            put_u64(&mut out, sample.bus_at.as_micros());
            put_u64(&mut out, sample.camera_at.as_micros());
        }
        CaptureEvent::Meta { key, value } => {
            put_str(&mut out, key);
            put_str(&mut out, value);
        }
    }
    out
}

/// Serializes one event as a complete framed record
/// (`kind | len | payload | crc`).
pub fn encode_record(event: &CaptureEvent) -> Vec<u8> {
    let payload = encode_payload(event);
    let mut out = Vec::with_capacity(9 + payload.len());
    out.push(event.kind());
    put_u32(&mut out, payload.len() as u32);
    out.extend_from_slice(&payload);
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    out
}

// ———————————————————————————— decoding ————————————————————————————

/// A cursor over a payload being decoded; every read is bounds-checked
/// so corrupt payloads fail with an error instead of a panic.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|b| {
            u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
        })
    }

    fn micros(&mut self) -> Option<Micros> {
        self.u64().map(Micros::from_micros)
    }

    fn string(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    fn exhausted(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

/// Deserializes one event from a CRC-verified payload. Returns `None`
/// for malformed payloads (unknown enum bytes, over-long strings,
/// trailing garbage) — the reader counts those as skips.
pub fn decode_payload(kind: u8, payload: &[u8]) -> Option<CaptureEvent> {
    let mut c = Cursor::new(payload);
    let event = match kind {
        KIND_CAN => {
            let at = c.micros()?;
            let id = match c.u8()? {
                0 => CanId::standard(u16::try_from(c.u32()?).ok()?).ok()?,
                1 => CanId::extended(c.u32()?).ok()?,
                _ => return None,
            };
            let dlc = c.u8()? as usize;
            let data = c.take(dlc)?;
            let frame = CanFrame::new(id, data).ok()?;
            CaptureEvent::Can(TimestampedFrame { at, frame })
        }
        KIND_SCREEN => {
            let at = c.micros()?;
            let shot_at = c.micros()?;
            let cols = c.u32()? as usize;
            let rows = c.u32()? as usize;
            let count = c.u32()? as usize;
            // A widget needs ≥ 17 bytes; reject counts the payload
            // cannot possibly hold before allocating.
            if count > payload.len() / 17 {
                return None;
            }
            let mut screenshot = Screenshot::new(shot_at, cols, rows);
            for _ in 0..count {
                let kind = widget_kind_from(c.u8()?)?;
                let x = c.u32()? as usize;
                let y = c.u32()? as usize;
                let w = c.u32()? as usize;
                let text = c.string()?;
                screenshot.widgets.push(Widget { text, x, y, w, kind });
            }
            CaptureEvent::Screen(UiFrame { at, screenshot })
        }
        KIND_ACTION => {
            let at = c.micros()?;
            let x = c.u32()? as usize;
            let y = c.u32()? as usize;
            let action = c.string()?;
            CaptureEvent::Action(LogEntry {
                at,
                action,
                position: (x, y),
            })
        }
        KIND_CLOCK_SYNC => {
            let bus_at = c.micros()?;
            let camera_at = c.micros()?;
            CaptureEvent::ClockSync(ClockSyncSample { bus_at, camera_at })
        }
        KIND_META => {
            let key = c.string()?;
            let value = c.string()?;
            CaptureEvent::Meta { key, value }
        }
        _ => return None,
    };
    // Trailing bytes mean the payload is not what the kind says it is.
    c.exhausted().then_some(event)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_wire_is_a_valid_record() {
        // kind + len + payload verify against the trailing CRC.
        let body = &SYNC_WIRE[..13];
        let crc = u32::from_le_bytes([SYNC_WIRE[13], SYNC_WIRE[14], SYNC_WIRE[15], SYNC_WIRE[16]]);
        assert_eq!(crc32(body), crc);
        assert_eq!(SYNC_WIRE[0], KIND_SYNC);
        assert_eq!(
            u32::from_le_bytes([SYNC_WIRE[1], SYNC_WIRE[2], SYNC_WIRE[3], SYNC_WIRE[4]]),
            SYNC_PAYLOAD.len() as u32
        );
    }

    #[test]
    fn header_round_trips_and_rejects_garbage() {
        let h = encode_header();
        assert_eq!(decode_header(&h), Ok(FORMAT_VERSION));
        assert_eq!(decode_header(&h[..5]), Err(HeaderError::Truncated(5)));
        let mut bad = h;
        bad[0] ^= 0xFF;
        assert_eq!(decode_header(&bad), Err(HeaderError::BadMagic));
        let mut future = encode_header();
        future[8] = 0x63;
        assert_eq!(
            decode_header(&future),
            Err(HeaderError::UnsupportedVersion(0x63))
        );
    }

    #[test]
    fn events_round_trip() {
        let events = vec![
            CaptureEvent::Can(TimestampedFrame {
                at: Micros::from_millis(12),
                frame: CanFrame::new(CanId::standard(0x7E8).unwrap(), &[0x03, 0x41, 0x0C])
                    .unwrap(),
            }),
            CaptureEvent::Can(TimestampedFrame {
                at: Micros::from_micros(999),
                frame: CanFrame::new(CanId::extended(0x18DA_F110).unwrap(), &[]).unwrap(),
            }),
            CaptureEvent::Screen(UiFrame {
                at: Micros::from_secs(3),
                screenshot: {
                    let mut s = Screenshot::new(Micros::from_secs(3), 40, 10);
                    s.push(WidgetKind::Title, 0, 0, "Read Data Stream");
                    s.push(WidgetKind::Label, 1, 2, "Engine Speed");
                    s.push(WidgetKind::Value, 25, 2, "2497");
                    s
                },
            }),
            CaptureEvent::Action(LogEntry {
                at: Micros::from_millis(777),
                action: "Engine".to_string(),
                position: (12, 3),
            }),
            CaptureEvent::ClockSync(ClockSyncSample {
                bus_at: Micros::from_secs(9),
                camera_at: Micros::from_micros(9_000_250),
            }),
            CaptureEvent::Meta {
                key: "car".to_string(),
                value: "M".to_string(),
            },
        ];
        for event in &events {
            let payload = encode_payload(event);
            let back = decode_payload(event.kind(), &payload).expect("decodes");
            assert_eq!(&back, event);
        }
    }

    #[test]
    fn clock_sync_offset_sign() {
        let s = ClockSyncSample {
            bus_at: Micros::from_micros(100),
            camera_at: Micros::from_micros(40),
        };
        assert_eq!(s.offset_us(), -60);
    }

    #[test]
    fn truncated_payload_decodes_to_none() {
        let event = CaptureEvent::Meta {
            key: "k".into(),
            value: "v".into(),
        };
        let payload = encode_payload(&event);
        for cut in 0..payload.len() {
            assert_eq!(decode_payload(KIND_META, &payload[..cut]), None);
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let event = CaptureEvent::ClockSync(ClockSyncSample {
            bus_at: Micros::ZERO,
            camera_at: Micros::ZERO,
        });
        let mut payload = encode_payload(&event);
        payload.push(0xAB);
        assert_eq!(decode_payload(KIND_CLOCK_SYNC, &payload), None);
    }
}
