//! Recording live collection runs and reconstructing them for replay.
//!
//! [`record_report`] taps the artifacts of a `dpr-cps` collection run —
//! the sniffed [`BusLog`], camera b's [`UiFrame`]s, and the clicker's
//! [`ExecutionLog`] — and streams them into a capture as one
//! time-ordered event sequence. [`CaptureSession`] is the inverse: the
//! same artifacts reassembled from a capture stream, ready for
//! `DpReverser::analyze_capture`.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};

use dpr_can::BusLog;
use dpr_cps::script::ExecutionLog;
use dpr_cps::CollectionReport;
use dpr_tool::UiFrame;

use crate::format::{CaptureEvent, ClockSyncSample};
use crate::reader::{CaptureReader, CorruptionStats};
use crate::writer::CaptureWriter;

/// Emit one clock-sync sample per this many screen frames.
pub const CLOCK_SYNC_EVERY: usize = 16;

/// A collection run reconstructed from a capture stream — the exact
/// inputs the analysis pipeline consumes, minus the live vehicle (ground
/// truth never leaves the garage; a recording only carries what the
/// paper's sniffer and cameras could see).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CaptureSession {
    /// The OBD-port CAN capture.
    pub log: BusLog,
    /// Camera b's timestamped frames, in capture order.
    pub frames: Vec<UiFrame>,
    /// The clicker's executed-action log.
    pub execution: ExecutionLog,
    /// Clock-sync samples pairing bus time with camera time.
    pub clock_syncs: Vec<ClockSyncSample>,
    /// Session metadata (car profile, seed, tool…), last write wins.
    pub meta: BTreeMap<String, String>,
}

impl CaptureSession {
    /// Folds one replayed event into the session.
    pub fn absorb(&mut self, event: CaptureEvent) {
        match event {
            CaptureEvent::Can(tf) => self.log.record(tf.at, tf.frame),
            CaptureEvent::Screen(frame) => self.frames.push(frame),
            CaptureEvent::Action(entry) => {
                self.execution.record(entry.at, entry.action, entry.position)
            }
            CaptureEvent::ClockSync(sample) => self.clock_syncs.push(sample),
            CaptureEvent::Meta { key, value } => {
                self.meta.insert(key, value);
            }
        }
    }

    /// Median camera-minus-bus clock offset across the sync samples, in
    /// microseconds. `None` without samples.
    pub fn estimated_offset_us(&self) -> Option<i64> {
        if self.clock_syncs.is_empty() {
            return None;
        }
        let mut offsets: Vec<i64> = self.clock_syncs.iter().map(|s| s.offset_us()).collect();
        offsets.sort_unstable();
        Some(offsets[offsets.len() / 2])
    }
}

impl<R: Read> CaptureReader<R> {
    /// Drains the stream into a [`CaptureSession`], returning it with
    /// the final damage tallies. Publishes the `capture.crc_skipped`
    /// and `capture.records_read` telemetry counters.
    pub fn read_session(self) -> (CaptureSession, CorruptionStats) {
        let (session, stats, _) = self.read_session_reusing();
        (session, stats)
    }

    /// [`read_session`](CaptureReader::read_session) that also hands
    /// back the reader's internal buffer, so the caller can thread it
    /// into the next [`CaptureReader::with_buffer`] and replay captures
    /// with zero steady-state buffer allocation.
    pub fn read_session_reusing(mut self) -> (CaptureSession, CorruptionStats, Vec<u8>) {
        let mut session = CaptureSession::default();
        while let Some(event) = self.next_event() {
            session.absorb(event);
        }
        let stats = *self.stats();
        stats.publish_telemetry();
        (session, stats, self.into_buffer())
    }
}

/// Streams a live collection run into a capture, interleaving the three
/// artifact streams in bus-time order (ties resolve CAN → screen →
/// action, matching the order a sniffer ahead of a camera would flush)
/// and sampling a clock-sync record every [`CLOCK_SYNC_EVERY`] screen
/// frames. The camera timestamp of a sync sample is the frame's
/// timestamp-overlay value.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn record_report<W: Write>(
    report: &CollectionReport,
    writer: &mut CaptureWriter<W>,
) -> io::Result<()> {
    let mut can = report.log.iter().peekable();
    let mut frames = report.frames.iter().enumerate().peekable();
    let mut actions = report.execution.entries.iter().peekable();

    loop {
        let can_at = can.peek().map(|e| e.at);
        let frame_at = frames.peek().map(|(_, f)| f.at);
        let action_at = actions.peek().map(|e| e.at);
        let Some(next_at) = [can_at, frame_at, action_at].into_iter().flatten().min() else {
            break;
        };
        if can_at == Some(next_at) {
            let entry = can.next().expect("peeked");
            writer.write_can(entry.at, entry.frame.clone())?;
        } else if frame_at == Some(next_at) {
            let (idx, frame) = frames.next().expect("peeked");
            writer.write_screen(frame)?;
            if idx % CLOCK_SYNC_EVERY == 0 {
                writer.write_clock_sync(ClockSyncSample {
                    bus_at: frame.at,
                    camera_at: frame.screenshot.at,
                })?;
            }
        } else {
            let entry = actions.next().expect("peeked");
            writer.write_action(entry)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpr_can::{CanFrame, CanId, Micros};
    use dpr_cps::{collect_vehicle, CollectConfig};
    use dpr_tool::{Screenshot, ToolProfile, ToolSession, WidgetKind};
    use dpr_vehicle::profiles::{self, CarId};

    #[test]
    fn absorb_rebuilds_every_artifact() {
        let mut session = CaptureSession::default();
        session.absorb(CaptureEvent::Meta {
            key: "car".into(),
            value: "M".into(),
        });
        session.absorb(CaptureEvent::Can(dpr_can::TimestampedFrame {
            at: Micros::from_millis(1),
            frame: CanFrame::new(CanId::standard(0x7E0).unwrap(), &[0x02]).unwrap(),
        }));
        let mut shot = Screenshot::new(Micros::from_millis(2), 40, 10);
        shot.push(WidgetKind::Title, 0, 0, "ECU List");
        session.absorb(CaptureEvent::Screen(UiFrame {
            at: Micros::from_millis(2),
            screenshot: shot,
        }));
        session.absorb(CaptureEvent::Action(dpr_cps::script::LogEntry {
            at: Micros::from_millis(3),
            action: "Engine".into(),
            position: (4, 5),
        }));
        session.absorb(CaptureEvent::ClockSync(ClockSyncSample {
            bus_at: Micros::from_millis(4),
            camera_at: Micros::from_millis(5),
        }));
        assert_eq!(session.log.len(), 1);
        assert_eq!(session.frames.len(), 1);
        assert_eq!(session.execution.entries.len(), 1);
        assert_eq!(session.meta.get("car").map(String::as_str), Some("M"));
        assert_eq!(session.estimated_offset_us(), Some(1000));
    }

    #[test]
    fn record_then_read_round_trips_a_live_collection() {
        let car = profiles::build(CarId::M, 31);
        let spec = profiles::spec(CarId::M);
        let session = ToolSession::new(car, ToolProfile::by_name(spec.tool).unwrap());
        let report = collect_vehicle(
            session,
            &CollectConfig {
                read_wait: Micros::from_secs(2),
                ..CollectConfig::default()
            },
        )
        .unwrap();

        let mut writer = CaptureWriter::new(Vec::new()).unwrap();
        writer.write_meta("car", "M").unwrap();
        record_report(&report, &mut writer).unwrap();
        let bytes = writer.finish().unwrap();

        let reader = CaptureReader::new(bytes.as_slice()).unwrap();
        let (replayed, stats) = reader.read_session();
        assert!(stats.is_clean(), "{stats:?}");
        assert_eq!(replayed.log, report.log, "CAN capture must replay exactly");
        assert_eq!(replayed.frames, report.frames, "UI frames must replay exactly");
        assert_eq!(replayed.execution, report.execution);
        assert!(!replayed.clock_syncs.is_empty());
        // Simulated clocks are NTP-perfect: zero offset.
        assert_eq!(replayed.estimated_offset_us(), Some(0));
        assert_eq!(replayed.meta.get("car").map(String::as_str), Some("M"));
    }
}
