//! Integration tests for the telemetry layer: the behaviours the rest of
//! the workspace relies on, exercised through the public API only.

use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use dpr_telemetry::{
    scoped, summary, Collector, Histogram, JsonLines, PipelineTrace, Registry, Sink, Span,
    SpanLine, SpanRecord, TraceBuilder,
};

#[test]
fn histogram_buckets_and_quantiles() {
    let h = Histogram::with_bounds(vec![10.0, 100.0, 1000.0]);
    for v in [1.0, 5.0, 50.0, 500.0, 5000.0] {
        h.record(v);
    }
    let snap = h.snapshot();
    assert_eq!(snap.count, 5);
    // Two below 10, one in [10, 100), one in [100, 1000), one overflow.
    assert_eq!(snap.counts, vec![2, 1, 1, 1]);
    assert!((snap.sum - 5556.0).abs() < 1e-9);
    assert!((snap.mean() - 1111.2).abs() < 1e-9);
    // The median interpolates inside the second bucket (10..100).
    let p50 = snap.quantile(0.5);
    assert!((10.0..=100.0).contains(&p50), "p50 = {p50}");
    // The extreme quantile lands in the overflow bucket.
    assert!(snap.quantile(0.999) >= 1000.0);
}

#[test]
fn nested_spans_report_dotted_paths_and_depths() {
    let reg = Arc::new(Registry::new());
    let collector = Arc::new(Collector::new());
    reg.add_sink(collector.clone());
    scoped(Arc::clone(&reg), || {
        let _run = Span::enter("run");
        {
            let _outer = Span::enter("stage");
            let _inner = Span::enter("step");
        }
    });
    let records = collector.records();
    let paths: Vec<&str> = records.iter().map(|r| r.path.as_str()).collect();
    assert_eq!(paths, ["run.stage.step", "run.stage", "run"]);
    let depths: Vec<usize> = records.iter().map(|r| r.depth).collect();
    assert_eq!(depths, [3, 2, 1]);
    // Each span also lands in the registry's span histograms.
    let snap = reg.snapshot();
    assert_eq!(snap.histograms["span.run.stage.step"].count, 1);
}

#[test]
fn concurrent_counters_lose_no_increments() {
    let reg = Arc::new(Registry::new());
    let threads = 8;
    let per_thread = 10_000u64;
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let reg = Arc::clone(&reg);
            std::thread::spawn(move || {
                // Each thread re-enters the scope: the scope stack is
                // thread-local, the registry behind it is shared.
                scoped(reg, || {
                    for _ in 0..per_thread {
                        dpr_telemetry::counter("stress.hits").inc(1);
                    }
                })
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker thread");
    }
    assert_eq!(
        reg.snapshot().counters["stress.hits"],
        threads as u64 * per_thread
    );
}

#[test]
fn concurrent_histogram_recording_is_consistent() {
    let reg = Arc::new(Registry::new());
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let reg = Arc::clone(&reg);
            std::thread::spawn(move || {
                for i in 0..1000 {
                    reg.histogram("stress.values").record(f64::from(t * 1000 + i));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker thread");
    }
    let snap = reg.snapshot();
    let h = &snap.histograms["stress.values"];
    assert_eq!(h.count, 4000);
    assert_eq!(h.counts.iter().sum::<u64>(), 4000);
    // Sum of 0..4000 under concurrent CAS accumulation stays exact.
    assert!((h.sum - (0..4000).map(f64::from).sum::<f64>()).abs() < 1e-6);
}

/// A growable buffer usable as a `Box<dyn Write + Send>` sink target.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn json_lines_round_trips_spans_and_traces() {
    let buf = SharedBuf::default();
    let sink = JsonLines::new(Box::new(buf.clone()));
    sink.span_closed(&SpanRecord {
        name: "ocr",
        path: "pipeline.ocr".into(),
        depth: 2,
        wall: Duration::from_micros(1234),
        start_us: 77,
        tid: 3,
        thread: Some("gp-worker-2".to_string()),
    });

    let reg = Arc::new(Registry::new());
    reg.counter("ocr.readings_read").inc(42);
    let mut builder = TraceBuilder::new(Arc::clone(&reg));
    builder.stage("ocr", || reg.counter("ocr.readings_read").inc(8));
    let trace = builder.finish();
    sink.write_record(&trace).expect("write trace line");

    let text = String::from_utf8(buf.0.lock().unwrap().clone()).expect("utf8");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2);

    let span: SpanLine = dpr_telemetry::json::from_str(lines[0]).expect("span line parses");
    assert_eq!(span.kind, "span");
    assert_eq!(span.path, "pipeline.ocr");
    assert_eq!(span.wall_us, 1234);
    assert_eq!(span.start_us, 77);
    assert_eq!(span.tid, 3);

    let parsed: PipelineTrace = dpr_telemetry::json::from_str(lines[1]).expect("trace parses");
    assert_eq!(parsed.stages.len(), 1);
    assert_eq!(parsed.stages[0].name, "ocr");
    assert_eq!(parsed.stages[0].counters["ocr.readings_read"], 8);
    assert_eq!(parsed.counters["ocr.readings_read"], 8);
}

#[test]
fn summary_renders_trace_counters() {
    let reg = Arc::new(Registry::new());
    let mut builder = TraceBuilder::new(Arc::clone(&reg));
    builder.stage("transport", || {
        reg.counter("transport.isotp.reassembled").inc(430);
    });
    let trace = builder.finish();
    let text = summary::render_trace(&trace);
    assert!(text.contains("transport"));
    assert!(text.contains("+430"));
    assert!(text.contains("total"));
}
