//! Edge cases for the metrics primitives: empty and single-sample
//! histograms, observations near the `u64` range limit, and the
//! `format_us` unit rollovers.

use dpr_telemetry::summary::format_us;
use dpr_telemetry::{Histogram, Registry};

#[test]
fn empty_histogram_snapshot_is_all_zero() {
    let h = Histogram::with_bounds(vec![1.0, 10.0, 100.0]);
    let snap = h.snapshot();
    assert_eq!(snap.count, 0);
    assert_eq!(snap.sum, 0.0);
    assert_eq!(snap.counts, vec![0, 0, 0, 0], "bounds plus overflow");
    assert_eq!(snap.mean(), 0.0);
    assert_eq!(snap.quantile(0.5), 0.0);
    assert_eq!(snap.quantile(1.0), 0.0);
}

#[test]
fn single_sample_lands_in_one_bucket_and_dominates_stats() {
    let h = Histogram::with_bounds(vec![1.0, 10.0, 100.0]);
    h.record(7.0);
    let snap = h.snapshot();
    assert_eq!(snap.count, 1);
    assert_eq!(snap.sum, 7.0);
    assert_eq!(snap.counts, vec![0, 1, 0, 0]);
    assert_eq!(snap.mean(), 7.0);
    // Every quantile interpolates inside the one occupied bucket (1, 10].
    for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
        let v = snap.quantile(q);
        assert!((1.0..=10.0).contains(&v), "q{q} = {v} outside its bucket");
    }
}

#[test]
fn sample_on_a_bound_counts_into_that_bounds_bucket() {
    // `le`-style buckets: a value exactly equal to a bound belongs to it.
    let h = Histogram::with_bounds(vec![1.0, 10.0]);
    h.record(1.0);
    h.record(10.0);
    assert_eq!(h.snapshot().counts, vec![1, 1, 0]);
}

#[test]
fn u64_overflow_adjacent_values_stay_finite() {
    let h = Histogram::with_bounds(vec![1.0, 1e9]);
    let huge = u64::MAX as f64; // ~1.8e19, far past every finite bound
    h.record(huge);
    h.record(huge);
    h.record(0.5);
    let snap = h.snapshot();
    assert_eq!(snap.count, 3);
    assert_eq!(snap.counts, vec![1, 0, 2], "huge values hit the overflow bucket");
    assert!(snap.sum.is_finite());
    assert_eq!(snap.sum, huge + huge + 0.5);
    assert!(snap.mean().is_finite());
    // Overflow-bucket mass is attributed to the last finite bound, so the
    // estimate stays on the finite axis instead of inventing +Inf.
    assert_eq!(snap.quantile(1.0), 1e9);
}

#[test]
fn counter_saturates_near_u64_max_instead_of_panicking() {
    let reg = Registry::new();
    let c = reg.counter("edge.big");
    c.inc(u64::MAX - 1);
    c.inc(1);
    assert_eq!(c.get(), u64::MAX);
    // One more wraps (fetch_add semantics) — record the contract so a
    // future change to saturating arithmetic is a conscious one.
    c.inc(1);
    assert_eq!(c.get(), 0);
}

#[test]
fn nan_and_infinite_bounds_are_sanitized_away() {
    let h = Histogram::with_bounds(vec![f64::INFINITY, 5.0, f64::NEG_INFINITY, 5.0, 1.0]);
    h.record(3.0);
    let snap = h.snapshot();
    assert_eq!(snap.bounds, vec![1.0, 5.0], "sorted, deduped, finite only");
    assert_eq!(snap.counts, vec![0, 1, 0]);
}

#[test]
fn format_us_rolls_units_at_the_documented_boundaries() {
    assert_eq!(format_us(0), "0µs");
    assert_eq!(format_us(999), "999µs");
    // 1ms rollover: the first value rendered in milliseconds.
    assert_eq!(format_us(1_000), "1.00ms");
    assert_eq!(format_us(1_499), "1.50ms");
    // Just under the 1s rollover, still milliseconds (rounds up in text).
    assert_eq!(format_us(999_999), "1000.00ms");
    // 1s rollover: the first value rendered in seconds.
    assert_eq!(format_us(1_000_000), "1.00s");
    assert_eq!(format_us(2_500_000), "2.50s");
    assert_eq!(format_us(u64::MAX), format!("{:.2}s", u64::MAX as f64 / 1e6));
}
