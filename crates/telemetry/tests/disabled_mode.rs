//! Disabled-mode behaviour, isolated in its own test binary: toggling
//! the global enable flag must not race the other integration tests.

use std::sync::Arc;

use dpr_telemetry::{scoped, Collector, Registry, Span};

#[test]
fn disabled_mode_is_inert() {
    let was = dpr_telemetry::set_enabled(false);
    let reg = Arc::new(Registry::new());
    let collector = Arc::new(Collector::new());
    reg.add_sink(collector.clone());
    scoped(Arc::clone(&reg), || {
        let span = Span::enter("off");
        assert_eq!(span.path(), "");
        dpr_telemetry::counter("off.hits").inc(5);
        dpr_telemetry::gauge("off.level").set(3);
        dpr_telemetry::histogram("off.sizes").record(9.0);
    });
    dpr_telemetry::set_enabled(was);
    let snap = reg.snapshot();
    assert!(snap.counters.get("off.hits").is_none_or(|&v| v == 0));
    assert!(collector.records().is_empty());
}
