//! RAII wall-clock spans with thread-local nesting.
//!
//! [`Span::enter`] pushes a name onto the current thread's span stack and
//! starts a monotonic clock. Dropping the guard pops the stack, records the
//! elapsed time into the active registry's `span.<path>` histogram (in
//! microseconds), and delivers a [`crate::SpanRecord`] to every sink
//! attached to that registry. The *path* is the dot-joined stack, so a
//! span `"ocr"` opened inside `"pipeline"` reports as `pipeline.ocr`.

use crate::SpanRecord;
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// An open span. Created by [`Span::enter`]; closing happens on drop.
#[must_use = "a span measures until dropped; binding it to _ closes it immediately"]
#[derive(Debug)]
pub struct Span {
    state: Option<OpenSpan>,
}

#[derive(Debug)]
struct OpenSpan {
    name: &'static str,
    path: String,
    depth: usize,
    started: Instant,
}

impl Span {
    /// Opens a named span on the current thread.
    ///
    /// Returns an inert guard (no clock, no record) while telemetry is
    /// disabled.
    pub fn enter(name: &'static str) -> Span {
        if !crate::enabled() {
            return Span { state: None };
        }
        let (path, depth) = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            stack.push(name);
            (stack.join("."), stack.len())
        });
        Span {
            state: Some(OpenSpan {
                name,
                path,
                depth,
                started: Instant::now(),
            }),
        }
    }

    /// The dot-joined path of this span, e.g. `pipeline.ocr`.
    /// Empty for an inert guard.
    pub fn path(&self) -> &str {
        self.state.as_ref().map_or("", |s| s.path.as_str())
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(open) = self.state.take() else {
            return;
        };
        let wall = open.started.elapsed();
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Pop our own frame; tolerate a torn stack if an inner guard
            // leaked across threads or was forgotten.
            if stack.last() == Some(&open.name) {
                stack.pop();
            }
        });
        let registry = crate::registry();
        registry
            .histogram(&format!("span.{}", open.path))
            .record_duration(wall);
        registry.notify_span(&SpanRecord {
            name: open.name,
            path: open.path,
            depth: open.depth,
            wall,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{scoped, Collector, Registry};
    use std::sync::Arc;

    #[test]
    fn nesting_builds_dotted_paths() {
        let reg = Arc::new(Registry::new());
        let collector = Arc::new(Collector::new());
        reg.add_sink(collector.clone());
        scoped(Arc::clone(&reg), || {
            let outer = Span::enter("pipeline");
            assert_eq!(outer.path(), "pipeline");
            {
                let inner = Span::enter("ocr");
                assert_eq!(inner.path(), "pipeline.ocr");
            }
            {
                let inner = Span::enter("gp");
                assert_eq!(inner.path(), "pipeline.gp");
            }
        });
        let paths: Vec<String> = collector
            .records()
            .iter()
            .map(|r| r.path.clone())
            .collect();
        assert_eq!(paths, ["pipeline.ocr", "pipeline.gp", "pipeline"]);
        let snap = reg.snapshot();
        assert!(snap.histograms.contains_key("span.pipeline.ocr"));
        assert_eq!(snap.histograms["span.pipeline"].count, 1);
    }
}
