//! RAII wall-clock spans with thread-local nesting.
//!
//! [`Span::enter`] pushes a name onto the current thread's span stack and
//! starts a monotonic clock. Dropping the guard pops the stack, records the
//! elapsed time into the active registry's `span.<path>` histogram (in
//! microseconds), and delivers a [`crate::SpanRecord`] to every sink
//! attached to that registry. The *path* is the dot-joined stack, so a
//! span `"ocr"` opened inside `"pipeline"` reports as `pipeline.ocr`.

use crate::SpanRecord;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Stable per-thread identity: a process-unique small integer plus the
    /// OS thread name captured on first use.
    static TID: (u64, Option<String>) = (
        NEXT_TID.fetch_add(1, Ordering::Relaxed),
        std::thread::current().name().map(str::to_string),
    );
}

/// A stable, process-unique id for the current thread.
///
/// Unlike [`std::thread::ThreadId`], this is a plain small `u64` assigned
/// in first-use order, so it can be serialized directly as the `tid` of a
/// trace-event row. Ids are never reused within a process.
pub fn thread_id() -> u64 {
    TID.with(|t| t.0)
}

fn thread_identity() -> (u64, Option<String>) {
    TID.with(|t| (t.0, t.1.clone()))
}

/// An open span. Created by [`Span::enter`]; closing happens on drop.
#[must_use = "a span measures until dropped; binding it to _ closes it immediately"]
#[derive(Debug)]
pub struct Span {
    state: Option<OpenSpan>,
}

#[derive(Debug)]
struct OpenSpan {
    name: &'static str,
    path: String,
    depth: usize,
    started: Instant,
}

impl Span {
    /// Opens a named span on the current thread.
    ///
    /// Returns an inert guard (no clock, no record) while telemetry is
    /// disabled.
    pub fn enter(name: &'static str) -> Span {
        if !crate::enabled() {
            return Span { state: None };
        }
        let (path, depth) = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            stack.push(name);
            (stack.join("."), stack.len())
        });
        Span {
            state: Some(OpenSpan {
                name,
                path,
                depth,
                started: Instant::now(),
            }),
        }
    }

    /// The dot-joined path of this span, e.g. `pipeline.ocr`.
    /// Empty for an inert guard.
    pub fn path(&self) -> &str {
        self.state.as_ref().map_or("", |s| s.path.as_str())
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(open) = self.state.take() else {
            return;
        };
        let wall = open.started.elapsed();
        let registry = crate::registry();
        let torn = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Pop our own frame. A mismatch means the stack is torn — an
            // inner guard leaked across threads, was forgotten, or guards
            // dropped out of order. The frame is left in place so the
            // remaining guards still pop their own names.
            if stack.last() == Some(&open.name) {
                stack.pop();
                false
            } else {
                true
            }
        });
        if torn {
            registry.counter("telemetry.span_stack_torn").inc(1);
        }
        let (tid, thread) = thread_identity();
        registry
            .histogram(&format!("span.{}", open.path))
            .record_duration(wall);
        registry.notify_span(&SpanRecord {
            name: open.name,
            path: open.path,
            depth: open.depth,
            wall,
            start_us: open
                .started
                .saturating_duration_since(registry.epoch())
                .as_micros() as u64,
            tid,
            thread,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{scoped, Collector, Registry};
    use std::sync::Arc;

    #[test]
    fn nesting_builds_dotted_paths() {
        let reg = Arc::new(Registry::new());
        let collector = Arc::new(Collector::new());
        reg.add_sink(collector.clone());
        scoped(Arc::clone(&reg), || {
            let outer = Span::enter("pipeline");
            assert_eq!(outer.path(), "pipeline");
            {
                let inner = Span::enter("ocr");
                assert_eq!(inner.path(), "pipeline.ocr");
            }
            {
                let inner = Span::enter("gp");
                assert_eq!(inner.path(), "pipeline.gp");
            }
        });
        let paths: Vec<String> = collector
            .records()
            .iter()
            .map(|r| r.path.clone())
            .collect();
        assert_eq!(paths, ["pipeline.ocr", "pipeline.gp", "pipeline"]);
        let snap = reg.snapshot();
        assert!(snap.histograms.contains_key("span.pipeline.ocr"));
        assert_eq!(snap.histograms["span.pipeline"].count, 1);
        // No tear: guards closed innermost-first.
        assert!(!snap.counters.contains_key("telemetry.span_stack_torn"));
    }

    #[test]
    fn records_carry_thread_identity_and_epoch_relative_start() {
        let reg = Arc::new(Registry::new());
        let collector = Arc::new(Collector::new());
        reg.add_sink(collector.clone());
        scoped(Arc::clone(&reg), || {
            let _span = Span::enter("work");
        });
        let records = collector.records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].tid, crate::thread_id());
        // The span opened after the registry was created, so its start is
        // on the registry's timeline (and sane: within this test's run).
        assert!(records[0].start_us < 60_000_000);
    }

    #[test]
    fn torn_stack_is_counted_not_dropped() {
        let reg = Arc::new(Registry::new());
        let collector = Arc::new(Collector::new());
        reg.add_sink(collector.clone());
        scoped(Arc::clone(&reg), || {
            // Forge a torn stack: drop the outer guard while the inner one
            // is still open. The outer pop sees "inner" on top — a tear.
            let outer = Span::enter("outer");
            let inner = Span::enter("inner");
            drop(outer);
            drop(inner);
        });
        let snap = reg.snapshot();
        assert_eq!(snap.counters.get("telemetry.span_stack_torn"), Some(&1));
        // Both spans were still recorded and delivered despite the tear.
        let paths: Vec<String> = collector
            .records()
            .iter()
            .map(|r| r.path.clone())
            .collect();
        assert_eq!(paths, ["outer", "outer.inner"]);
        assert_eq!(snap.histograms["span.outer.inner"].count, 1);
    }
}
