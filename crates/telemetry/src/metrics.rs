//! Named counters, gauges, and fixed-bucket histograms behind a
//! thread-safe [`Registry`].
//!
//! Lookup interns the metric by name under a `parking_lot` lock; the handle
//! that comes back is a clone of an `Arc`'d atomic, so recording is a
//! single `fetch_add`/`store` with no lock held. [`Registry::snapshot`]
//! freezes everything into plain sorted maps for serialization, diffing,
//! and rendering.

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonically increasing event count.
///
/// Cloning shares the underlying cell. A `noop` counter has no cell and
/// drops every increment — that is what the facade hands out while
/// telemetry is disabled.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// A detached counter that ignores all increments.
    pub fn noop() -> Self {
        Counter { cell: None }
    }

    /// Adds one.
    pub fn inc(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current value (0 for a noop counter).
    pub fn get(&self) -> u64 {
        self.cell
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// A value that can move both ways (e.g. an estimated alignment offset).
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Option<Arc<AtomicI64>>,
}

impl Gauge {
    /// A detached gauge that ignores all updates.
    pub fn noop() -> Self {
        Gauge { cell: None }
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        if let Some(cell) = &self.cell {
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// Adds (or subtracts) a delta.
    pub fn add(&self, delta: i64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// The current value (0 for a noop gauge).
    pub fn get(&self) -> i64 {
        self.cell
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

struct HistogramCore {
    /// Ascending upper bounds; an implicit `+inf` bucket follows the last.
    bounds: Vec<f64>,
    /// One count per bound, plus the overflow bucket.
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of recorded values, stored as `f64` bits and updated by CAS.
    sum_bits: AtomicU64,
}

/// A fixed-bucket histogram of `f64` observations.
///
/// Cloning shares the underlying cells. Recording is two relaxed atomic
/// adds plus a CAS loop for the running sum.
#[derive(Clone, Default)]
pub struct Histogram {
    core: Option<Arc<HistogramCore>>,
}

impl Histogram {
    /// A detached histogram that ignores all observations.
    pub fn noop() -> Self {
        Histogram { core: None }
    }

    /// The default value buckets: a 1–2–5 ladder from 1 to 1e9, suitable
    /// for byte sizes, row counts, and microsecond durations alike.
    pub fn default_bounds() -> Vec<f64> {
        let mut bounds = Vec::with_capacity(28);
        let mut decade = 1.0f64;
        while decade <= 1e9 {
            for mult in [1.0, 2.0, 5.0] {
                bounds.push(decade * mult);
            }
            decade *= 10.0;
        }
        bounds
    }

    /// A standalone histogram with the given ascending bucket bounds
    /// (plus an implicit overflow bucket).
    ///
    /// # Panics
    ///
    /// Panics if no finite bound remains after sanitizing.
    pub fn with_bounds(mut bounds: Vec<f64>) -> Self {
        bounds.retain(|b| b.is_finite());
        bounds.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite bounds"));
        bounds.dedup();
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            core: Some(Arc::new(HistogramCore {
                bounds,
                counts,
                count: AtomicU64::new(0),
                sum_bits: AtomicU64::new(0f64.to_bits()),
            })),
        }
    }

    /// Records one observation.
    pub fn record(&self, v: f64) {
        let Some(core) = &self.core else { return };
        let idx = core.bounds.partition_point(|&b| b < v);
        core.counts[idx].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        let mut current = core.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + v).to_bits();
            match core.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => current = actual,
            }
        }
    }

    /// Records a duration in microseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_secs_f64() * 1e6);
    }

    /// Freezes the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        match &self.core {
            None => HistogramSnapshot::default(),
            Some(core) => HistogramSnapshot {
                bounds: core.bounds.clone(),
                counts: core
                    .counts
                    .iter()
                    .map(|c| c.load(Ordering::Relaxed))
                    .collect(),
                count: core.count.load(Ordering::Relaxed),
                sum: f64::from_bits(core.sum_bits.load(Ordering::Relaxed)),
            },
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &snap.count)
            .field("sum", &snap.sum)
            .finish()
    }
}

/// A frozen histogram: bucket bounds, per-bucket counts (the final entry is
/// the overflow bucket), total count, and running sum.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Ascending upper bounds.
    pub bounds: Vec<f64>,
    /// One count per bound, plus the trailing overflow bucket.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// The mean observed value, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The bucket-level increase since `earlier`: element-wise
    /// saturating subtraction of the per-bucket counts, total count, and
    /// sum. When the bound vectors disagree (the histogram was recreated
    /// with different buckets, or `earlier` is empty), `earlier` is
    /// treated as all-zero and the current state is returned whole.
    ///
    /// This is what turns a pair of cumulative snapshots into a
    /// *windowed* distribution: the delta's [`quantile`]
    /// (HistogramSnapshot::quantile) estimates percentiles over only the
    /// observations recorded between the two snapshots.
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        if earlier.bounds != self.bounds || earlier.counts.len() != self.counts.len() {
            return self.clone();
        }
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .zip(&earlier.counts)
                .map(|(now, before)| now.saturating_sub(*before))
                .collect(),
            count: self.count.saturating_sub(earlier.count),
            sum: (self.sum - earlier.sum).max(0.0),
        }
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) by linear interpolation
    /// within the bucket that straddles the target rank. Observations in
    /// the overflow bucket are attributed to the last finite bound.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 || self.bounds.is_empty() {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut cumulative = 0u64;
        for (idx, &bucket_count) in self.counts.iter().enumerate() {
            let next = cumulative + bucket_count;
            if (next as f64) >= target && bucket_count > 0 {
                let last = *self.bounds.last().expect("non-empty bounds");
                let upper = self.bounds.get(idx).copied().unwrap_or(last);
                let lower = if idx == 0 {
                    0.0
                } else {
                    self.bounds[(idx - 1).min(self.bounds.len() - 1)]
                };
                let within = (target - cumulative as f64) / bucket_count as f64;
                return lower + within.clamp(0.0, 1.0) * (upper - lower);
            }
            cumulative = next;
        }
        *self.bounds.last().expect("non-empty bounds")
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// The interning table for named metrics, plus the list of span sinks.
///
/// A registry is cheap to create; the pipeline makes a fresh one per run
/// (via `dpr_telemetry::scoped`) so its numbers are exact, while ad-hoc
/// instrumentation lands in the process-wide global registry.
pub struct Registry {
    inner: RwLock<RegistryInner>,
    sinks: RwLock<Vec<Arc<dyn crate::Sink>>>,
    epoch: Instant,
}

impl Default for Registry {
    fn default() -> Self {
        Registry {
            inner: RwLock::default(),
            sinks: RwLock::default(),
            epoch: Instant::now(),
        }
    }
}

impl Registry {
    /// An empty registry with no sinks.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The instant this registry was created. Span start times
    /// ([`crate::SpanRecord::start_us`]) are relative to it, giving every
    /// thread of a run a shared timeline that trace exporters can lay out.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Interns (or retrieves) the named counter.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = self.inner.read().counters.get(name) {
            return c.clone();
        }
        self.inner
            .write()
            .counters
            .entry(name.to_string())
            .or_insert_with(|| Counter {
                cell: Some(Arc::new(AtomicU64::new(0))),
            })
            .clone()
    }

    /// Interns (or retrieves) the named gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(g) = self.inner.read().gauges.get(name) {
            return g.clone();
        }
        self.inner
            .write()
            .gauges
            .entry(name.to_string())
            .or_insert_with(|| Gauge {
                cell: Some(Arc::new(AtomicI64::new(0))),
            })
            .clone()
    }

    /// Interns (or retrieves) the named histogram with default bounds.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, Histogram::default_bounds())
    }

    /// Interns (or retrieves) the named histogram; `bounds` applies only on
    /// first creation.
    pub fn histogram_with(&self, name: &str, bounds: Vec<f64>) -> Histogram {
        if let Some(h) = self.inner.read().histograms.get(name) {
            return h.clone();
        }
        self.inner
            .write()
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::with_bounds(bounds))
            .clone()
    }

    /// Attaches a sink; every span closed under this registry is delivered
    /// to it.
    pub fn add_sink(&self, sink: Arc<dyn crate::Sink>) {
        self.sinks.write().push(sink);
    }

    pub(crate) fn notify_span(&self, record: &crate::SpanRecord) {
        for sink in self.sinks.read().iter() {
            sink.span_closed(record);
        }
    }

    /// Freezes every metric into plain sorted maps.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.read();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.read();
        f.debug_struct("Registry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

/// A frozen view of a whole registry.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// A copy with every metric whose name starts with one of `prefixes`
    /// removed, across counters, gauges, and histograms.
    ///
    /// The determinism suite uses this to ignore wall-clock- and
    /// scheduling-dependent families (`span.`, `par.`, `prof.`) while
    /// still requiring exact equality for everything else.
    pub fn without_prefixes(&self, prefixes: &[&str]) -> MetricsSnapshot {
        let keep = |name: &str| !prefixes.iter().any(|p| name.starts_with(p));
        let mut view = self.clone();
        view.counters.retain(|name, _| keep(name));
        view.gauges.retain(|name, _| keep(name));
        view.histograms.retain(|name, _| keep(name));
        view
    }

    /// Counter increases since `earlier` (names absent earlier count from
    /// zero; decreases are clamped to zero).
    pub fn counter_deltas_since(&self, earlier: &MetricsSnapshot) -> BTreeMap<String, u64> {
        self.counters
            .iter()
            .filter_map(|(name, &now)| {
                let before = earlier.counters.get(name).copied().unwrap_or(0);
                let delta = now.saturating_sub(before);
                (delta > 0).then(|| (name.clone(), delta))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let reg = Registry::new();
        let c = reg.counter("x");
        c.inc(2);
        reg.counter("x").inc(3);
        assert_eq!(reg.counter("x").get(), 5);
        let g = reg.gauge("y");
        g.set(-4);
        g.add(1);
        assert_eq!(reg.gauge("y").get(), -3);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let reg = Registry::new();
        let h = reg.histogram_with("sizes", vec![1.0, 10.0, 100.0]);
        for v in [0.5, 1.0, 5.0, 50.0, 5000.0] {
            h.record(v);
        }
        let snap = h.snapshot();
        // partition_point(b < v): v==1.0 lands in the first bucket (<= 1.0).
        assert_eq!(snap.counts, vec![2, 1, 1, 1]);
        assert_eq!(snap.count, 5);
        assert!((snap.sum - 5056.5).abs() < 1e-9);
    }

    #[test]
    fn without_prefixes_filters_every_kind() {
        let reg = Registry::new();
        reg.counter("par.calls").inc(1);
        reg.counter("gp.fits").inc(2);
        reg.gauge("prof.live").set(3);
        reg.gauge("gp.depth").set(4);
        reg.histogram("span.pipeline").record(1.0);
        reg.histogram("gp.sizes").record(2.0);
        let view = reg.snapshot().without_prefixes(&["par.", "prof.", "span."]);
        assert_eq!(
            view.counters.keys().collect::<Vec<_>>(),
            ["gp.fits"]
        );
        assert_eq!(view.gauges.keys().collect::<Vec<_>>(), ["gp.depth"]);
        assert_eq!(
            view.histograms.keys().collect::<Vec<_>>(),
            ["gp.sizes"]
        );
    }

    #[test]
    fn histogram_delta_since_subtracts_buckets() {
        let reg = Registry::new();
        let h = reg.histogram_with("lat", vec![10.0, 100.0]);
        h.record(5.0);
        h.record(50.0);
        let earlier = h.snapshot();
        h.record(50.0);
        h.record(5000.0);
        let delta = h.snapshot().delta_since(&earlier);
        assert_eq!(delta.counts, vec![0, 1, 1]);
        assert_eq!(delta.count, 2);
        assert!((delta.sum - 5050.0).abs() < 1e-9);
        // Mismatched bounds: earlier treated as empty.
        let fresh = Histogram::with_bounds(vec![1.0]).snapshot();
        let whole = h.snapshot().delta_since(&fresh);
        assert_eq!(whole.count, 4);
    }

    #[test]
    fn counter_deltas_clamp_and_skip_zero() {
        let mut earlier = MetricsSnapshot::default();
        earlier.counters.insert("a".into(), 5);
        earlier.counters.insert("b".into(), 7);
        let mut later = earlier.clone();
        later.counters.insert("a".into(), 9);
        later.counters.insert("c".into(), 2);
        later.counters.insert("b".into(), 7);
        let deltas = later.counter_deltas_since(&earlier);
        assert_eq!(deltas.get("a"), Some(&4));
        assert_eq!(deltas.get("c"), Some(&2));
        assert!(!deltas.contains_key("b"));
    }
}
