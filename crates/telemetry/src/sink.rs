//! Destinations for closed spans: an in-memory collector for tests and a
//! JSON-lines exporter for offline analysis.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::time::Duration;

/// One closed span as delivered to sinks.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// The span's own name, e.g. `ocr`.
    pub name: &'static str,
    /// The dot-joined nesting path, e.g. `pipeline.ocr`.
    pub path: String,
    /// Nesting depth (1 = top-level).
    pub depth: usize,
    /// Wall time between enter and drop.
    pub wall: Duration,
    /// Start time in microseconds relative to the recording registry's
    /// creation ([`crate::Registry::epoch`]), so spans from every thread
    /// of one run share a timeline. Zero for spans opened before the
    /// registry existed.
    pub start_us: u64,
    /// Stable process-unique id of the thread that ran the span (see
    /// [`crate::thread_id`]); trace exporters use it as the row key.
    pub tid: u64,
    /// OS name of the thread that ran the span, when it has one (e.g.
    /// `gp-worker-0` for `dpr-par` pool workers).
    pub thread: Option<String>,
}

/// A destination for closed spans. Implementations must be cheap and
/// non-blocking; they run inside `Span::drop`.
pub trait Sink: Send + Sync {
    /// Called once per closed span.
    fn span_closed(&self, record: &SpanRecord);
}

/// An in-memory sink that keeps every record, in close order. Intended for
/// tests and short diagnostic runs.
#[derive(Debug, Default)]
pub struct Collector {
    records: Mutex<Vec<SpanRecord>>,
}

impl Collector {
    /// An empty collector.
    pub fn new() -> Self {
        Collector::default()
    }

    /// A copy of everything collected so far.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.records.lock().clone()
    }

    /// Total wall time of all closed spans whose path equals `path`.
    pub fn total_wall(&self, path: &str) -> Duration {
        self.records
            .lock()
            .iter()
            .filter(|r| r.path == path)
            .map(|r| r.wall)
            .sum()
    }

    /// Drops all collected records.
    pub fn clear(&self) {
        self.records.lock().clear();
    }
}

impl Sink for Collector {
    fn span_closed(&self, record: &SpanRecord) {
        self.records.lock().push(record.clone());
    }
}

/// The serialized form of one JSON line emitted by [`JsonLines`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanLine {
    /// Record kind; always `"span"` for span records.
    pub kind: String,
    /// Dot-joined span path.
    pub path: String,
    /// Nesting depth (1 = top-level).
    pub depth: u64,
    /// Wall time in microseconds.
    pub wall_us: u64,
    /// Registry-epoch-relative start time in microseconds.
    pub start_us: u64,
    /// Stable id of the thread that ran the span.
    pub tid: u64,
}

/// A sink writing one JSON object per closed span to any `Write`
/// destination (a file, a `Vec<u8>`, stderr).
pub struct JsonLines {
    out: Mutex<Box<dyn Write + Send>>,
}

impl JsonLines {
    /// Wraps a writer. Each span becomes one `\n`-terminated JSON object.
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        JsonLines {
            out: Mutex::new(out),
        }
    }

    /// Writes an arbitrary serializable record as one JSON line, e.g. a
    /// final `MetricsSnapshot` or `PipelineTrace` after a run.
    pub fn write_record<T: serde::Serialize>(&self, record: &T) -> std::io::Result<()> {
        let line = crate::json::to_string(record)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let mut out = self.out.lock();
        out.write_all(line.as_bytes())?;
        out.write_all(b"\n")
    }

    /// Flushes the underlying writer.
    pub fn flush(&self) -> std::io::Result<()> {
        self.out.lock().flush()
    }
}

impl Sink for JsonLines {
    fn span_closed(&self, record: &SpanRecord) {
        let line = SpanLine {
            kind: "span".to_string(),
            path: record.path.clone(),
            depth: record.depth as u64,
            wall_us: record.wall.as_micros() as u64,
            start_us: record.start_us,
            tid: record.tid,
        };
        let _ = self.write_record(&line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A shared growable buffer usable as a `Box<dyn Write + Send>` target.
    #[derive(Clone, Default)]
    pub(crate) struct SharedBuf(pub Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn json_lines_emits_one_object_per_span() {
        let buf = SharedBuf::default();
        let sink = JsonLines::new(Box::new(buf.clone()));
        sink.span_closed(&SpanRecord {
            name: "ocr",
            path: "pipeline.ocr".into(),
            depth: 2,
            wall: Duration::from_micros(1500),
            start_us: 10,
            tid: 1,
            thread: None,
        });
        sink.span_closed(&SpanRecord {
            name: "gp",
            path: "pipeline.gp".into(),
            depth: 2,
            wall: Duration::from_micros(250),
            start_us: 1510,
            tid: 1,
            thread: None,
        });
        let text = String::from_utf8(buf.0.lock().clone()).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first: SpanLine = crate::json::from_str(lines[0]).expect("parse");
        assert_eq!(first.path, "pipeline.ocr");
        assert_eq!(first.wall_us, 1500);
        assert_eq!(first.depth, 2);
    }
}
