//! Human-readable rendering of snapshots and traces as aligned text
//! tables, for CLI output and experiment logs.

use crate::metrics::MetricsSnapshot;
use crate::trace::PipelineTrace;
use std::fmt::Write as _;

/// Renders a metrics snapshot as an aligned table: counters, gauges, then
/// histograms with count/mean/p50/p99.
pub fn render(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    if !snapshot.counters.is_empty() {
        let _ = writeln!(out, "counters:");
        let width = key_width(snapshot.counters.keys());
        for (name, value) in &snapshot.counters {
            let _ = writeln!(out, "  {name:<width$}  {value:>12}");
        }
    }
    if !snapshot.gauges.is_empty() {
        let _ = writeln!(out, "gauges:");
        let width = key_width(snapshot.gauges.keys());
        for (name, value) in &snapshot.gauges {
            let _ = writeln!(out, "  {name:<width$}  {value:>12}");
        }
    }
    if !snapshot.histograms.is_empty() {
        let _ = writeln!(out, "histograms:");
        let width = key_width(snapshot.histograms.keys());
        for (name, h) in &snapshot.histograms {
            let _ = writeln!(
                out,
                "  {name:<width$}  n={:<8} mean={:<12.1} p50={:<12.1} p99={:<12.1}",
                h.count,
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.99),
            );
        }
    }
    out
}

/// Renders a pipeline trace as a stage table (wall time + top counters)
/// followed by run totals.
pub fn render_trace(trace: &PipelineTrace) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "pipeline trace ({} stages):", trace.stages.len());
    let width = key_width(trace.stages.iter().map(|s| &s.name));
    for stage in &trace.stages {
        let _ = writeln!(
            out,
            "  {:<width$}  {:>10}",
            stage.name,
            format_us(stage.wall_us),
        );
        for (counter, delta) in &stage.counters {
            let _ = writeln!(out, "    {counter:<40}  +{delta}");
        }
    }
    let _ = writeln!(
        out,
        "  {:<width$}  {:>10}   (staged {})",
        "total",
        format_us(trace.total_us),
        format_us(trace.staged_us()),
    );
    out
}

fn key_width<'a, I, S>(keys: I) -> usize
where
    I: Iterator<Item = &'a S>,
    S: AsRef<str> + 'a + ?Sized,
{
    keys.map(|k| k.as_ref().len()).max().unwrap_or(0)
}

/// Formats microseconds with a readable unit (`µs`, `ms`, `s`).
pub fn format_us(us: u64) -> String {
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;
    use crate::trace::{PipelineTrace, StageTrace};

    #[test]
    fn renders_all_sections() {
        let reg = Registry::new();
        reg.counter("frames.seen").inc(7);
        reg.gauge("offset_us").set(-120);
        reg.histogram("sdu_bytes").record(42.0);
        let text = render(&reg.snapshot());
        assert!(text.contains("counters:"));
        assert!(text.contains("frames.seen"));
        assert!(text.contains("gauges:"));
        assert!(text.contains("-120"));
        assert!(text.contains("histograms:"));
        assert!(text.contains("n=1"));
    }

    #[test]
    fn trace_table_lists_stages_and_totals() {
        let trace = PipelineTrace {
            stages: vec![StageTrace {
                name: "ocr".into(),
                wall_us: 1500,
                counters: [("ocr.readings_read".to_string(), 10u64)].into(),
            }],
            total_us: 2_000_000,
            counters: Default::default(),
            gauges: Default::default(),
            job_id: None,
        };
        let text = render_trace(&trace);
        assert!(text.contains("ocr"));
        assert!(text.contains("1.50ms"));
        assert!(text.contains("+10"));
        assert!(text.contains("2.00s"));
    }

    #[test]
    fn format_us_picks_units() {
        assert_eq!(format_us(999), "999µs");
        assert_eq!(format_us(1_500), "1.50ms");
        assert_eq!(format_us(2_500_000), "2.50s");
    }
}
