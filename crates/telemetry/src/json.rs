//! A small JSON codec over the workspace serde data model.
//!
//! [`to_string`] serializes anything implementing `serde::Serialize`;
//! [`from_str`] parses JSON text back through `serde::Deserialize`. Enum
//! conventions match the derive macros: a unit variant is its name as a
//! string, a data-carrying variant is a single-key object
//! `{"Variant": payload}`.

use serde::de::{self, Deserialize, Visitor};
use serde::ser::{self, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number without sign or fraction.
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A number with a fraction or exponent.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Renders this value tree as compact JSON text (what [`to_string`]
    /// produces after serialization).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out);
        out
    }
}

/// Codec failure: unserializable input, malformed text, or a shape
/// mismatch during deserialization.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

// ———————————————————————————— serialization ————————————————————————————

/// Serializes `value` into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    value.serialize(ValueSerializer)
}

/// Serializes `value` to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&to_value(value)?, &mut out);
    Ok(out)
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Keep a fraction marker so the value parses back as float.
                let s = format!("{f}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null"); // JSON has no NaN/Inf
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(value, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct ValueSerializer;

/// Builds an array across `serialize_element`/`serialize_field` calls.
struct SeqBuilder {
    items: Vec<Value>,
    /// For enum variants: wrap the finished array as `{variant: [...]}`.
    variant: Option<&'static str>,
}

/// Builds an object across key/value or field calls.
struct MapBuilder {
    entries: Vec<(String, Value)>,
    pending_key: Option<String>,
    /// For enum variants: wrap the finished object as `{variant: {...}}`.
    variant: Option<&'static str>,
}

impl ser::Serializer for ValueSerializer {
    type Ok = Value;
    type Error = Error;
    type SerializeSeq = SeqBuilder;
    type SerializeTuple = SeqBuilder;
    type SerializeTupleStruct = SeqBuilder;
    type SerializeTupleVariant = SeqBuilder;
    type SerializeMap = MapBuilder;
    type SerializeStruct = MapBuilder;
    type SerializeStructVariant = MapBuilder;

    fn serialize_bool(self, v: bool) -> Result<Value, Error> {
        Ok(Value::Bool(v))
    }
    fn serialize_i8(self, v: i8) -> Result<Value, Error> {
        self.serialize_i64(v.into())
    }
    fn serialize_i16(self, v: i16) -> Result<Value, Error> {
        self.serialize_i64(v.into())
    }
    fn serialize_i32(self, v: i32) -> Result<Value, Error> {
        self.serialize_i64(v.into())
    }
    fn serialize_i64(self, v: i64) -> Result<Value, Error> {
        Ok(if v >= 0 {
            Value::UInt(v as u64)
        } else {
            Value::Int(v)
        })
    }
    fn serialize_u8(self, v: u8) -> Result<Value, Error> {
        Ok(Value::UInt(v.into()))
    }
    fn serialize_u16(self, v: u16) -> Result<Value, Error> {
        Ok(Value::UInt(v.into()))
    }
    fn serialize_u32(self, v: u32) -> Result<Value, Error> {
        Ok(Value::UInt(v.into()))
    }
    fn serialize_u64(self, v: u64) -> Result<Value, Error> {
        Ok(Value::UInt(v))
    }
    fn serialize_f32(self, v: f32) -> Result<Value, Error> {
        Ok(Value::Float(v.into()))
    }
    fn serialize_f64(self, v: f64) -> Result<Value, Error> {
        Ok(Value::Float(v))
    }
    fn serialize_char(self, v: char) -> Result<Value, Error> {
        Ok(Value::Str(v.to_string()))
    }
    fn serialize_str(self, v: &str) -> Result<Value, Error> {
        Ok(Value::Str(v.to_string()))
    }
    fn serialize_bytes(self, v: &[u8]) -> Result<Value, Error> {
        Ok(Value::Array(v.iter().map(|&b| Value::UInt(b.into())).collect()))
    }
    fn serialize_none(self) -> Result<Value, Error> {
        Ok(Value::Null)
    }
    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<Value, Error> {
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<Value, Error> {
        Ok(Value::Null)
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<Value, Error> {
        Ok(Value::Null)
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
    ) -> Result<Value, Error> {
        Ok(Value::Str(variant.to_string()))
    }
    fn serialize_newtype_struct<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<Value, Error> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Value, Error> {
        Ok(Value::Object(vec![(
            variant.to_string(),
            value.serialize(ValueSerializer)?,
        )]))
    }
    fn serialize_seq(self, len: Option<usize>) -> Result<SeqBuilder, Error> {
        Ok(SeqBuilder {
            items: Vec::with_capacity(len.unwrap_or(0)),
            variant: None,
        })
    }
    fn serialize_tuple(self, len: usize) -> Result<SeqBuilder, Error> {
        self.serialize_seq(Some(len))
    }
    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        len: usize,
    ) -> Result<SeqBuilder, Error> {
        self.serialize_seq(Some(len))
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<SeqBuilder, Error> {
        Ok(SeqBuilder {
            items: Vec::with_capacity(len),
            variant: Some(variant),
        })
    }
    fn serialize_map(self, len: Option<usize>) -> Result<MapBuilder, Error> {
        Ok(MapBuilder {
            entries: Vec::with_capacity(len.unwrap_or(0)),
            pending_key: None,
            variant: None,
        })
    }
    fn serialize_struct(
        self,
        _name: &'static str,
        len: usize,
    ) -> Result<MapBuilder, Error> {
        self.serialize_map(Some(len))
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<MapBuilder, Error> {
        Ok(MapBuilder {
            entries: Vec::with_capacity(len),
            pending_key: None,
            variant: Some(variant),
        })
    }
}

impl SeqBuilder {
    fn push<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Error> {
        self.items.push(value.serialize(ValueSerializer)?);
        Ok(())
    }

    fn finish(self) -> Value {
        let array = Value::Array(self.items);
        match self.variant {
            Some(variant) => Value::Object(vec![(variant.to_string(), array)]),
            None => array,
        }
    }
}

impl ser::SerializeSeq for SeqBuilder {
    type Ok = Value;
    type Error = Error;
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Error> {
        self.push(value)
    }
    fn end(self) -> Result<Value, Error> {
        Ok(self.finish())
    }
}

impl ser::SerializeTuple for SeqBuilder {
    type Ok = Value;
    type Error = Error;
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Error> {
        self.push(value)
    }
    fn end(self) -> Result<Value, Error> {
        Ok(self.finish())
    }
}

impl ser::SerializeTupleStruct for SeqBuilder {
    type Ok = Value;
    type Error = Error;
    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Error> {
        self.push(value)
    }
    fn end(self) -> Result<Value, Error> {
        Ok(self.finish())
    }
}

impl ser::SerializeTupleVariant for SeqBuilder {
    type Ok = Value;
    type Error = Error;
    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Error> {
        self.push(value)
    }
    fn end(self) -> Result<Value, Error> {
        Ok(self.finish())
    }
}

impl MapBuilder {
    fn finish(self) -> Value {
        let object = Value::Object(self.entries);
        match self.variant {
            Some(variant) => Value::Object(vec![(variant.to_string(), object)]),
            None => object,
        }
    }
}

impl ser::SerializeMap for MapBuilder {
    type Ok = Value;
    type Error = Error;
    fn serialize_key<T: ?Sized + Serialize>(&mut self, key: &T) -> Result<(), Error> {
        let key = match key.serialize(ValueSerializer)? {
            Value::Str(s) => s,
            Value::UInt(n) => n.to_string(),
            Value::Int(n) => n.to_string(),
            Value::Bool(b) => b.to_string(),
            other => return Err(ser::Error::custom(format!("non-string key {other:?}"))),
        };
        self.pending_key = Some(key);
        Ok(())
    }
    fn serialize_value<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Error> {
        let key = self
            .pending_key
            .take()
            .ok_or_else(|| ser::Error::custom("serialize_value before serialize_key"))?;
        self.entries.push((key, value.serialize(ValueSerializer)?));
        Ok(())
    }
    fn end(self) -> Result<Value, Error> {
        Ok(self.finish())
    }
}

impl ser::SerializeStruct for MapBuilder {
    type Ok = Value;
    type Error = Error;
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.entries
            .push((key.to_string(), value.serialize(ValueSerializer)?));
        Ok(())
    }
    fn end(self) -> Result<Value, Error> {
        Ok(self.finish())
    }
}

impl ser::SerializeStructVariant for MapBuilder {
    type Ok = Value;
    type Error = Error;
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.entries
            .push((key.to_string(), value.serialize(ValueSerializer)?));
        Ok(())
    }
    fn end(self) -> Result<Value, Error> {
        Ok(self.finish())
    }
}

// ———————————————————————————— parsing ————————————————————————————

/// Parses JSON text into a [`Value`] tree.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", parser.pos)));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error("unexpected end of input".into())),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(Error(format!(
                "unexpected {:?} at byte {}",
                b as char, self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(e.to_string()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| Error("dangling escape".into()))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| Error(e.to_string()))?,
                                16,
                            )
                            .map_err(|e| Error(e.to_string()))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error(format!("bad codepoint {code:#x}")))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("bad escape \\{}", other as char)));
                        }
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error(e.to_string()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error(format!("bad number {text:?}: {e}")))
        } else if let Ok(n) = text.parse::<u64>() {
            Ok(Value::UInt(n))
        } else if let Ok(n) = text.parse::<i64>() {
            Ok(Value::Int(n))
        } else {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error(format!("bad number {text:?}: {e}")))
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error("expected ',' or ']'".into())),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error("expected ',' or '}'".into())),
            }
        }
    }
}

// ———————————————————————————— deserialization ————————————————————————————

/// Deserializes a `T` from JSON text.
pub fn from_str<'de, T: Deserialize<'de>>(text: &str) -> Result<T, Error> {
    from_value(parse(text)?)
}

/// Deserializes a `T` from a parsed [`Value`] tree.
pub fn from_value<'de, T: Deserialize<'de>>(value: Value) -> Result<T, Error> {
    T::deserialize(ValueDeserializer(value))
}

struct ValueDeserializer(Value);

impl<'de> de::Deserializer<'de> for ValueDeserializer {
    type Error = Error;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        match self.0 {
            Value::Null => visitor.visit_unit(),
            Value::Bool(b) => visitor.visit_bool(b),
            Value::UInt(n) => visitor.visit_u64(n),
            Value::Int(n) => visitor.visit_i64(n),
            Value::Float(f) => visitor.visit_f64(f),
            Value::Str(s) => visitor.visit_string(s),
            Value::Array(items) => visitor.visit_seq(SeqDeserializer {
                items: items.into(),
            }),
            Value::Object(entries) => visitor.visit_map(MapDeserializer {
                entries: entries.into(),
                pending: None,
            }),
        }
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        match self.0 {
            Value::Null => visitor.visit_none(),
            other => visitor.visit_some(ValueDeserializer(other)),
        }
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Error> {
        match self.0 {
            Value::Str(tag) => visitor.visit_enum(EnumDeserializer {
                tag,
                payload: None,
            }),
            Value::Object(mut entries) => {
                if entries.len() != 1 {
                    return Err(Error(format!(
                        "expected single-key variant object, got {} keys",
                        entries.len()
                    )));
                }
                let (tag, payload) = entries.pop().expect("one entry");
                visitor.visit_enum(EnumDeserializer {
                    tag,
                    payload: Some(payload),
                })
            }
            other => Err(Error(format!("expected enum, got {other:?}"))),
        }
    }
}

struct SeqDeserializer {
    items: VecDeque<Value>,
}

impl<'de> de::SeqAccess<'de> for SeqDeserializer {
    type Error = Error;

    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Error> {
        match self.items.pop_front() {
            None => Ok(None),
            Some(item) => T::deserialize(ValueDeserializer(item)).map(Some),
        }
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.items.len())
    }
}

struct MapDeserializer {
    entries: VecDeque<(String, Value)>,
    pending: Option<Value>,
}

impl<'de> de::MapAccess<'de> for MapDeserializer {
    type Error = Error;

    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Error> {
        match self.entries.pop_front() {
            None => Ok(None),
            Some((key, value)) => {
                self.pending = Some(value);
                K::deserialize(ValueDeserializer(Value::Str(key))).map(Some)
            }
        }
    }

    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Error> {
        let value = self
            .pending
            .take()
            .ok_or_else(|| Error("next_value before next_key".into()))?;
        V::deserialize(ValueDeserializer(value))
    }
}

struct EnumDeserializer {
    tag: String,
    payload: Option<Value>,
}

impl<'de> de::EnumAccess<'de> for EnumDeserializer {
    type Error = Error;
    type Variant = VariantDeserializer;

    fn variant<V: Deserialize<'de>>(self) -> Result<(V, VariantDeserializer), Error> {
        let tag = V::deserialize(ValueDeserializer(Value::Str(self.tag)))?;
        Ok((
            tag,
            VariantDeserializer {
                payload: self.payload,
            },
        ))
    }
}

struct VariantDeserializer {
    payload: Option<Value>,
}

impl<'de> de::VariantAccess<'de> for VariantDeserializer {
    type Error = Error;

    fn unit_variant(self) -> Result<(), Error> {
        match self.payload {
            None | Some(Value::Null) => Ok(()),
            Some(other) => Err(Error(format!("unit variant carries data: {other:?}"))),
        }
    }

    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Error> {
        let payload = self
            .payload
            .ok_or_else(|| Error("newtype variant missing payload".into()))?;
        T::deserialize(ValueDeserializer(payload))
    }

    fn tuple_variant<V: Visitor<'de>>(self, _len: usize, visitor: V) -> Result<V::Value, Error> {
        match self.payload {
            Some(Value::Array(items)) => visitor.visit_seq(SeqDeserializer {
                items: items.into(),
            }),
            other => Err(Error(format!("expected tuple variant array, got {other:?}"))),
        }
    }

    fn struct_variant<V: Visitor<'de>>(
        self,
        _fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Error> {
        match self.payload {
            Some(Value::Object(entries)) => visitor.visit_map(MapDeserializer {
                entries: entries.into(),
                pending: None,
            }),
            other => Err(Error(format!("expected struct variant object, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Shade {
        Plain,
        Gray(u8),
        Rgb { r: u8, g: u8, b: u8 },
        Pair(i32, i32),
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Doc {
        name: String,
        ratio: f64,
        flags: Vec<bool>,
        shade: Shade,
        fallback: Option<Shade>,
        table: BTreeMap<String, u64>,
    }

    #[test]
    fn round_trips_structs_enums_options_maps() {
        let mut table = BTreeMap::new();
        table.insert("alpha".to_string(), 3u64);
        table.insert("beta".to_string(), 0u64);
        let doc = Doc {
            name: "trace \"x\"\n".to_string(),
            ratio: -0.125,
            flags: vec![true, false],
            shade: Shade::Rgb { r: 1, g: 2, b: 3 },
            fallback: Some(Shade::Gray(9)),
            table,
        };
        let text = to_string(&doc).expect("serialize");
        let back: Doc = from_str(&text).expect("deserialize");
        assert_eq!(back, doc);
    }

    #[test]
    fn unit_and_tuple_variants_round_trip() {
        for shade in [Shade::Plain, Shade::Pair(-4, 7)] {
            let text = to_string(&shade).expect("serialize");
            let back: Shade = from_str(&text).expect("deserialize");
            assert_eq!(back, shade);
        }
        assert_eq!(to_string(&Shade::Plain).expect("serialize"), "\"Plain\"");
    }

    #[test]
    fn floats_keep_fraction_marker() {
        assert_eq!(to_string(&1.0f64).expect("serialize"), "1.0");
        let v: f64 = from_str("1.0").expect("parse");
        assert_eq!(v, 1.0);
    }

    #[test]
    fn rejects_malformed_text() {
        assert!(parse("{\"a\":").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("{} trailing").is_err());
    }
}
