//! Per-run pipeline traces: one record per stage with wall time and the
//! metric activity attributed to it.
//!
//! [`TraceBuilder`] wraps a [`Registry`] and attributes counter/gauge
//! movement to stages by snapshot deltas: everything recorded between
//! `begin_stage` and `end_stage` — at any depth of the call tree — lands in
//! that stage's [`StageTrace`]. This works because the pipeline runs its
//! stages sequentially on one thread; a run that wants exact numbers in a
//! concurrent process wraps itself in `dpr_telemetry::scoped` with a fresh
//! registry.

use crate::metrics::{MetricsSnapshot, Registry};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// One pipeline stage: wall time plus the counters that moved while it ran.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageTrace {
    /// Stage name, e.g. `ocr` or `association`.
    pub name: String,
    /// Wall time in microseconds.
    pub wall_us: u64,
    /// Counter increases attributed to this stage.
    pub counters: BTreeMap<String, u64>,
}

/// The full observability report of one reverse-engineering run.
///
/// # Equality
///
/// `PipelineTrace` implements [`PartialEq`]/[`Eq`] as *always equal*: a
/// trace is observability data (wall times differ run to run by nature),
/// not part of the result. This keeps result types that embed a trace
/// answering "did the two runs recover the same protocol?" under `==`,
/// which is what the pipeline's determinism contract is about.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PipelineTrace {
    /// Per-stage records, in execution order.
    pub stages: Vec<StageTrace>,
    /// Wall time of the whole run in microseconds.
    pub total_us: u64,
    /// Final counter values at the end of the run.
    pub counters: BTreeMap<String, u64>,
    /// Final gauge values at the end of the run.
    pub gauges: BTreeMap<String, i64>,
    /// The service job this trace belongs to (`job-N`), stamped by
    /// `dpr-serve` when it publishes a job's trace; `None` for direct
    /// runs. Correlates `GET /trace` output with log records and the
    /// job table.
    pub job_id: Option<String>,
}

impl PartialEq for PipelineTrace {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl Eq for PipelineTrace {}

impl PipelineTrace {
    /// The stage record with the given name, if present.
    pub fn stage(&self, name: &str) -> Option<&StageTrace> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Sum of all stage wall times in microseconds (can be less than
    /// [`PipelineTrace::total_us`] when work happens between stages).
    pub fn staged_us(&self) -> u64 {
        self.stages.iter().map(|s| s.wall_us).sum()
    }
}

/// Builds a [`PipelineTrace`] across sequential stages.
#[derive(Debug)]
pub struct TraceBuilder {
    registry: Arc<Registry>,
    run_start: Instant,
    baseline: MetricsSnapshot,
    stages: Vec<StageTrace>,
    open: Option<(String, Instant, MetricsSnapshot)>,
}

impl TraceBuilder {
    /// Starts a trace attributed against `registry`.
    pub fn new(registry: Arc<Registry>) -> Self {
        let baseline = registry.snapshot();
        TraceBuilder {
            registry,
            run_start: Instant::now(),
            baseline,
            stages: Vec::new(),
            open: None,
        }
    }

    /// Opens a stage, closing any still-open one first.
    pub fn begin_stage(&mut self, name: &str) {
        self.end_stage();
        self.open = Some((name.to_string(), Instant::now(), self.registry.snapshot()));
    }

    /// Closes the open stage, recording its wall time and counter deltas.
    /// No-op when no stage is open.
    pub fn end_stage(&mut self) {
        if let Some((name, started, before)) = self.open.take() {
            let now = self.registry.snapshot();
            self.stages.push(StageTrace {
                name,
                wall_us: started.elapsed().as_micros() as u64,
                counters: now.counter_deltas_since(&before),
            });
        }
    }

    /// Runs `f` as a named stage and returns its result.
    pub fn stage<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        self.begin_stage(name);
        let result = f();
        self.end_stage();
        result
    }

    /// Closes any open stage and produces the final trace. Counter and
    /// gauge totals are relative to the builder's creation, so a reused
    /// registry does not leak earlier runs into this trace.
    pub fn finish(mut self) -> PipelineTrace {
        self.end_stage();
        let now = self.registry.snapshot();
        PipelineTrace {
            stages: self.stages,
            total_us: self.run_start.elapsed().as_micros() as u64,
            counters: now.counter_deltas_since(&self.baseline),
            gauges: now.gauges,
            job_id: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoped;

    #[test]
    fn stages_attribute_counter_deltas() {
        let reg = Arc::new(Registry::new());
        let trace = scoped(Arc::clone(&reg), || {
            let mut builder = TraceBuilder::new(Arc::clone(&reg));
            builder.stage("read", || {
                crate::counter("frames.seen").inc(10);
            });
            builder.stage("match", || {
                crate::counter("pairs.formed").inc(4);
                crate::counter("frames.seen").inc(2);
            });
            builder.finish()
        });
        assert_eq!(trace.stages.len(), 2);
        let read = trace.stage("read").expect("read stage");
        assert_eq!(read.counters.get("frames.seen"), Some(&10));
        assert!(!read.counters.contains_key("pairs.formed"));
        let matching = trace.stage("match").expect("match stage");
        assert_eq!(matching.counters.get("frames.seen"), Some(&2));
        assert_eq!(matching.counters.get("pairs.formed"), Some(&4));
        assert_eq!(trace.counters.get("frames.seen"), Some(&12));
    }

    #[test]
    fn traces_compare_equal_by_design() {
        let reg = Arc::new(Registry::new());
        let a = TraceBuilder::new(Arc::clone(&reg)).finish();
        let mut builder = TraceBuilder::new(reg);
        builder.stage("only", || {});
        let b = builder.finish();
        assert_eq!(a, b);
    }

    #[test]
    fn reused_registry_does_not_leak_earlier_runs() {
        let reg = Arc::new(Registry::new());
        reg.counter("stale.hits").inc(99);
        let trace = TraceBuilder::new(Arc::clone(&reg)).finish();
        assert!(!trace.counters.contains_key("stale.hits"));
    }
}
