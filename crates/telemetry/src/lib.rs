//! Stage-level tracing, metrics, and per-run pipeline traces for the
//! DP-Reverser stack.
//!
//! The crate has four pieces:
//!
//! * **Spans** ([`Span`]) — RAII wall-clock timers that nest. Entering
//!   `"pipeline"` and then `"ocr"` on the same thread times the inner work
//!   under the dotted path `pipeline.ocr`. Closed spans feed a per-path
//!   duration histogram and every [`Sink`] attached to the active registry.
//! * **Metrics** ([`Registry`]) — named counters, gauges, and fixed-bucket
//!   histograms. Handles are `Arc`-backed atomics, so the hot path after
//!   lookup is a single `fetch_add`. [`Registry::snapshot`] freezes all of
//!   them into plain serde-serializable maps.
//! * **Sinks** ([`sink`]) — where span records go: an in-memory
//!   [`sink::Collector`] for tests, a [`sink::JsonLines`] exporter, and a
//!   human-readable summary table ([`summary::render`]).
//! * **Traces** ([`trace`]) — [`trace::PipelineTrace`], the per-run report
//!   the reverse-engineering pipeline attaches to its result: one entry per
//!   stage with wall time and the counter activity attributed to it.
//!
//! # Scoping and the disabled mode
//!
//! Instrumented library code records against [`registry()`], which resolves
//! to the innermost [`scoped`] registry on the current thread, falling back
//! to a process-wide global. A pipeline run that wants exact attribution
//! wraps itself in `scoped(fresh_registry, || ...)` so concurrent runs (or
//! parallel tests) do not bleed into each other's numbers.
//!
//! Telemetry is on by default. [`set_enabled`]`(false)` turns the whole
//! facade into no-ops — spans return inert guards and handle lookups return
//! detached cells — which keeps instrumented hot loops at benchmark noise
//! level (used by `crates/bench/benches/micro.rs`).

#![forbid(unsafe_code)]

pub mod json;
pub mod metrics;
pub mod sink;
pub mod span;
pub mod summary;
pub mod trace;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry,
};
pub use sink::{Collector, JsonLines, Sink, SpanLine, SpanRecord};
pub use span::{thread_id, Span};
pub use trace::{PipelineTrace, StageTrace, TraceBuilder};

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Turns the entire telemetry facade on or off process-wide.
///
/// While disabled, [`Span::enter`] returns an inert guard and the
/// [`counter`]/[`gauge`]/[`histogram`] helpers return detached cells, so
/// instrumented code runs at no-op cost. Returns the previous state.
pub fn set_enabled(on: bool) -> bool {
    ENABLED.swap(on, Ordering::SeqCst)
}

/// Whether telemetry is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn global_registry() -> &'static Arc<Registry> {
    static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(Registry::new()))
}

/// The process-wide monotonic epoch: fixed the first time anything asks
/// for it. `dpr-log` stamps records as microseconds since this instant,
/// so log timelines are comparable across every registry and thread of
/// the process (per-run registries keep their own [`Registry::epoch`]
/// for span-relative times).
pub fn process_epoch() -> std::time::Instant {
    static EPOCH: OnceLock<std::time::Instant> = OnceLock::new();
    *EPOCH.get_or_init(std::time::Instant::now)
}

thread_local! {
    static SCOPE: RefCell<Vec<Arc<Registry>>> = const { RefCell::new(Vec::new()) };
}

/// The registry instrumented code records against: the innermost [`scoped`]
/// registry on this thread, or the process-wide global one.
pub fn registry() -> Arc<Registry> {
    SCOPE.with(|stack| {
        stack
            .borrow()
            .last()
            .cloned()
            .unwrap_or_else(|| Arc::clone(global_registry()))
    })
}

/// Runs `f` with `reg` as this thread's active registry.
///
/// Nested calls stack; the override ends when `f` returns (even by panic,
/// via an RAII pop guard). This is how a pipeline run isolates its numbers
/// from every other run in the process.
pub fn scoped<R>(reg: Arc<Registry>, f: impl FnOnce() -> R) -> R {
    struct PopGuard;
    impl Drop for PopGuard {
        fn drop(&mut self) {
            SCOPE.with(|stack| {
                stack.borrow_mut().pop();
            });
        }
    }
    SCOPE.with(|stack| stack.borrow_mut().push(reg));
    let _guard = PopGuard;
    f()
}

/// Looks up (creating on first use) the named counter in the active
/// registry. Returns a detached no-op cell while telemetry is disabled.
pub fn counter(name: &str) -> Counter {
    if !enabled() {
        return Counter::noop();
    }
    registry().counter(name)
}

/// Looks up (creating on first use) the named gauge in the active registry.
/// Returns a detached no-op cell while telemetry is disabled.
pub fn gauge(name: &str) -> Gauge {
    if !enabled() {
        return Gauge::noop();
    }
    registry().gauge(name)
}

/// Looks up (creating on first use) the named histogram in the active
/// registry, with the default value buckets. Returns a detached no-op cell
/// while telemetry is disabled.
pub fn histogram(name: &str) -> Histogram {
    if !enabled() {
        return Histogram::noop();
    }
    registry().histogram(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_overrides_and_restores() {
        let outer = registry();
        let inner = Arc::new(Registry::new());
        let seen = scoped(Arc::clone(&inner), || {
            counter("scoped.hits").inc(3);
            Arc::ptr_eq(&registry(), &inner)
        });
        assert!(seen);
        // The scope popped: whatever the ambient registry is now (another
        // test's scope or the global), it is no longer `inner`.
        assert!(!Arc::ptr_eq(&registry(), &inner));
        drop(outer);
        assert_eq!(inner.snapshot().counters.get("scoped.hits"), Some(&3));
    }

    #[test]
    fn disabled_mode_is_inert() {
        let reg = Arc::new(Registry::new());
        scoped(Arc::clone(&reg), || {
            let was = set_enabled(false);
            counter("off.hits").inc(1);
            gauge("off.level").set(9);
            histogram("off.sizes").record(1.0);
            {
                let _span = Span::enter("off");
            }
            set_enabled(was);
        });
        let snap = reg.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
    }
}
