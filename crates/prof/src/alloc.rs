//! A counting global-allocator shim for per-thread allocation
//! attribution.
//!
//! [`CountingAlloc`] wraps [`std::alloc::System`]. While counting is
//! off (the default, and whenever `DPR_PROF` is unset) every call is a
//! straight delegation plus one relaxed atomic load — cheap enough to
//! leave installed permanently. While counting is on, `alloc`,
//! `alloc_zeroed`, and growing `realloc` calls bump thread-local
//! counters that [`thread_alloc_stats`] reads back; `dpr-par` workers
//! sample them around the mapped function to attribute heap traffic to
//! pool calls.
//!
//! # Caveats
//!
//! * Counters are **per-thread and cumulative**; consumers must take
//!   deltas. Allocations made by a worker on behalf of another thread's
//!   data still count on the allocating thread — attribution follows
//!   *who allocated*, not *who owns*.
//! * Frees are not tracked: this measures allocation pressure, not live
//!   bytes.
//! * The shim only counts in processes that install it via
//!   `#[global_allocator]` (the `dpr-bench` binary does). Library tests
//!   running under the plain system allocator simply read zeros.
//! * The counting path must never allocate (it runs inside the
//!   allocator): it uses `Cell`s through `try_with`, so threads whose
//!   TLS is already destroyed are silently skipped rather than aborted.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};

static COUNTING: AtomicBool = AtomicBool::new(false);

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
    static BYTES: Cell<u64> = const { Cell::new(0) };
}

/// Turns counting on or off process-wide. Kept in sync with `DPR_PROF`
/// by [`crate::refresh`]; rarely called directly.
pub fn set_counting(on: bool) {
    COUNTING.store(on, Ordering::Relaxed);
}

/// Whether the shim is currently counting.
pub fn counting() -> bool {
    COUNTING.load(Ordering::Relaxed)
}

/// Cumulative allocation counters for one thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Heap allocations made by this thread while counting was on.
    pub allocs: u64,
    /// Bytes requested by those allocations.
    pub bytes: u64,
}

impl AllocStats {
    /// Counter increases since `earlier` (saturating).
    pub fn since(self, earlier: AllocStats) -> AllocStats {
        AllocStats {
            allocs: self.allocs.saturating_sub(earlier.allocs),
            bytes: self.bytes.saturating_sub(earlier.bytes),
        }
    }
}

/// The current thread's cumulative counters. Zeros when the shim is not
/// installed, counting is off, or this thread never allocated.
pub fn thread_alloc_stats() -> AllocStats {
    AllocStats {
        allocs: ALLOCS.try_with(Cell::get).unwrap_or(0),
        bytes: BYTES.try_with(Cell::get).unwrap_or(0),
    }
}

#[inline]
fn count(bytes: usize) {
    // `try_with`, not `with`: this runs inside the global allocator and
    // may be reached during TLS teardown, where `with` would panic and
    // abort the process.
    let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
    let _ = BYTES.try_with(|c| c.set(c.get() + bytes as u64));
}

/// The counting allocator. Install with
/// `#[global_allocator] static A: dpr_prof::alloc::CountingAlloc = dpr_prof::alloc::CountingAlloc;`.
pub struct CountingAlloc;

// SAFETY: pure delegation to `System`; the counting side-channel only
// touches thread-local `Cell`s and never allocates or unwinds.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            count(layout.size());
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            count(layout.size());
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) && new_size > layout.size() {
            count(new_size - layout.size());
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_saturate_and_counters_respond_to_flag() {
        let before = thread_alloc_stats();
        // Not installed as the global allocator in unit tests, so the
        // counters only move when `count` is called directly.
        set_counting(true);
        count(128);
        count(64);
        set_counting(false);
        let after = thread_alloc_stats();
        let delta = after.since(before);
        assert_eq!(delta, AllocStats { allocs: 2, bytes: 192 });
        assert_eq!(before.since(after), AllocStats::default());
    }
}
