//! Runtime profiling for the DP-Reverser parallel runtime.
//!
//! `dpr-prof` is the measurement layer underneath `dpr-par`: the pool
//! reports one [`CallProfile`] per `par_map` call (per-worker busy /
//! chunk-wait / idle accounting, chunk geometry, spin-up and teardown
//! cost), and this crate aggregates them into a process-wide store that
//! the observability stack reads back out — `GET /profile` on the
//! metrics server, utilization counter tracks in the Chrome trace
//! export, and the textual pool report in `dpr-bench profile`.
//!
//! # Accounting model
//!
//! All times come from monotonic clocks ([`std::time::Instant`]).
//! For each worker of a call:
//!
//! * **busy** — time inside the caller's mapped function (including the
//!   per-worker `init` that builds scratch state),
//! * **wait** — time spent claiming chunks off the shared cursor and
//!   storing finished chunks into the result slots (synchronization),
//! * **idle** — everything else inside the worker's lifetime: the gap
//!   between call start and the worker's first instruction (spin-up
//!   latency, dominated by OS thread scheduling) and the tail between a
//!   worker running out of chunks and the slowest worker finishing.
//!
//! The invariant `busy + wait + idle ≈ wall` holds per worker within
//! clock-read jitter; `crates/par/tests/accounting.rs` property-tests
//! it. [`CallProfile::utilization`] is Σbusy / (workers × wall) — the
//! fraction of paid-for worker time that did caller work — and
//! [`CallProfile::imbalance`] is max(busy) / mean(busy), 1.0 when every
//! worker did an equal share.
//!
//! # Allocation attribution
//!
//! The [`alloc::CountingAlloc`] shim (installed as `#[global_allocator]`
//! by binaries that opt in, e.g. `dpr-bench`) counts allocations and
//! bytes per thread, but only while `DPR_PROF=1`; otherwise it is a
//! pass-through to the system allocator with a single relaxed atomic
//! load of overhead. Workers sample the thread-local counters around
//! the mapped function, so a `CallProfile` shows whether scratch
//! (`BatchScratch`) is actually reused or re-allocated per item.
//!
//! # Determinism
//!
//! Profiling never touches the data path: the pool's claims, chunking,
//! and reassembly are identical with `DPR_PROF` on or off, and
//! `tests/prof_identity.rs` asserts byte-identical pipeline output both
//! ways. Only *time-valued* telemetry differs, which the determinism
//! suite already strips.

#![warn(missing_docs)]

pub mod alloc;
mod report;
mod store;

pub use report::{render_report, PoolReport};
pub use store::{
    break_even_items, label_summary, record_call, reset, snapshot, CallProfile, LabelSummary,
    ProfSnapshot, WorkerStats,
};

use std::cell::RefCell;
use std::sync::atomic::{AtomicU8, Ordering};

/// The environment variable that switches profiling on (`1`, `true`,
/// `yes`, `on`; anything else is off).
pub const PROF_ENV: &str = "DPR_PROF";

/// Cached tri-state for [`enabled`]: 0 = unknown, 1 = off, 2 = on.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Whether profiling is on (`DPR_PROF=1`).
///
/// The environment is read once and cached; call [`refresh`] after
/// mutating `DPR_PROF` mid-process (tests do). The allocator's counting
/// flag is kept in sync with this value.
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => refresh(),
    }
}

/// Re-reads `DPR_PROF` and resyncs the allocator's counting flag.
/// Returns the new state.
pub fn refresh() -> bool {
    let on = std::env::var(PROF_ENV)
        .map(|v| {
            let v = v.trim().to_ascii_lowercase();
            matches!(v.as_str(), "1" | "true" | "yes" | "on")
        })
        .unwrap_or(false);
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    alloc::set_counting(on);
    on
}

thread_local! {
    static LABELS: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with `label` pushed onto the current thread's profile-label
/// stack, so [`CallProfile`]s recorded inside are attributed to it
/// (e.g. the GP engine wraps scoring in `with_label("gp.score", ..)`).
pub fn with_label<R>(label: &'static str, f: impl FnOnce() -> R) -> R {
    struct PopOnDrop;
    impl Drop for PopOnDrop {
        fn drop(&mut self) {
            LABELS.with(|stack| {
                stack.borrow_mut().pop();
            });
        }
    }
    LABELS.with(|stack| stack.borrow_mut().push(label));
    let _guard = PopOnDrop;
    f()
}

/// The innermost active label on this thread, or `"par"` when none is
/// set. This is what `dpr-par` stamps onto the profiles it records.
pub fn current_label() -> &'static str {
    LABELS.with(|stack| stack.borrow().last().copied()).unwrap_or("par")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_nest_and_default() {
        assert_eq!(current_label(), "par");
        let seen = with_label("outer", || {
            let inner = with_label("inner", current_label);
            (current_label(), inner)
        });
        assert_eq!(seen, ("outer", "inner"));
        assert_eq!(current_label(), "par");
    }
}
