//! The process-wide profile store: per-call records and per-label
//! cumulative aggregates.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::Mutex;

/// How many recent [`CallProfile`]s the store keeps verbatim; older
/// calls survive only in the per-label aggregates.
const RECENT_CAP: usize = 64;

/// One worker's share of a single `par_map` call.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkerStats {
    /// Worker index within the pool (0-based).
    pub worker: u64,
    /// Microseconds inside the caller's mapped function (and `init`).
    pub busy_us: u64,
    /// Microseconds claiming chunks and storing results (synchronization).
    pub wait_us: u64,
    /// Microseconds neither busy nor waiting: spin-up latency before the
    /// worker's first claim plus the tail after its last chunk while
    /// slower siblings finish.
    pub idle_us: u64,
    /// Chunks this worker claimed.
    pub chunks: u64,
    /// Items this worker mapped.
    pub items: u64,
    /// Heap allocations attributed to this worker during the call
    /// (0 unless `DPR_PROF=1` and the counting allocator is installed).
    pub allocs: u64,
    /// Bytes requested by those allocations.
    pub alloc_bytes: u64,
}

/// The accounting for one `par_map` call.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CallProfile {
    /// The innermost [`crate::with_label`] label at the call site
    /// (`"par"` when unlabelled).
    pub label: String,
    /// Process-wide call sequence number (1-based, assigned on record).
    pub seq: u64,
    /// Microseconds since the profile epoch at which the call started
    /// (the epoch is the first profiled call in the process).
    pub start_us: u64,
    /// Microseconds since the *caller's telemetry registry* epoch at
    /// which the call started — the same timeline span records use, so
    /// trace exporters can lay profile-derived counter tracks alongside
    /// span rows.
    pub epoch_start_us: u64,
    /// Wall time of the whole call, entry to return.
    pub wall_us: u64,
    /// Items mapped.
    pub items: u64,
    /// Chunk size the pool chose.
    pub chunk_size: u64,
    /// Number of chunks.
    pub chunks: u64,
    /// Workers that participated (empty for inline single-thread calls).
    pub workers: Vec<WorkerStats>,
    /// Microseconds from call entry until every worker had started
    /// executing (max spin-up latency across workers).
    pub spinup_us: u64,
    /// Microseconds from the last worker going idle until the call
    /// returned (join + reassembly).
    pub teardown_us: u64,
    /// OS threads spawned *by this call* (0 once the persistent pool is
    /// warm — the whole point of `par.pool_spawns`).
    pub spawned_threads: u64,
    /// Whether the call ran inline on the caller's thread.
    pub inline: bool,
}

impl CallProfile {
    /// Total busy microseconds across workers.
    pub fn busy_us(&self) -> u64 {
        self.workers.iter().map(|w| w.busy_us).sum()
    }

    /// Total chunk-wait microseconds across workers.
    pub fn wait_us(&self) -> u64 {
        self.workers.iter().map(|w| w.wait_us).sum()
    }

    /// Total idle microseconds across workers.
    pub fn idle_us(&self) -> u64 {
        self.workers.iter().map(|w| w.idle_us).sum()
    }

    /// Total allocations across workers.
    pub fn allocs(&self) -> u64 {
        self.workers.iter().map(|w| w.allocs).sum()
    }

    /// Total allocated bytes across workers.
    pub fn alloc_bytes(&self) -> u64 {
        self.workers.iter().map(|w| w.alloc_bytes).sum()
    }

    /// Σbusy / (workers × wall): the fraction of paid-for worker time
    /// spent in the caller's function. 1.0 for a fully-busy pool; an
    /// inline call is 1.0 by definition (the caller's thread was busy
    /// the whole wall time).
    pub fn utilization(&self) -> f64 {
        if self.inline || self.workers.is_empty() {
            return 1.0;
        }
        let denom = (self.workers.len() as u64 * self.wall_us) as f64;
        if denom <= 0.0 {
            return 1.0;
        }
        (self.busy_us() as f64 / denom).min(1.0)
    }

    /// max(busy) / mean(busy) across workers: 1.0 when perfectly
    /// balanced, ≥ workers when one worker did everything.
    pub fn imbalance(&self) -> f64 {
        if self.workers.len() <= 1 {
            return 1.0;
        }
        let busies: Vec<u64> = self.workers.iter().map(|w| w.busy_us).collect();
        let max = *busies.iter().max().unwrap_or(&0);
        let mean = busies.iter().sum::<u64>() as f64 / busies.len() as f64;
        if mean <= 0.0 {
            return 1.0;
        }
        max as f64 / mean
    }

    /// Chunks claimed beyond each worker's fair share, over total
    /// chunks — how much dynamic rebalancing the cursor actually did.
    /// 0.0 when every worker claimed exactly `chunks / workers`.
    pub fn steal_ratio(&self) -> f64 {
        if self.workers.len() <= 1 || self.chunks == 0 {
            return 0.0;
        }
        let fair = self.chunks as f64 / self.workers.len() as f64;
        let stolen: f64 = self
            .workers
            .iter()
            .map(|w| (w.chunks as f64 - fair).max(0.0))
            .sum();
        stolen / self.chunks as f64
    }

    /// Idle share of total worker-time (0.0 for inline calls).
    pub fn idle_share(&self) -> f64 {
        self.share(self.idle_us())
    }

    /// Chunk-wait share of total worker-time.
    pub fn wait_share(&self) -> f64 {
        self.share(self.wait_us())
    }

    /// Spin-up latency as a share of the call's wall time.
    pub fn spinup_share(&self) -> f64 {
        if self.wall_us == 0 {
            return 0.0;
        }
        (self.spinup_us as f64 / self.wall_us as f64).min(1.0)
    }

    fn share(&self, part_us: u64) -> f64 {
        if self.inline || self.workers.is_empty() {
            return 0.0;
        }
        let denom = (self.workers.len() as u64 * self.wall_us) as f64;
        if denom <= 0.0 {
            return 0.0;
        }
        (part_us as f64 / denom).min(1.0)
    }
}

/// Cumulative aggregate over every call that carried one label.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LabelSummary {
    /// The label.
    pub label: String,
    /// Calls recorded under it.
    pub calls: u64,
    /// Of those, calls that ran inline (single worker).
    pub inline_calls: u64,
    /// Σ wall time.
    pub wall_us: u64,
    /// Σ busy worker-time.
    pub busy_us: u64,
    /// Σ chunk-wait worker-time.
    pub wait_us: u64,
    /// Σ idle worker-time.
    pub idle_us: u64,
    /// Σ spin-up latency.
    pub spinup_us: u64,
    /// Σ teardown latency.
    pub teardown_us: u64,
    /// Σ items mapped.
    pub items: u64,
    /// Σ chunks claimed.
    pub chunks: u64,
    /// Σ OS threads spawned on behalf of these calls.
    pub spawned_threads: u64,
    /// Σ allocations attributed to workers.
    pub allocs: u64,
    /// Σ bytes attributed to workers.
    pub alloc_bytes: u64,
    /// Largest worker count seen on one call.
    pub max_workers: u64,
    /// Σ utilization (divide by `calls` for the mean).
    pub utilization_sum: f64,
    /// Σ imbalance (divide by `calls` for the mean).
    pub imbalance_sum: f64,
    /// Σ steal ratio (divide by `calls` for the mean).
    pub steal_sum: f64,
}

impl LabelSummary {
    /// Mean utilization across this label's calls.
    pub fn mean_utilization(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.utilization_sum / self.calls as f64
        }
    }

    /// Mean imbalance across this label's calls.
    pub fn mean_imbalance(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.imbalance_sum / self.calls as f64
        }
    }

    /// Mean steal ratio across this label's calls.
    pub fn mean_steal_ratio(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.steal_sum / self.calls as f64
        }
    }

    /// Mean spin-up latency of this label's *pooled* calls (inline calls
    /// pay no spin-up and are excluded). 0.0 until a pooled call lands.
    pub fn mean_spinup_us(&self) -> f64 {
        let pooled = self.calls - self.inline_calls;
        if pooled == 0 {
            0.0
        } else {
            self.spinup_us as f64 / pooled as f64
        }
    }

    /// Mean busy worker-time per mapped item, across inline and pooled
    /// calls alike. 0.0 until items have been mapped.
    pub fn busy_us_per_item(&self) -> f64 {
        if self.items == 0 {
            0.0
        } else {
            self.busy_us as f64 / self.items as f64
        }
    }

    fn absorb(&mut self, call: &CallProfile) {
        self.calls += 1;
        if call.inline {
            self.inline_calls += 1;
        }
        self.wall_us += call.wall_us;
        self.busy_us += call.busy_us();
        self.wait_us += call.wait_us();
        self.idle_us += call.idle_us();
        self.spinup_us += call.spinup_us;
        self.teardown_us += call.teardown_us;
        self.items += call.items;
        self.chunks += call.chunks;
        self.spawned_threads += call.spawned_threads;
        self.allocs += call.allocs();
        self.alloc_bytes += call.alloc_bytes();
        self.max_workers = self.max_workers.max(call.workers.len() as u64);
        self.utilization_sum += call.utilization();
        self.imbalance_sum += call.imbalance();
        self.steal_sum += call.steal_ratio();
    }
}

/// A frozen view of the whole store: per-label aggregates plus the most
/// recent calls verbatim (newest last). This is what `GET /profile`
/// serves and what the pool report renders.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProfSnapshot {
    /// Total calls ever recorded (recent ring may hold fewer).
    pub total_calls: u64,
    /// Per-label cumulative aggregates, sorted by label.
    pub labels: Vec<LabelSummary>,
    /// The last [`RECENT_CAP`] calls, oldest first.
    pub recent: Vec<CallProfile>,
}

#[derive(Default)]
struct StoreInner {
    seq: u64,
    epoch: Option<std::time::Instant>,
    labels: BTreeMap<String, LabelSummary>,
    recent: VecDeque<CallProfile>,
}

static STORE: Mutex<Option<StoreInner>> = Mutex::new(None);

fn with_store<R>(f: impl FnOnce(&mut StoreInner) -> R) -> R {
    let mut guard = STORE.lock().unwrap_or_else(|e| e.into_inner());
    f(guard.get_or_insert_with(StoreInner::default))
}

/// Records one call. The store assigns `seq` and `start_us` (relative
/// to the first profiled call in the process); pass `started` as the
/// call's entry instant. Returns the assigned sequence number.
pub fn record_call(mut profile: CallProfile, started: std::time::Instant) -> u64 {
    with_store(|store| {
        store.seq += 1;
        profile.seq = store.seq;
        let epoch = *store.epoch.get_or_insert(started);
        profile.start_us = started.saturating_duration_since(epoch).as_micros() as u64;
        store
            .labels
            .entry(profile.label.clone())
            .or_insert_with(|| LabelSummary {
                label: profile.label.clone(),
                ..LabelSummary::default()
            })
            .absorb(&profile);
        if store.recent.len() == RECENT_CAP {
            store.recent.pop_front();
        }
        let seq = profile.seq;
        store.recent.push_back(profile);
        seq
    })
}

/// Freezes the store.
pub fn snapshot() -> ProfSnapshot {
    with_store(|store| ProfSnapshot {
        total_calls: store.seq,
        labels: store.labels.values().cloned().collect(),
        recent: store.recent.iter().cloned().collect(),
    })
}

/// Clears every aggregate and recent call (sequence numbers restart).
/// Benchmark harnesses call this between measurement points.
pub fn reset() {
    with_store(|store| *store = StoreInner::default());
}

/// One label's cumulative aggregate, if any call has carried it — a
/// cheap point read for adaptive dispatch decisions (the GP engine sizes
/// its minimum batch from the scoring label's measured spin-up share).
pub fn label_summary(label: &str) -> Option<LabelSummary> {
    with_store(|store| store.labels.get(label).cloned())
}

/// The adaptive dispatch threshold for `label`'s workload: the minimum
/// item count for which waking the pool is predicted to beat draining
/// the batch inline on the submitting thread.
///
/// With `t` threads, farming `w` microseconds of work out saves at most
/// `w·(t-1)/t` against inline execution and costs one wake-up, so the
/// break-even batch is `spinup · t/(t-1)` worth of work; the factor of 2
/// keeps marginal batches inline, where the caller-participating pool
/// path and the inline path cost nearly the same anyway. Until a pooled
/// call has been measured under `label` (or when per-item cost reads as
/// zero) the threshold is 0 — use the pool, which is what seeds the
/// label's aggregate. Clamped to 512 items so one pessimistic cold-start
/// sample (thread spawn inflates the first spin-up) can never pin a real
/// population's work inline forever.
///
/// One hardware fact overrides the measurements: when the host cannot
/// actually run a second worker ([`std::thread::available_parallelism`]
/// ≤ 1), pooled dispatch of compute-bound work can only lose — the
/// "parallel" worker timeshares the caller's core and every wake-up is
/// pure overhead. Spin-up *samples* are bistable there (a pre-warmed
/// worker occasionally wakes fast, luring the threshold down), so the
/// core count gates absolutely: the threshold is `usize::MAX` and every
/// batch drains inline.
pub fn break_even_items(label: &str, threads: usize) -> usize {
    if threads <= 1 {
        return 0;
    }
    // Cached: `available_parallelism` re-reads cgroup quota files on
    // every call on Linux (tens of microseconds), and this runs on the
    // dispatch hot path once per scoring batch.
    static AVAILABLE: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    let available = *AVAILABLE.get_or_init(|| {
        std::thread::available_parallelism().map_or(usize::MAX, |n| n.get())
    });
    if available <= 1 {
        return usize::MAX;
    }
    let Some(label) = label_summary(label) else {
        return 0;
    };
    let spinup_us = label.mean_spinup_us();
    let item_us = label.busy_us_per_item();
    if spinup_us <= 0.0 || item_us <= 0.0 {
        return 0;
    }
    let break_even_us = 2.0 * spinup_us * threads as f64 / (threads as f64 - 1.0);
    ((break_even_us / item_us).ceil() as usize).min(512)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    fn call(label: &str, busy: [u64; 2], wall: u64) -> CallProfile {
        CallProfile {
            label: label.to_string(),
            wall_us: wall,
            items: 100,
            chunk_size: 13,
            chunks: 8,
            workers: busy
                .iter()
                .enumerate()
                .map(|(i, &b)| WorkerStats {
                    worker: i as u64,
                    busy_us: b,
                    wait_us: 5,
                    idle_us: wall - b - 5,
                    chunks: 4,
                    items: 50,
                    ..WorkerStats::default()
                })
                .collect(),
            spinup_us: 40,
            teardown_us: 10,
            spawned_threads: 2,
            ..CallProfile::default()
        }
    }

    #[test]
    fn ratios_are_sane() {
        let c = call("gp.score", [800, 400], 1000);
        assert!((c.utilization() - 0.6).abs() < 1e-9);
        assert!((c.imbalance() - 800.0 / 600.0).abs() < 1e-9);
        assert_eq!(c.steal_ratio(), 0.0);
        assert!((c.spinup_share() - 0.04).abs() < 1e-9);
        let inline = CallProfile {
            inline: true,
            wall_us: 500,
            ..CallProfile::default()
        };
        assert_eq!(inline.utilization(), 1.0);
        assert_eq!(inline.idle_share(), 0.0);
    }

    #[test]
    fn steal_ratio_counts_excess_claims() {
        let mut c = call("x", [900, 100], 1000);
        c.workers[0].chunks = 7;
        c.workers[1].chunks = 1;
        // fair share 4 each; worker 0 claimed 3 extra of 8 chunks.
        assert!((c.steal_ratio() - 3.0 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn store_aggregates_by_label_and_rings_recent() {
        reset();
        let t0 = Instant::now();
        for i in 0..(RECENT_CAP + 3) {
            let label = if i % 2 == 0 { "even" } else { "odd" };
            record_call(call(label, [10, 10], 30), t0);
        }
        let snap = snapshot();
        assert_eq!(snap.total_calls, (RECENT_CAP + 3) as u64);
        assert_eq!(snap.recent.len(), RECENT_CAP);
        // Oldest entries fell out of the ring but not the aggregates.
        assert_eq!(snap.recent.first().unwrap().seq, 4);
        let total: u64 = snap.labels.iter().map(|l| l.calls).sum();
        assert_eq!(total, snap.total_calls);
        let even = snap.labels.iter().find(|l| l.label == "even").unwrap();
        assert!(even.mean_utilization() > 0.0);
        assert_eq!(even.max_workers, 2);
        reset();
        assert_eq!(snapshot().total_calls, 0);
    }
}
