//! The textual pool report: turns a [`ProfSnapshot`] into the table and
//! diagnosis lines printed by `dpr-bench profile` / `dpr-bench scale`.

use crate::store::{LabelSummary, ProfSnapshot};

/// A rendered pool report plus the machine-readable diagnosis behind it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PoolReport {
    /// The full human-readable report text.
    pub text: String,
    /// One sentence per detected scaling problem, worst first. Empty
    /// when the pool looks healthy.
    pub diagnosis: Vec<String>,
}

/// Overhead shares above which a cause makes it into the diagnosis.
const SHARE_THRESHOLD: f64 = 0.10;
/// Mean imbalance above which the pool is called unbalanced.
const IMBALANCE_THRESHOLD: f64 = 1.25;

fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

fn diagnose(label: &LabelSummary) -> Vec<(f64, String)> {
    let mut causes: Vec<(f64, String)> = Vec::new();
    let parallel_calls = label.calls - label.inline_calls;
    if parallel_calls == 0 {
        return causes;
    }
    // Shares of total worker-time (busy+wait+idle), the pool's paid-for
    // capacity over these calls.
    let capacity = (label.busy_us + label.wait_us + label.idle_us).max(1) as f64;
    let idle = label.idle_us as f64 / capacity;
    let wait = label.wait_us as f64 / capacity;
    let spinup = label.spinup_us as f64 / label.wall_us.max(1) as f64;
    if spinup > SHARE_THRESHOLD {
        causes.push((
            spinup,
            format!(
                "[{}] thread spin-up costs {} of wall time ({} threads spawned over {} calls) — \
                 spawn latency, not compute, dominates; a persistent pool amortizes it",
                label.label,
                pct(spinup),
                label.spawned_threads,
                label.calls,
            ),
        ));
    }
    if idle > SHARE_THRESHOLD {
        causes.push((
            idle,
            format!(
                "[{}] workers are idle for {} of pool capacity (spin-up gaps + end-of-call \
                 stragglers) — utilization {}; smaller tail chunks or fewer workers would help",
                label.label,
                pct(idle),
                pct(label.mean_utilization()),
            ),
        ));
    }
    if wait > SHARE_THRESHOLD {
        causes.push((
            wait,
            format!(
                "[{}] workers spend {} of pool capacity on chunk claim/store synchronization — \
                 chunks are too fine ({} chunks for {} items)",
                label.label,
                pct(wait),
                label.chunks,
                label.items,
            ),
        ));
    }
    let imbalance = label.mean_imbalance();
    if imbalance > IMBALANCE_THRESHOLD {
        causes.push((
            (imbalance - 1.0) / 10.0,
            format!(
                "[{}] work is unbalanced: the busiest worker does {:.2}× the mean share \
                 (steal ratio {}) — item costs vary more than the chunk size absorbs",
                label.label,
                imbalance,
                pct(label.mean_steal_ratio()),
            ),
        ));
    }
    causes
}

/// Renders the report for a snapshot. `heading` labels the section
/// (e.g. `"pool report"` or `"pool report @ 2 threads"`).
pub fn render_report(snapshot: &ProfSnapshot, heading: &str) -> PoolReport {
    let mut text = String::new();
    let mut all_causes: Vec<(f64, String)> = Vec::new();
    text.push_str(&format!("== {heading} ==\n"));
    if snapshot.total_calls == 0 {
        text.push_str("no profiled par_map calls (is DPR_PROF=1 set?)\n");
        return PoolReport {
            text,
            diagnosis: Vec::new(),
        };
    }
    text.push_str(&format!(
        "{:<14} {:>6} {:>7} {:>9} {:>6} {:>6} {:>6} {:>7} {:>7} {:>8}\n",
        "label", "calls", "workers", "items", "util", "imbal", "steal", "spinup", "spawns", "allocs"
    ));
    for label in &snapshot.labels {
        text.push_str(&format!(
            "{:<14} {:>6} {:>7} {:>9} {:>6} {:>6.2} {:>6} {:>7} {:>7} {:>8}\n",
            label.label,
            label.calls,
            label.max_workers,
            label.items,
            pct(label.mean_utilization()),
            label.mean_imbalance(),
            pct(label.mean_steal_ratio()),
            format!("{}us", label.spinup_us / label.calls.max(1)),
            label.spawned_threads,
            label.allocs,
        ));
        let busy = label.busy_us;
        let capacity = (label.busy_us + label.wait_us + label.idle_us).max(1);
        text.push_str(&format!(
            "{:<14} busy {} | wait {} | idle {} of {}ms pool capacity; alloc {} bytes\n",
            "",
            pct(busy as f64 / capacity as f64),
            pct(label.wait_us as f64 / capacity as f64),
            pct(label.idle_us as f64 / capacity as f64),
            capacity / 1000,
            label.alloc_bytes,
        ));
        all_causes.extend(diagnose(label));
    }
    all_causes.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let diagnosis: Vec<String> = all_causes.into_iter().map(|(_, msg)| msg).collect();
    if diagnosis.is_empty() {
        text.push_str("diagnosis: pool looks healthy (no overhead share above 10%)\n");
    } else {
        for line in &diagnosis {
            text.push_str(&format!("diagnosis: {line}\n"));
        }
    }
    PoolReport { text, diagnosis }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{CallProfile, WorkerStats};

    fn snapshot_with(workers: Vec<WorkerStats>, wall: u64, spinup: u64) -> ProfSnapshot {
        let call = CallProfile {
            label: "gp.score".into(),
            seq: 1,
            wall_us: wall,
            items: 64,
            chunk_size: 8,
            chunks: 8,
            workers,
            spinup_us: spinup,
            spawned_threads: 2,
            ..CallProfile::default()
        };
        let mut label = LabelSummary {
            label: "gp.score".into(),
            ..LabelSummary::default()
        };
        // Mirror the store's absorption so the report sees real sums.
        label.calls = 1;
        label.wall_us = call.wall_us;
        label.busy_us = call.busy_us();
        label.wait_us = call.wait_us();
        label.idle_us = call.idle_us();
        label.spinup_us = call.spinup_us;
        label.items = call.items;
        label.chunks = call.chunks;
        label.spawned_threads = call.spawned_threads;
        label.max_workers = call.workers.len() as u64;
        label.utilization_sum = call.utilization();
        label.imbalance_sum = call.imbalance();
        label.steal_sum = call.steal_ratio();
        ProfSnapshot {
            total_calls: 1,
            labels: vec![label],
            recent: vec![call],
        }
    }

    fn worker(busy: u64, wait: u64, idle: u64) -> WorkerStats {
        WorkerStats {
            busy_us: busy,
            wait_us: wait,
            idle_us: idle,
            chunks: 4,
            items: 32,
            ..WorkerStats::default()
        }
    }

    #[test]
    fn empty_snapshot_reports_no_calls() {
        let report = render_report(&ProfSnapshot::default(), "pool report");
        assert!(report.text.contains("no profiled par_map calls"));
        assert!(report.diagnosis.is_empty());
    }

    #[test]
    fn spinup_dominated_call_names_spinup_first() {
        // 2 workers, 1000us wall, 400us spin-up, mostly idle.
        let snap = snapshot_with(vec![worker(300, 10, 690), worker(250, 10, 740)], 1000, 400);
        let report = render_report(&snap, "pool report");
        assert!(!report.diagnosis.is_empty());
        assert!(
            report.diagnosis.iter().any(|d| d.contains("idle"))
                || report.diagnosis.iter().any(|d| d.contains("spin-up")),
            "expected a concrete cause, got {:?}",
            report.diagnosis
        );
        // The worst cause (idle share ~71%) outranks spin-up (40%).
        assert!(report.diagnosis[0].contains("idle"));
        assert!(report.text.contains("gp.score"));
    }

    #[test]
    fn balanced_busy_pool_is_healthy() {
        let snap = snapshot_with(vec![worker(980, 10, 10), worker(975, 10, 15)], 1000, 5);
        let report = render_report(&snap, "pool report");
        assert!(report.diagnosis.is_empty(), "{:?}", report.diagnosis);
        assert!(report.text.contains("pool looks healthy"));
    }
}
