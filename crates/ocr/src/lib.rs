//! OCR simulation and incorrect-ESV filtering (paper §3.3).
//!
//! The paper films the diagnostic tool's screen with a camera and runs
//! Tesseract over the frames; OCR is imperfect (Tab. 4: 97.6% of AUTEL 919
//! frames and 85.0% of LAUNCH X431 frames read perfectly) and its failure
//! modes — dropped decimal points ("25.00" → "2500"), digit confusions
//! ("3.7" → "8.0"), truncations ("11.4" → "4") — are exactly the outliers
//! that break the naive regression baselines in Tab. 10.
//!
//! This crate is the camera + Tesseract substitute:
//!
//! * [`OcrChannel`] — a deterministic noise channel keyed on the tool
//!   profile's per-value read accuracy, injecting the three error classes
//!   above at the paper-reported rates;
//! * [`read_frames`] — runs the channel over recorded
//!   [`dpr_tool::UiFrame`]s, producing timestamped
//!   [`OcrReading`]s (the "UI text extraction" step);
//! * [`RangeBook`] + [`filter_readings`] — the paper's two-stage
//!   incorrect-ESV filter: a plausibility range per signal type, then
//!   MAD-based outlier detection over each label's time series.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dpr_can::Micros;
use dpr_tool::{UiFrame, WidgetKind};
use serde::{Deserialize, Serialize};

/// SplitMix64 — deterministic hash driving all noise decisions.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit(seed: u64) -> f64 {
    (splitmix64(seed) >> 11) as f64 / (1u64 << 53) as f64
}

/// The three OCR error classes the paper reports, with observed examples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OcrErrorKind {
    /// The decimal point is missed: "25.00" → "2500" (paper §3.3).
    DecimalPointDrop,
    /// A digit is confused with a look-alike: "3.7" → "8.7" (paper §4.4).
    DigitConfusion,
    /// Leading characters are lost: "11.4" → "4" (paper §4.4).
    Truncation,
}

/// A deterministic OCR noise channel.
///
/// `value_accuracy` is the probability that one displayed value widget is
/// read exactly; when a read fails, one of the three [`OcrErrorKind`]s
/// corrupts the text. All decisions are pure functions of
/// `(seed, frame, widget)`, so captures replay identically.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OcrChannel {
    /// Probability of reading one value exactly.
    pub value_accuracy: f64,
    /// Channel seed.
    pub seed: u64,
}

impl OcrChannel {
    /// Creates a channel with the given per-value accuracy.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= value_accuracy <= 1.0`.
    pub fn new(value_accuracy: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&value_accuracy),
            "accuracy must be a probability"
        );
        OcrChannel {
            value_accuracy,
            seed,
        }
    }

    /// A perfect channel (for ablations and ground-truth pipelines).
    pub fn perfect() -> Self {
        OcrChannel {
            value_accuracy: 1.0,
            seed: 0,
        }
    }

    /// Reads one value text, possibly corrupting it.
    pub fn read(&self, frame_idx: usize, widget_idx: usize, text: &str) -> String {
        let key = self
            .seed
            .wrapping_mul(0x2545_F491_4F6C_DD1D)
            .wrapping_add((frame_idx as u64) << 20)
            .wrapping_add(widget_idx as u64);
        if unit(key) < self.value_accuracy {
            return text.to_string();
        }
        let roll = unit(splitmix64(key));
        let kind = if roll < 0.4 && text.contains('.') {
            OcrErrorKind::DecimalPointDrop
        } else if roll < 0.8 {
            OcrErrorKind::DigitConfusion
        } else {
            OcrErrorKind::Truncation
        };
        corrupt(text, kind, splitmix64(key ^ 0xABCD))
    }

    /// Whether a given (frame, widget) read would be exact — used by the
    /// Tab. 4 harness to count correct frames without string comparison.
    pub fn reads_exactly(&self, frame_idx: usize, widget_idx: usize) -> bool {
        let key = self
            .seed
            .wrapping_mul(0x2545_F491_4F6C_DD1D)
            .wrapping_add((frame_idx as u64) << 20)
            .wrapping_add(widget_idx as u64);
        unit(key) < self.value_accuracy
    }
}

/// Applies one error class to a value string.
fn corrupt(text: &str, kind: OcrErrorKind, entropy: u64) -> String {
    match kind {
        OcrErrorKind::DecimalPointDrop => text.replace('.', ""),
        OcrErrorKind::DigitConfusion => {
            // Tesseract-style look-alike confusions.
            fn confuse(c: char) -> char {
                match c {
                    '0' => '8',
                    '1' => '4',
                    '3' => '8',
                    '5' => '6',
                    '6' => '5',
                    '7' => '1',
                    '8' => '0',
                    '9' => '4',
                    other => other,
                }
            }
            let digits: Vec<usize> = text
                .char_indices()
                .filter(|(_, c)| c.is_ascii_digit())
                .map(|(i, _)| i)
                .collect();
            if digits.is_empty() {
                return text.to_string();
            }
            let which = digits[(entropy as usize) % digits.len()];
            text.char_indices()
                .map(|(i, c)| if i == which { confuse(c) } else { c })
                .collect()
        }
        OcrErrorKind::Truncation => {
            let keep = 1 + (entropy as usize) % 2;
            let chars: Vec<char> = text.chars().collect();
            if chars.len() <= keep {
                text.to_string()
            } else {
                chars[chars.len() - keep..].iter().collect()
            }
        }
    }
}

/// One OCR'd value: a timestamped (label, text) pair plus its parse.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OcrReading {
    /// The camera timestamp of the frame (from the timestamp overlay).
    pub at: Micros,
    /// The screen title the value appeared under (scopes labels to one
    /// ECU page; e.g. "Engine - Data Stream p1").
    pub screen: String,
    /// The row label as OCR'd.
    pub label: String,
    /// The value text as OCR'd.
    pub text: String,
    /// The numeric parse of `text`, if it parses.
    pub value: Option<f64>,
}

/// Runs OCR over recorded frames, pairing each value widget with the label
/// on its row and stamping it with the frame's timestamp-overlay time.
/// Placeholder values ("---") are skipped — the tool has not displayed a
/// reading yet.
pub fn read_frames(frames: &[UiFrame], channel: &OcrChannel) -> Vec<OcrReading> {
    let mut out = Vec::new();
    for (frame_idx, frame) in frames.iter().enumerate() {
        let shot = &frame.screenshot;
        let screen = shot
            .widgets_of(WidgetKind::Title)
            .next()
            .map(|w| w.text.clone())
            .unwrap_or_default();
        for (widget_idx, value) in shot
            .widgets_of(WidgetKind::Value)
            .enumerate()
            .filter(|(_, w)| w.text != "---")
        {
            let label = shot
                .widgets_of(WidgetKind::Label)
                .find(|l| l.y == value.y && l.x < value.x)
                .map(|l| l.text.clone())
                .unwrap_or_default();
            let text = channel.read(frame_idx, widget_idx, &value.text);
            let exact = text == value.text;
            let value = text.trim().parse::<f64>().ok();
            dpr_telemetry::counter("ocr.readings_read").inc(1);
            if value.is_none() {
                dpr_telemetry::counter("ocr.readings_unparsed").inc(1);
            }
            if dpr_evidence::active() {
                // The sample id is the reading's index in this output
                // stream — the filter's verdicts join on it.
                dpr_evidence::record(dpr_evidence::Event::OcrSample(dpr_evidence::OcrSample {
                    sample_id: out.len() as u32,
                    at_us: frame.at.as_micros(),
                    screen: screen.clone(),
                    label: label.clone(),
                    text: text.clone(),
                    value: value.and_then(dpr_evidence::finite),
                    exact,
                    confidence: channel.value_accuracy,
                }));
            }
            out.push(OcrReading {
                at: frame.at,
                screen: screen.clone(),
                label,
                text,
                value,
            });
        }
    }
    out
}

/// Stage 1 of the incorrect-ESV filter: a plausibility range per signal
/// type, keyed by label keywords (the paper: "we set a normal value range
/// for each type of ESV").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RangeBook {
    entries: Vec<(String, f64, f64)>,
    default: (f64, f64),
}

impl RangeBook {
    /// The default book covering the signal families in the evaluation.
    pub fn standard() -> Self {
        let entries = vec![
            ("engine speed".to_string(), 0.0, 20000.0),
            ("rpm".to_string(), 0.0, 20000.0),
            ("idle speed".to_string(), 0.0, 20000.0),
            ("speed".to_string(), 0.0, 400.0),
            ("temperature".to_string(), -60.0, 400.0),
            ("voltage".to_string(), 0.0, 60.0),
            ("throttle".to_string(), -5.0, 105.0),
            ("load".to_string(), -5.0, 130.0),
            ("level".to_string(), -5.0, 105.0),
            ("duty".to_string(), -5.0, 130.0),
            ("trim".to_string(), -110.0, 110.0),
            ("pressure".to_string(), 0.0, 1000.0),
            ("torque".to_string(), -500.0, 500.0),
            ("angle".to_string(), -800.0, 800.0),
            ("rate".to_string(), 0.0, 1000.0),
            ("flow".to_string(), 0.0, 2000.0),
            ("status".to_string(), 0.0, 10.0),
            ("position".to_string(), -10.0, 110.0),
            ("mode".to_string(), 0.0, 10.0),
        ];
        RangeBook {
            entries,
            default: (-100_000.0, 100_000.0),
        }
    }

    /// Adds or overrides a keyword range.
    pub fn set(&mut self, keyword: impl Into<String>, min: f64, max: f64) {
        self.entries.insert(0, (keyword.into().to_lowercase(), min, max));
    }

    /// The plausible range for a label (first matching keyword wins).
    pub fn range_for(&self, label: &str) -> (f64, f64) {
        let lower = label.to_lowercase();
        self.entries
            .iter()
            .find(|(k, _, _)| lower.contains(k))
            .map(|&(_, lo, hi)| (lo, hi))
            .unwrap_or(self.default)
    }

    /// Stage-1 verdict for one reading.
    pub fn plausible(&self, label: &str, value: f64) -> bool {
        let (lo, hi) = self.range_for(label);
        value >= lo && value <= hi
    }
}

impl Default for RangeBook {
    fn default() -> Self {
        Self::standard()
    }
}

/// Stage 2: MAD (median absolute deviation) outlier rejection within one
/// label's series — "during a short period of time, the measured ESVs
/// cannot change greatly" (paper §3.3).
///
/// Returns the indices of `values` to keep.
pub fn mad_inliers(values: &[f64], k: f64) -> Vec<usize> {
    if values.len() < 4 {
        return (0..values.len()).collect();
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let median = sorted[sorted.len() / 2];
    let mut deviations: Vec<f64> = values.iter().map(|v| (v - median).abs()).collect();
    deviations.sort_by(|a, b| a.total_cmp(b));
    let mad = deviations[deviations.len() / 2];
    // Guard: a (near-)constant series has MAD 0, which would reject every
    // deviation — including the single-step changes of enumeration signals
    // (door 0→1). OCR errors are order-of-magnitude events (dropped
    // decimal points, truncations), so an absolute floor of 0.5 keeps
    // genuine small steps while still rejecting 10–100× outliers.
    let scale = mad.max(median.abs() * 0.01).max(0.5);
    values
        .iter()
        .enumerate()
        .filter(|(_, v)| ((*v - median).abs()) <= k * scale)
        .map(|(i, _)| i)
        .collect()
}

/// Sliding-window outlier rejection — the literal reading of the paper's
/// §3.3: "during a short period of time, the measured ESVs cannot change
/// greatly". Each sample is compared against the median of its local
/// window; isolated OCR spikes stick out from their neighbourhood and are
/// dropped, while genuine regime changes (a ramp wrapping, a gear change)
/// carry several consistent samples and survive — which a global MAD over
/// the whole series would wrongly reject.
///
/// Returns the indices of `values` to keep.
pub fn local_inliers(values: &[f64], k: f64) -> Vec<usize> {
    const HALF_WINDOW: usize = 3;
    if values.len() < 4 {
        return (0..values.len()).collect();
    }
    let mut keep = Vec::with_capacity(values.len());
    for i in 0..values.len() {
        let lo = i.saturating_sub(HALF_WINDOW);
        let hi = (i + HALF_WINDOW + 1).min(values.len());
        let mut window: Vec<f64> = values[lo..hi].to_vec();
        window.sort_by(|a, b| a.total_cmp(b));
        let median = window[window.len() / 2];
        let mut deviations: Vec<f64> = window.iter().map(|v| (v - median).abs()).collect();
        deviations.sort_by(|a, b| a.total_cmp(b));
        let mad = deviations[deviations.len() / 2];
        let scale = mad.max(median.abs() * 0.01).max(0.5);
        if (values[i] - median).abs() <= k * scale {
            keep.push(i);
        }
    }
    keep
}

/// The full two-stage filter: drops unparseable readings, applies the
/// range book, then rejects local outliers within each label's series
/// (k = 8, generous enough to keep genuine dynamics, tight enough to drop
/// decimal-point errors that inflate values 10–100×).
pub fn filter_readings(readings: &[OcrReading], book: &RangeBook) -> Vec<OcrReading> {
    // Per-reading verdicts feed the evidence ledger; the sample id is
    // the reading's index in `readings`, matching the ids
    // [`read_frames`] assigned.
    let verdict = |sample_id: usize, verdict: &str| {
        if dpr_evidence::active() {
            dpr_evidence::record(dpr_evidence::Event::OcrVerdict(dpr_evidence::OcrVerdict {
                sample_id: sample_id as u32,
                verdict: verdict.to_string(),
            }));
        }
    };
    // Stage 1, keeping original indices for the verdict stream.
    let mut stage1: Vec<(usize, &OcrReading)> = Vec::new();
    for (idx, r) in readings.iter().enumerate() {
        match r.value {
            None => verdict(idx, "rejected_unparsed"),
            Some(v) if !book.plausible(&r.label, v) => verdict(idx, "rejected_range"),
            Some(_) => stage1.push((idx, r)),
        }
    }
    // Stage 2, per (screen, label) series — the label scope is one ECU
    // page.
    let mut labels: Vec<(&str, &str)> = stage1
        .iter()
        .map(|(_, r)| (r.screen.as_str(), r.label.as_str()))
        .collect();
    labels.sort_unstable();
    labels.dedup();
    let mut keep: Vec<(usize, &OcrReading)> = Vec::new();
    for (screen, label) in labels {
        let series: Vec<(usize, &OcrReading)> = stage1
            .iter()
            .filter(|(_, r)| r.screen == screen && r.label == label)
            .copied()
            .collect();
        let values: Vec<f64> = series
            .iter()
            .map(|(_, r)| r.value.expect("stage 1 kept only parsed readings"))
            .collect();
        let inliers = local_inliers(&values, 8.0);
        for (pos, &(idx, r)) in series.iter().enumerate() {
            if inliers.binary_search(&pos).is_ok() {
                verdict(idx, "kept");
                keep.push((idx, r));
            } else {
                verdict(idx, "rejected_outlier");
            }
        }
    }
    keep.sort_by_key(|(_, r)| r.at);
    let kept = keep.len();
    dpr_telemetry::counter("ocr.filter_rejected_range").inc((readings.len() - stage1.len()) as u64);
    dpr_telemetry::counter("ocr.filter_rejected_outlier").inc((stage1.len() - kept) as u64);
    dpr_telemetry::counter("ocr.filter_kept").inc(kept as u64);
    keep.into_iter().map(|(_, r)| r.clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_channel_is_identity() {
        let c = OcrChannel::perfect();
        for i in 0..200 {
            assert_eq!(c.read(i, 0, "123.4"), "123.4");
        }
    }

    #[test]
    fn zero_accuracy_always_corrupts_numbers() {
        let c = OcrChannel::new(0.0, 7);
        let mut changed = 0;
        for i in 0..100 {
            if c.read(i, 0, "25.00") != "25.00" {
                changed += 1;
            }
        }
        assert!(changed > 90, "only {changed} corrupted");
    }

    #[test]
    fn channel_is_deterministic() {
        let c = OcrChannel::new(0.5, 42);
        let a: Vec<String> = (0..50).map(|i| c.read(i, 3, "1234.5")).collect();
        let b: Vec<String> = (0..50).map(|i| c.read(i, 3, "1234.5")).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn error_classes_match_paper_examples() {
        assert_eq!(corrupt("25.00", OcrErrorKind::DecimalPointDrop, 0), "2500");
        let confused = corrupt("3.7", OcrErrorKind::DigitConfusion, 0);
        assert_ne!(confused, "3.7");
        assert_eq!(confused.len(), 3);
        let truncated = corrupt("11.4", OcrErrorKind::Truncation, 0);
        assert!(truncated.len() < 4, "{truncated}");
    }

    #[test]
    fn accuracy_rate_is_respected() {
        let c = OcrChannel::new(0.9, 3);
        let exact = (0..10_000)
            .filter(|&i| c.reads_exactly(i, 0))
            .count();
        let rate = exact as f64 / 10_000.0;
        assert!((rate - 0.9).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn range_book_keyword_matching() {
        let book = RangeBook::standard();
        assert!(book.plausible("Engine Speed", 6500.0));
        assert!(!book.plausible("Vehicle Speed", 2500.0)); // "speed" cap 400
        assert!(book.plausible("Coolant Temperature", -30.0));
        assert!(!book.plausible("Battery Voltage", 138.0));
        // Unknown labels get the permissive default.
        assert!(book.plausible("Mystery Signal", 50_000.0));
    }

    #[test]
    fn engine_speed_not_shadowed_by_speed() {
        let book = RangeBook::standard();
        // "Engine Speed" contains both keywords; the rpm-range entry must
        // win because it appears first.
        let (_, hi) = book.range_for("Engine Speed");
        assert_eq!(hi, 20000.0);
    }

    #[test]
    fn range_book_override() {
        let mut book = RangeBook::standard();
        book.set("speed", 0.0, 100.0);
        assert!(!book.plausible("Vehicle Speed", 150.0));
    }

    #[test]
    fn mad_rejects_decimal_point_outlier() {
        // "25.0" family with one "2500" (dropped point).
        let mut values: Vec<f64> = (0..30).map(|i| 25.0 + f64::from(i % 5) * 0.3).collect();
        values.push(2500.0);
        let keep = mad_inliers(&values, 8.0);
        assert_eq!(keep.len(), 30);
        assert!(!keep.contains(&30));
    }

    #[test]
    fn mad_keeps_genuine_dynamics() {
        // A ramp from 20 to 110 — all values are genuine.
        let values: Vec<f64> = (0..40).map(|i| 20.0 + f64::from(i) * 2.25).collect();
        let keep = mad_inliers(&values, 8.0);
        assert_eq!(keep.len(), 40, "ramp values must all survive");
    }

    #[test]
    fn mad_small_series_passes_through() {
        assert_eq!(mad_inliers(&[1.0, 9999.0], 8.0).len(), 2);
    }

    #[test]
    fn local_inliers_keep_regime_changes_but_drop_spikes() {
        // A ramp that wraps: ... 108, 109, 110, 20, 21, 22 ... — all
        // genuine. Plus one lone OCR spike.
        let mut values: Vec<f64> = (90..=110).map(f64::from).collect();
        values.extend((20..=35).map(f64::from));
        let wrap_start = 21;
        values.insert(10, 9200.0); // decimal-point-drop spike
        let keep = local_inliers(&values, 8.0);
        assert!(!keep.contains(&10), "the spike must be dropped");
        // Every post-wrap sample survives.
        for i in (wrap_start + 1)..values.len() {
            assert!(keep.contains(&i), "post-wrap sample {i} wrongly dropped");
        }
    }

    #[test]
    fn filter_pipeline_end_to_end() {
        let mk = |at_ms: u64, label: &str, text: &str| OcrReading {
            at: Micros::from_millis(at_ms),
            screen: "Engine - Data Stream p1".to_string(),
            label: label.to_string(),
            text: text.to_string(),
            value: text.parse().ok(),
        };
        let mut readings = Vec::new();
        for i in 0..25u64 {
            readings.push(mk(i * 100, "Coolant Temperature", &format!("{}", 80 + i % 4)));
        }
        readings.push(mk(2600, "Coolant Temperature", "8000")); // range reject
        readings.push(mk(2700, "Coolant Temperature", "2.4.1")); // unparseable
        readings.push(mk(2800, "Coolant Temperature", "350")); // MAD reject
        let book = RangeBook::standard();
        let kept = filter_readings(&readings, &book);
        assert_eq!(kept.len(), 25, "{kept:?}");
        assert!(kept.iter().all(|r| r.value.unwrap() < 100.0));
        // Output is time-ordered.
        for pair in kept.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
    }

    #[test]
    fn read_frames_pairs_labels_values_and_skips_placeholders() {
        use dpr_tool::{Screenshot, UiFrame};
        let mut shot = Screenshot::new(Micros::from_secs(2), 40, 10);
        shot.push(WidgetKind::Label, 1, 2, "Engine Speed");
        shot.push(WidgetKind::Value, 25, 2, "2497");
        shot.push(WidgetKind::Label, 1, 3, "Vehicle Speed");
        shot.push(WidgetKind::Value, 25, 3, "---");
        let frames = vec![UiFrame {
            at: Micros::from_secs(2),
            screenshot: shot,
        }];
        let readings = read_frames(&frames, &OcrChannel::perfect());
        assert_eq!(readings.len(), 1);
        assert_eq!(readings[0].label, "Engine Speed");
        assert_eq!(readings[0].value, Some(2497.0));
        assert_eq!(readings[0].at, Micros::from_secs(2));
    }
}
