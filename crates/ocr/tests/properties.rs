//! Property-based tests for the OCR channel and the incorrect-ESV filter.

use dpr_can::Micros;
use dpr_ocr::{filter_readings, mad_inliers, OcrChannel, OcrReading, RangeBook};
use proptest::prelude::*;

fn reading(at_ms: u64, label: &str, value: f64) -> OcrReading {
    OcrReading {
        at: Micros::from_millis(at_ms),
        screen: "Engine - Data Stream p1".into(),
        label: label.into(),
        text: format!("{value}"),
        value: Some(value),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The channel is deterministic and total over arbitrary value texts.
    #[test]
    fn channel_deterministic_and_total(
        accuracy in 0.0f64..=1.0,
        seed in any::<u64>(),
        frame in 0usize..10_000,
        text in "[0-9]{1,4}(\\.[0-9]{1,2})?",
    ) {
        let c = OcrChannel::new(accuracy, seed);
        let a = c.read(frame, 0, &text);
        let b = c.read(frame, 0, &text);
        prop_assert_eq!(&a, &b);
        // Corruption never grows the text (all three error classes shrink
        // or keep length).
        prop_assert!(a.len() <= text.len());
    }

    /// With perfect accuracy the channel is the identity.
    #[test]
    fn perfect_channel_identity(frame in 0usize..1000, text in "[0-9]{1,6}") {
        prop_assert_eq!(OcrChannel::perfect().read(frame, 3, &text), text);
    }

    /// MAD inliers: output indices are valid, sorted, unique, and a tight
    /// cluster (spread well inside k times the absolute floor) survives
    /// entirely.
    #[test]
    fn mad_inliers_well_formed(values in proptest::collection::vec(15.0f64..16.0, 4..60)) {
        let keep = mad_inliers(&values, 8.0);
        prop_assert!(!keep.is_empty(), "a tight cluster must survive");
        for w in keep.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        prop_assert!(keep.iter().all(|&i| i < values.len()));
        // Spread 1.0 << k·scale (the 0.5 absolute floor × k = 4): nothing
        // gets rejected.
        prop_assert_eq!(keep.len(), values.len());
    }

    /// An injected 100× outlier is always rejected from a tight series.
    #[test]
    fn mad_rejects_injected_outlier(
        base in 20.0f64..200.0,
        n in 8usize..40,
        pos_frac in 0.0f64..1.0,
    ) {
        let mut values: Vec<f64> = (0..n).map(|i| base + (i % 5) as f64 * 0.2).collect();
        let pos = ((n as f64 * pos_frac) as usize).min(n - 1);
        values.insert(pos, base * 100.0);
        let keep = mad_inliers(&values, 8.0);
        prop_assert!(!keep.contains(&pos), "outlier at {pos} survived: {values:?}");
        prop_assert_eq!(keep.len(), n);
    }

    /// The full filter never invents readings and keeps output time-sorted.
    #[test]
    fn filter_output_subset_and_sorted(
        values in proptest::collection::vec(-1000.0f64..4000.0, 1..60)
    ) {
        let readings: Vec<OcrReading> = values
            .iter()
            .enumerate()
            .map(|(i, v)| reading(i as u64 * 100, "Engine Speed", *v))
            .collect();
        let kept = filter_readings(&readings, &RangeBook::standard());
        prop_assert!(kept.len() <= readings.len());
        for w in kept.windows(2) {
            prop_assert!(w[0].at <= w[1].at);
        }
        // Everything kept was in the input.
        for k in &kept {
            prop_assert!(readings.iter().any(|r| r == k));
        }
        // Stage 1: nothing outside the rpm range survives.
        let all_in_range = kept
            .iter()
            .all(|r| (0.0..=20000.0).contains(&r.value.unwrap()));
        prop_assert!(all_in_range);
    }
}
