//! Vendored std-only shim of the `criterion` benchmarking API surface this
//! workspace uses.
//!
//! Each benchmark runs a short warm-up followed by `sample_size` timed
//! samples and reports the median per-iteration wall time. This is a
//! smoke-test-grade harness for environments without the real crate — the
//! numbers are indicative, not statistically rigorous.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost (mirrors `criterion::BatchSize`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs: batch many iterations per sample.
    SmallInput,
    /// Large per-iteration inputs: one iteration per sample.
    LargeInput,
    /// One iteration per batch.
    PerIteration,
}

/// The timing driver handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` over repeated calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, and calibrate how many calls fit a measurable sample.
        let mut calls_per_sample = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..calls_per_sample {
                black_box(routine());
            }
            if start.elapsed() >= Duration::from_micros(50) || calls_per_sample >= 1 << 20 {
                break;
            }
            calls_per_sample *= 2;
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..calls_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / calls_per_sample as u32);
        }
    }

    /// Times `routine` over inputs produced by `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // One warm-up call.
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort_unstable();
        self.samples[self.samples.len() / 2]
    }
}

/// The benchmark registry/driver (mirrors `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

fn run_one(id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut bencher);
    println!("{id:<50} median {:>12?}", bencher.median());
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, 10, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions (mirrors `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point (mirrors `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("noop_add", |b| b.iter(|| black_box(1u64) + 1));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(5);
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    criterion_group!(benches, trivial);

    #[test]
    fn harness_runs_groups() {
        benches();
    }
}
