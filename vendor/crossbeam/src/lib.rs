//! Vendored shim exposing the `crossbeam::channel` subset this workspace
//! uses, implemented over [`std::sync::mpsc`].

#![forbid(unsafe_code)]

/// Multi-producer channels with the `crossbeam-channel` API shape.
pub mod channel {
    use std::fmt;
    use std::sync::mpsc;

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { tx }, Receiver { rx })
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        tx: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                tx: self.tx.clone(),
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, failing if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.tx.send(value).map_err(|e| SendError(e.0))
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        rx: mpsc::Receiver<T>,
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Returns a message if one is immediately available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.rx.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocks until a message arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.rx.recv().map_err(|_| RecvError)
        }

        /// Drains every message currently queued.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.try_recv().ok())
        }
    }

    /// Error returned by [`Sender::send`] when the channel is disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message was queued.
        Empty,
        /// All senders were dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`] when all senders are dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn send_try_recv_round_trip() {
        let (tx, rx) = channel::unbounded();
        tx.send(7).unwrap();
        assert_eq!(rx.try_recv(), Ok(7));
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Disconnected));
    }

    #[test]
    fn dropped_receiver_fails_send() {
        let (tx, rx) = channel::unbounded();
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
