//! Vendored std-only mini implementation of the `proptest` API surface this
//! workspace uses.
//!
//! Semantics: each `proptest!` test runs its body `ProptestConfig::cases`
//! times over inputs drawn from the given strategies with a deterministic
//! per-test RNG (derived from the test's name), so failures reproduce
//! exactly. There is no shrinking — the failing input is printed instead.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;

pub use rand::RngCore as TestRngCore;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Filters generated values, retrying until `f` accepts one (bounded).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// Object-safe strategy used by [`BoxedStrategy`] and `prop_oneof!`.
pub trait DynStrategy<V> {
    /// Generates one value.
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A heap-allocated, type-erased strategy.
pub struct BoxedStrategy<V> {
    inner: Box<dyn DynStrategy<V>>,
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.inner.generate_dyn(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 1000 candidates", self.whence);
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<V> {
    options: Vec<Box<dyn DynStrategy<V>>>,
}

impl<V> Union<V> {
    /// Creates a union over the given options.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn DynStrategy<V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        use rand::Rng;
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate_dyn(rng)
    }
}

// ——————————————————————— range strategies ———————————————————————

macro_rules! range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    use rand::Rng;
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    use rand::Rng;
                    rng.gen_range(self.clone())
                }
            }
        )*
    };
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

// ——————————————————————— tuple strategies ———————————————————————

macro_rules! tuple_strategy {
    ($($n:tt $s:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(0 S0);
tuple_strategy!(0 S0, 1 S1);
tuple_strategy!(0 S0, 1 S1, 2 S2);
tuple_strategy!(0 S0, 1 S1, 2 S2, 3 S3);
tuple_strategy!(0 S0, 1 S1, 2 S2, 3 S3, 4 S4);
tuple_strategy!(0 S0, 1 S1, 2 S2, 3 S3, 4 S4, 5 S5);

// ——————————————————————— any::<T>() ———————————————————————

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy.
    type Strategy: Strategy<Value = Self>;
    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// A strategy over the full domain of a primitive.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_prim {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Any<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    use rand::Rng;
                    rng.gen()
                }
            }
            impl Arbitrary for $ty {
                type Strategy = Any<$ty>;
                fn arbitrary() -> Any<$ty> {
                    Any(std::marker::PhantomData)
                }
            }
        )*
    };
}

arbitrary_prim!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

macro_rules! arbitrary_tuple {
    ($($($t:ident)+;)+) => {
        $(
            impl<$($t: Arbitrary),+> Arbitrary for ($($t,)+) {
                type Strategy = ($($t::Strategy,)+);
                fn arbitrary() -> Self::Strategy {
                    ($($t::arbitrary(),)+)
                }
            }
        )+
    };
}

arbitrary_tuple! {
    T0;
    T0 T1;
    T0 T1 T2;
    T0 T1 T2 T3;
}

/// The canonical strategy for `T` (mirrors `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

// ——————————————————————— collections ———————————————————————

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Sizes a collection strategy can take.
    pub trait SizeRange {
        /// Draws a length.
        fn draw(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn draw(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn draw(&self, rng: &mut TestRng) -> usize {
            use rand::Rng;
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn draw(&self, rng: &mut TestRng) -> usize {
            use rand::Rng;
            rng.gen_range(self.clone())
        }
    }

    /// A strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.draw(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ——————————————————————— string (regex) strategies ———————————————————————

/// A `&str` is interpreted as a regex-like pattern generating matching
/// strings. Supported subset: literals, `\\` escapes, `[a-z0-9]` classes,
/// `(...)` groups, alternation `|`, and the quantifiers `?`, `*`, `+`,
/// `{m}`, `{m,n}` (unbounded repetition is capped at 8).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let ast = regex_lite::parse(self)
            .unwrap_or_else(|e| panic!("unsupported pattern strategy {self:?}: {e}"));
        let mut out = String::new();
        regex_lite::render(&ast, rng, &mut out);
        out
    }
}

mod regex_lite {
    use super::TestRng;
    use rand::Rng;

    pub enum Node {
        Literal(char),
        Class(Vec<(char, char)>),
        Group(Vec<Vec<Node>>), // alternatives
        Repeat(Box<Node>, usize, usize),
    }

    pub fn parse(pattern: &str) -> Result<Vec<Node>, String> {
        let chars: Vec<char> = pattern.chars().collect();
        let (nodes, consumed) = parse_alternatives(&chars, 0, false)?;
        if consumed != chars.len() {
            return Err(format!("trailing input at {consumed}"));
        }
        // A top-level alternation parses as one Group node.
        Ok(nodes)
    }

    /// Parses alternatives until end-of-input or an unmatched `)`.
    fn parse_alternatives(
        chars: &[char],
        mut i: usize,
        in_group: bool,
    ) -> Result<(Vec<Node>, usize), String> {
        let mut alternatives: Vec<Vec<Node>> = vec![Vec::new()];
        while i < chars.len() {
            match chars[i] {
                ')' if in_group => break,
                ')' => return Err("unmatched )".into()),
                '|' => {
                    alternatives.push(Vec::new());
                    i += 1;
                }
                _ => {
                    let (node, next) = parse_one(chars, i)?;
                    let (node, next) = parse_quantifier(chars, next, node)?;
                    alternatives.last_mut().expect("non-empty").push(node);
                    i = next;
                }
            }
        }
        if alternatives.len() == 1 {
            Ok((alternatives.pop().expect("one"), i))
        } else {
            Ok((vec![Node::Group(alternatives)], i))
        }
    }

    fn parse_one(chars: &[char], i: usize) -> Result<(Node, usize), String> {
        match chars[i] {
            '\\' => {
                let c = *chars.get(i + 1).ok_or("dangling escape")?;
                let node = match c {
                    'd' => Node::Class(vec![('0', '9')]),
                    'w' => Node::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
                    's' => Node::Literal(' '),
                    other => Node::Literal(other),
                };
                Ok((node, i + 2))
            }
            '[' => {
                let mut ranges = Vec::new();
                let mut j = i + 1;
                while j < chars.len() && chars[j] != ']' {
                    let lo = if chars[j] == '\\' {
                        j += 1;
                        chars[j]
                    } else {
                        chars[j]
                    };
                    if j + 2 < chars.len() && chars[j + 1] == '-' && chars[j + 2] != ']' {
                        ranges.push((lo, chars[j + 2]));
                        j += 3;
                    } else {
                        ranges.push((lo, lo));
                        j += 1;
                    }
                }
                if j >= chars.len() {
                    return Err("unterminated class".into());
                }
                Ok((Node::Class(ranges), j + 1))
            }
            '(' => {
                let (inner, after) = parse_alternatives(chars, i + 1, true)?;
                if after >= chars.len() || chars[after] != ')' {
                    return Err("unterminated group".into());
                }
                // Re-wrap: inner may already be a single Group (alternation)
                // or a plain sequence; normalize to alternatives.
                let alternatives = match inner {
                    mut v if v.len() == 1 => match v.pop().expect("one") {
                        Node::Group(alts) => alts,
                        single => vec![vec![single]],
                    },
                    seq => vec![seq],
                };
                Ok((Node::Group(alternatives), after + 1))
            }
            '.' => Ok((Node::Class(vec![('a', 'z'), ('0', '9')]), i + 1)),
            c => Ok((Node::Literal(c), i + 1)),
        }
    }

    fn parse_quantifier(
        chars: &[char],
        i: usize,
        node: Node,
    ) -> Result<(Node, usize), String> {
        if i >= chars.len() {
            return Ok((node, i));
        }
        match chars[i] {
            '?' => Ok((Node::Repeat(Box::new(node), 0, 1), i + 1)),
            '*' => Ok((Node::Repeat(Box::new(node), 0, 8), i + 1)),
            '+' => Ok((Node::Repeat(Box::new(node), 1, 8), i + 1)),
            '{' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .ok_or("unterminated {m,n}")?
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                let (lo, hi) = match body.split_once(',') {
                    Some((lo, "")) => {
                        let lo = lo.trim().parse::<usize>().map_err(|e| e.to_string())?;
                        (lo, lo + 8)
                    }
                    Some((lo, hi)) => (
                        lo.trim().parse().map_err(|_| "bad {m,n}")?,
                        hi.trim().parse().map_err(|_| "bad {m,n}")?,
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().map_err(|_| "bad {m}")?;
                        (n, n)
                    }
                };
                Ok((Node::Repeat(Box::new(node), lo, hi), close + 1))
            }
            _ => Ok((node, i)),
        }
    }

    pub fn render(nodes: &[Node], rng: &mut TestRng, out: &mut String) {
        for node in nodes {
            render_one(node, rng, out);
        }
    }

    fn render_one(node: &Node, rng: &mut TestRng, out: &mut String) {
        match node {
            Node::Literal(c) => out.push(*c),
            Node::Class(ranges) => {
                let total: u32 = ranges
                    .iter()
                    .map(|(lo, hi)| (*hi as u32) - (*lo as u32) + 1)
                    .sum();
                let mut pick = rng.gen_range(0..total);
                for (lo, hi) in ranges {
                    let span = (*hi as u32) - (*lo as u32) + 1;
                    if pick < span {
                        out.push(char::from_u32(*lo as u32 + pick).unwrap_or(*lo));
                        return;
                    }
                    pick -= span;
                }
            }
            Node::Group(alternatives) => {
                let idx = rng.gen_range(0..alternatives.len());
                render(&alternatives[idx], rng, out);
            }
            Node::Repeat(inner, lo, hi) => {
                let n = rng.gen_range(*lo..=*hi);
                for _ in 0..n {
                    render_one(inner, rng, out);
                }
            }
        }
    }
}

// ——————————————————————— runner & macros ———————————————————————

#[doc(hidden)]
pub mod runner {
    use super::TestRng;
    use rand::SeedableRng;

    /// Builds the deterministic RNG for one test case.
    pub fn case_rng(test_name: &str, case: u32) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng::seed_from_u64(h ^ (u64::from(case) << 32) ^ u64::from(case))
    }
}

/// The common proptest imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
    /// Namespace alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests over strategy-drawn inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::runner::case_rng(stringify!($name), __case);
                $(
                    let $pat = $crate::Strategy::generate(&$strat, &mut __rng);
                )*
                $body
            }
        }
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Skips the current case when the assumption does not hold.
///
/// Expands to a `continue` of the case loop, so it must appear directly in
/// the `proptest!` body (not inside a nested loop).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            continue;
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(Box::new($strat) as Box<dyn $crate::DynStrategy<_>>),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = crate::runner::case_rng("regex", 0);
        for _ in 0..200 {
            let s = Strategy::generate(&"[0-9]{1,4}(\\.[0-9]{1,2})?", &mut rng);
            assert!(!s.is_empty());
            let mut parts = s.splitn(2, '.');
            let int = parts.next().unwrap();
            assert!((1..=4).contains(&int.len()), "{s}");
            assert!(int.chars().all(|c| c.is_ascii_digit()), "{s}");
            if let Some(frac) = parts.next() {
                assert!((1..=2).contains(&frac.len()), "{s}");
                assert!(frac.chars().all(|c| c.is_ascii_digit()), "{s}");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(v in 1u8..10, (a, b) in (0u16..5, 0.0f64..1.0), w in any::<u64>()) {
            prop_assert!((1..10).contains(&v));
            prop_assert!(a < 5);
            prop_assert!((0.0..1.0).contains(&b));
            let _ = w;
        }

        #[test]
        fn collections_and_oneof(
            xs in crate::collection::vec(any::<u8>(), 0..=8),
            pick in prop_oneof![Just(1u8), Just(2u8)],
            mapped in (0u8..10).prop_map(|x| x * 2),
        ) {
            prop_assert!(xs.len() <= 8);
            prop_assert!(pick == 1u8 || pick == 2u8);
            prop_assert!(mapped % 2 == 0 && mapped < 20);
        }
    }
}
