//! Vendored shim of [`bytes::Bytes`]: a cheaply cloneable, immutable,
//! contiguous byte buffer backed by an `Arc<[u8]>`.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// The number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(v: [u8; N]) -> Self {
        Bytes::copy_from_slice(&v)
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes {
            data: iter.into_iter().collect(),
        }
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &**self == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &**self == other.as_slice()
    }
}

#[cfg(feature = "serde")]
mod serde_impls {
    use super::Bytes;
    use serde::de::{Deserialize, Deserializer, Error, SeqAccess, Visitor};
    use serde::ser::{Serialize, SerializeSeq, Serializer};

    impl Serialize for Bytes {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            let mut seq = serializer.serialize_seq(Some(self.len()))?;
            for b in self.iter() {
                seq.serialize_element(b)?;
            }
            seq.end()
        }
    }

    impl<'de> Deserialize<'de> for Bytes {
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
            struct V;
            impl<'de> Visitor<'de> for V {
                type Value = Bytes;
                fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    f.write_str("bytes")
                }
                fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Bytes, A::Error> {
                    let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0).min(4096));
                    while let Some(b) = seq.next_element::<u8>()? {
                        out.push(b);
                    }
                    Ok(Bytes::from(out))
                }
                fn visit_bytes<E: Error>(self, v: &[u8]) -> Result<Bytes, E> {
                    Ok(Bytes::copy_from_slice(v))
                }
            }
            deserializer.deserialize_seq(V)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_clone_shares() {
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        let c = b.clone();
        assert_eq!(&*b, &[1, 2, 3]);
        assert_eq!(b, c);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }

    #[test]
    fn from_vec_and_iter() {
        let b: Bytes = vec![9u8, 8].into();
        assert_eq!(&*b, &[9, 8]);
        let c: Bytes = [7u8, 6].iter().copied().collect();
        assert_eq!(&*c, &[7, 6]);
    }
}
