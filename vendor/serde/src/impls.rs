//! `Serialize`/`Deserialize` impls for the std types the workspace uses.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

use crate::de::{
    Deserialize, Deserializer, Error as DeError, MapAccess, SeqAccess, Visitor,
};
use crate::ser::{
    Serialize, SerializeMap, SerializeSeq, SerializeTuple, Serializer,
};

// ———————————————————————————— primitives ————————————————————————————

macro_rules! ser_prim {
    ($($ty:ty => $method:ident),* $(,)?) => {
        $(
            impl Serialize for $ty {
                fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                    serializer.$method(*self)
                }
            }
        )*
    };
}

ser_prim!(
    bool => serialize_bool,
    i8 => serialize_i8,
    i16 => serialize_i16,
    i32 => serialize_i32,
    i64 => serialize_i64,
    u8 => serialize_u8,
    u16 => serialize_u16,
    u32 => serialize_u32,
    u64 => serialize_u64,
    f32 => serialize_f32,
    f64 => serialize_f64,
    char => serialize_char,
);

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

macro_rules! de_int {
    ($($ty:ty),* $(,)?) => {
        $(
            impl<'de> Deserialize<'de> for $ty {
                fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                    struct V;
                    impl<'de> Visitor<'de> for V {
                        type Value = $ty;
                        fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                            write!(f, concat!("a ", stringify!($ty)))
                        }
                        fn visit_u64<E: DeError>(self, v: u64) -> Result<$ty, E> {
                            <$ty>::try_from(v).map_err(|_| {
                                E::custom(format_args!("{} out of range for {}", v, stringify!($ty)))
                            })
                        }
                        fn visit_i64<E: DeError>(self, v: i64) -> Result<$ty, E> {
                            <$ty>::try_from(v).map_err(|_| {
                                E::custom(format_args!("{} out of range for {}", v, stringify!($ty)))
                            })
                        }
                        fn visit_f64<E: DeError>(self, v: f64) -> Result<$ty, E> {
                            if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= u64::MAX as f64 {
                                if v >= 0.0 {
                                    self.visit_u64(v as u64)
                                } else {
                                    self.visit_i64(v as i64)
                                }
                            } else {
                                Err(E::custom(format_args!(
                                    "{} is not a {}", v, stringify!($ty)
                                )))
                            }
                        }
                    }
                    deserializer.deserialize_any(V)
                }
            }
        )*
    };
}

de_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! de_float {
    ($($ty:ty),* $(,)?) => {
        $(
            impl<'de> Deserialize<'de> for $ty {
                fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                    struct V;
                    impl<'de> Visitor<'de> for V {
                        type Value = $ty;
                        fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                            write!(f, concat!("a ", stringify!($ty)))
                        }
                        fn visit_f64<E: DeError>(self, v: f64) -> Result<$ty, E> {
                            Ok(v as $ty)
                        }
                        fn visit_u64<E: DeError>(self, v: u64) -> Result<$ty, E> {
                            Ok(v as $ty)
                        }
                        fn visit_i64<E: DeError>(self, v: i64) -> Result<$ty, E> {
                            Ok(v as $ty)
                        }
                    }
                    deserializer.deserialize_any(V)
                }
            }
        )*
    };
}

de_float!(f32, f64);

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = bool;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a boolean")
            }
            fn visit_bool<E: DeError>(self, v: bool) -> Result<bool, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_any(V)
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = char;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a character")
            }
            fn visit_str<E: DeError>(self, v: &str) -> Result<char, E> {
                let mut chars = v.chars();
                match (chars.next(), chars.next()) {
                    (Some(c), None) => Ok(c),
                    _ => Err(E::custom("expected a single character")),
                }
            }
        }
        deserializer.deserialize_any(V)
    }
}

// ———————————————————————————— strings ————————————————————————————

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = String;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a string")
            }
            fn visit_str<E: DeError>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }
            fn visit_string<E: DeError>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_any(V)
    }
}

impl<'de> Deserialize<'de> for &'static str {
    /// Deserializes by leaking a freshly-allocated `String`. Upstream serde
    /// borrows from the input instead; this shim targets self-describing
    /// in-memory codecs where `&'static str` fields are table constants
    /// (e.g. car specs) and round-trips are test-sized, so the leak is
    /// bounded and acceptable.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        Ok(Box::leak(s.into_boxed_str()))
    }
}

// ———————————————————————————— references & boxes ————————————————————————————

impl<T: ?Sized + Serialize> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: ?Sized + Serialize> Serialize for &mut T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: ?Sized + Serialize> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

// ———————————————————————————— unit & option ————————————————————————————

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = ();
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("unit")
            }
            fn visit_unit<E: DeError>(self) -> Result<(), E> {
                Ok(())
            }
            fn visit_none<E: DeError>(self) -> Result<(), E> {
                Ok(())
            }
        }
        deserializer.deserialize_any(V)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(std::marker::PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for V<T> {
            type Value = Option<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an option")
            }
            fn visit_none<E: DeError>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
            fn visit_unit<E: DeError>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
            fn visit_some<D: Deserializer<'de>>(
                self,
                deserializer: D,
            ) -> Result<Option<T>, D::Error> {
                T::deserialize(deserializer).map(Some)
            }
        }
        deserializer.deserialize_option(V(std::marker::PhantomData))
    }
}

// ———————————————————————————— sequences ————————————————————————————

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(std::marker::PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for V<T> {
            type Value = Vec<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a sequence")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Vec<T>, A::Error> {
                let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0).min(4096));
                while let Some(item) = seq.next_element()? {
                    out.push(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(V(std::marker::PhantomData))
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T, const N: usize>(std::marker::PhantomData<T>);
        impl<'de, T: Deserialize<'de>, const N: usize> Visitor<'de> for V<T, N> {
            type Value = [T; N];
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "an array of length {N}")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<[T; N], A::Error> {
                let mut out = Vec::with_capacity(N);
                while let Some(item) = seq.next_element()? {
                    out.push(item);
                }
                out.try_into()
                    .map_err(|v: Vec<T>| DeError::invalid_length(v.len(), "array"))
            }
        }
        deserializer.deserialize_seq(V::<T, N>(std::marker::PhantomData))
    }
}

macro_rules! set_impls {
    ($($set:ident, $bound:path $(, $bound2:path)?;)+) => {
        $(
            impl<T: Serialize> Serialize for std::collections::$set<T> {
                fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                    let mut seq = serializer.serialize_seq(Some(self.len()))?;
                    for item in self {
                        seq.serialize_element(item)?;
                    }
                    seq.end()
                }
            }

            impl<'de, T: Deserialize<'de> + $bound $(+ $bound2)?> Deserialize<'de>
                for std::collections::$set<T>
            {
                fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                    struct V<T>(std::marker::PhantomData<T>);
                    impl<'de, T: Deserialize<'de> + $bound $(+ $bound2)?> Visitor<'de> for V<T> {
                        type Value = std::collections::$set<T>;
                        fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                            f.write_str("a sequence of set elements")
                        }
                        fn visit_seq<A: SeqAccess<'de>>(
                            self,
                            mut seq: A,
                        ) -> Result<Self::Value, A::Error> {
                            let mut out = std::collections::$set::new();
                            while let Some(item) = seq.next_element()? {
                                out.insert(item);
                            }
                            Ok(out)
                        }
                    }
                    deserializer.deserialize_seq(V(std::marker::PhantomData))
                }
            }
        )+
    };
}

set_impls! {
    BTreeSet, Ord;
    HashSet, Eq, Hash;
}

// ———————————————————————————— tuples ————————————————————————————

macro_rules! tuple_impls {
    ($(($len:expr => $($n:tt $t:ident)+))+) => {
        $(
            impl<$($t: Serialize),+> Serialize for ($($t,)+) {
                fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                    let mut tup = serializer.serialize_tuple($len)?;
                    $(tup.serialize_element(&self.$n)?;)+
                    tup.end()
                }
            }

            impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
                fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                    struct V<$($t),+>(std::marker::PhantomData<($($t,)+)>);
                    impl<'de, $($t: Deserialize<'de>),+> Visitor<'de> for V<$($t),+> {
                        type Value = ($($t,)+);
                        fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                            write!(f, "a tuple of length {}", $len)
                        }
                        fn visit_seq<A: SeqAccess<'de>>(
                            self,
                            mut seq: A,
                        ) -> Result<Self::Value, A::Error> {
                            Ok(($(
                                seq.next_element::<$t>()?
                                    .ok_or_else(|| {
                                        <A::Error as DeError>::invalid_length($n, "tuple")
                                    })?,
                            )+))
                        }
                    }
                    deserializer.deserialize_tuple($len, V(std::marker::PhantomData))
                }
            }
        )+
    };
}

tuple_impls! {
    (1 => 0 T0)
    (2 => 0 T0 1 T1)
    (3 => 0 T0 1 T1 2 T2)
    (4 => 0 T0 1 T1 2 T2 3 T3)
    (5 => 0 T0 1 T1 2 T2 3 T3 4 T4)
    (6 => 0 T0 1 T1 2 T2 3 T3 4 T4 5 T5)
}

// ———————————————————————————— maps ————————————————————————————

macro_rules! map_ser {
    ($ty:ident <K $(: $kb1:ident $(+ $kb2:ident)*)?, V>) => {
        impl<K: Serialize $(+ $kb1 $(+ $kb2)*)?, V: Serialize> Serialize for $ty<K, V> {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut map = serializer.serialize_map(Some(self.len()))?;
                for (k, v) in self {
                    map.serialize_entry(k, v)?;
                }
                map.end()
            }
        }
    };
}

map_ser!(BTreeMap<K, V>);
map_ser!(HashMap<K, V>);

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct Vis<K, V>(std::marker::PhantomData<(K, V)>);
        impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Visitor<'de> for Vis<K, V> {
            type Value = BTreeMap<K, V>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = BTreeMap::new();
                while let Some((k, v)) = map.next_entry()? {
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(Vis(std::marker::PhantomData))
    }
}

impl<'de, K: Deserialize<'de> + Eq + Hash, V: Deserialize<'de>> Deserialize<'de> for HashMap<K, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct Vis<K, V>(std::marker::PhantomData<(K, V)>);
        impl<'de, K: Deserialize<'de> + Eq + Hash, V: Deserialize<'de>> Visitor<'de> for Vis<K, V> {
            type Value = HashMap<K, V>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = HashMap::new();
                while let Some((k, v)) = map.next_entry()? {
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(Vis(std::marker::PhantomData))
    }
}
