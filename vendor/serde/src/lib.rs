//! Vendored std-only shim of the `serde` serialization framework.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! the subset of serde's data model it actually uses: the [`Serialize`] /
//! [`Deserialize`] traits, the [`ser`] and [`de`] trait families, impls for
//! the std types that appear in the result model, and (behind the `derive`
//! feature) `#[derive(Serialize, Deserialize)]` proc-macros for plain
//! structs and enums without `#[serde(...)]` attributes.
//!
//! The trait signatures mirror upstream serde so downstream code — including
//! hand-written `Serializer` impls like the counting serializer in the
//! workspace's serialization tests and the JSON codec in `dpr-telemetry` —
//! compiles unchanged.

#![forbid(unsafe_code)]

pub mod de;
pub mod ser;

mod impls;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

// The derive output references `serde::...` paths; make sure the crate can
// name itself that way from within (used by this crate's own tests).
extern crate self as serde;
