//! Deserialization half of the data model (mirrors `serde::de`).

use std::fmt::{self, Display};

/// Trait for deserialization errors.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;

    /// A value of the wrong type was encountered.
    fn invalid_type(unexpected: &str, expected: &str) -> Self {
        Self::custom(format_args!(
            "invalid type: {unexpected}, expected {expected}"
        ))
    }

    /// A required struct field was absent.
    fn missing_field(field: &'static str) -> Self {
        Self::custom(format_args!("missing field `{field}`"))
    }

    /// A struct field appeared twice.
    fn duplicate_field(field: &'static str) -> Self {
        Self::custom(format_args!("duplicate field `{field}`"))
    }

    /// An enum variant name was not recognized.
    fn unknown_variant(variant: &str, expected: &'static [&'static str]) -> Self {
        Self::custom(format_args!(
            "unknown variant `{variant}`, expected one of {expected:?}"
        ))
    }

    /// A struct field name was not recognized.
    fn unknown_field(field: &str, expected: &'static [&'static str]) -> Self {
        Self::custom(format_args!(
            "unknown field `{field}`, expected one of {expected:?}"
        ))
    }

    /// A sequence or map had the wrong number of elements.
    fn invalid_length(len: usize, expected: &str) -> Self {
        Self::custom(format_args!("invalid length {len}, expected {expected}"))
    }
}

/// A data structure that can be deserialized from any serde format.
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` from the given deserializer.
    fn deserialize<D>(deserializer: D) -> Result<Self, D::Error>
    where
        D: Deserializer<'de>;
}

/// Shorthand for `for<'de> Deserialize<'de>`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// A format that can drive deserialization of the serde data model.
///
/// Unlike upstream serde every `deserialize_*` method except
/// [`deserialize_any`](Deserializer::deserialize_any) has a provided default
/// that forwards to `deserialize_any`; self-describing formats (the only
/// kind this workspace uses) need only implement the handful they treat
/// specially.
pub trait Deserializer<'de>: Sized {
    /// Error type on failure.
    type Error: Error;

    /// Deserializes whatever the input contains next.
    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;

    /// Deserializes an optional value.
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }

    /// Deserializes an enum given its name and variant names.
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }

    /// Deserializes a struct given its name and field names.
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }

    /// Deserializes a newtype struct.
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        visitor.visit_newtype_struct(self)
    }

    /// Deserializes a unit struct.
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }

    /// Deserializes a tuple struct.
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }

    /// Deserializes a fixed-length tuple.
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        _len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }

    /// Deserializes a sequence.
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }

    /// Deserializes a map.
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }

    /// Deserializes a struct-field or variant identifier.
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }

    /// Deserializes and discards whatever comes next.
    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }

    /// Whether the format is human readable (JSON-like). Defaults to true.
    fn is_human_readable(&self) -> bool {
        true
    }
}

/// Walks values produced by a [`Deserializer`].
///
/// Every method has a default that errors with "invalid type", matching
/// upstream serde's behavior.
pub trait Visitor<'de>: Sized {
    /// The value built by this visitor.
    type Value;

    /// Formats a message stating what the visitor expects.
    fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result {
        formatter.write_str("a value")
    }

    /// Visits a `bool`.
    fn visit_bool<E: Error>(self, v: bool) -> Result<Self::Value, E> {
        Err(Error::invalid_type(&format!("boolean `{v}`"), &expected(&self)))
    }

    /// Visits a signed integer.
    fn visit_i64<E: Error>(self, v: i64) -> Result<Self::Value, E> {
        Err(Error::invalid_type(&format!("integer `{v}`"), &expected(&self)))
    }

    /// Visits an unsigned integer.
    fn visit_u64<E: Error>(self, v: u64) -> Result<Self::Value, E> {
        Err(Error::invalid_type(&format!("integer `{v}`"), &expected(&self)))
    }

    /// Visits a floating-point number.
    fn visit_f64<E: Error>(self, v: f64) -> Result<Self::Value, E> {
        Err(Error::invalid_type(&format!("float `{v}`"), &expected(&self)))
    }

    /// Visits a `char`.
    fn visit_char<E: Error>(self, v: char) -> Result<Self::Value, E> {
        self.visit_str(v.encode_utf8(&mut [0u8; 4]))
    }

    /// Visits a borrowed string slice.
    fn visit_str<E: Error>(self, v: &str) -> Result<Self::Value, E> {
        let _ = v;
        Err(Error::invalid_type("string", &expected(&self)))
    }

    /// Visits an owned string.
    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }

    /// Visits raw bytes.
    fn visit_bytes<E: Error>(self, v: &[u8]) -> Result<Self::Value, E> {
        let _ = v;
        Err(Error::invalid_type("bytes", &expected(&self)))
    }

    /// Visits `()` / null.
    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(Error::invalid_type("unit", &expected(&self)))
    }

    /// Visits an absent optional.
    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(Error::invalid_type("none", &expected(&self)))
    }

    /// Visits a present optional.
    fn visit_some<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(Error::invalid_type("some", &expected(&self)))
    }

    /// Visits a newtype struct's payload.
    fn visit_newtype_struct<D: Deserializer<'de>>(
        self,
        deserializer: D,
    ) -> Result<Self::Value, D::Error> {
        deserializer.deserialize_any(self)
    }

    /// Visits a sequence.
    fn visit_seq<A: SeqAccess<'de>>(self, seq: A) -> Result<Self::Value, A::Error> {
        let _ = seq;
        Err(Error::invalid_type("sequence", &expected(&self)))
    }

    /// Visits a map.
    fn visit_map<A: MapAccess<'de>>(self, map: A) -> Result<Self::Value, A::Error> {
        let _ = map;
        Err(Error::invalid_type("map", &expected(&self)))
    }

    /// Visits an enum.
    fn visit_enum<A: EnumAccess<'de>>(self, data: A) -> Result<Self::Value, A::Error> {
        let _ = data;
        Err(Error::invalid_type("enum", &expected(&self)))
    }

}

fn expected<'de, V: Visitor<'de>>(v: &V) -> String {
    struct Expecting<'a, V>(&'a V);
    impl<'de, 'a, V: Visitor<'de>> Display for Expecting<'a, V> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.0.expecting(f)
        }
    }
    Expecting(v).to_string()
}

/// Access to the elements of a sequence.
pub trait SeqAccess<'de> {
    /// Error type on failure.
    type Error: Error;

    /// Deserializes the next element, or `None` at the end.
    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error>;

    /// Number of remaining elements, when known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the entries of a map.
pub trait MapAccess<'de> {
    /// Error type on failure.
    type Error: Error;

    /// Deserializes the next key, or `None` at the end.
    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error>;

    /// Deserializes the value of the entry whose key was just read.
    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error>;

    /// Deserializes the next full entry, or `None` at the end.
    fn next_entry<K: Deserialize<'de>, V: Deserialize<'de>>(
        &mut self,
    ) -> Result<Option<(K, V)>, Self::Error> {
        match self.next_key()? {
            Some(k) => Ok(Some((k, self.next_value()?))),
            None => Ok(None),
        }
    }

    /// Number of remaining entries, when known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the variant tag of an enum.
pub trait EnumAccess<'de>: Sized {
    /// Error type on failure.
    type Error: Error;
    /// Access to the variant's payload.
    type Variant: VariantAccess<'de, Error = Self::Error>;

    /// Deserializes the variant tag (typically as a `String`) and returns
    /// payload access.
    fn variant<V: Deserialize<'de>>(self) -> Result<(V, Self::Variant), Self::Error>;
}

/// Access to the payload of an enum variant.
pub trait VariantAccess<'de>: Sized {
    /// Error type on failure.
    type Error: Error;

    /// Consumes a unit variant.
    fn unit_variant(self) -> Result<(), Self::Error>;

    /// Deserializes a newtype variant's single field.
    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Self::Error>;

    /// Deserializes a tuple variant's fields.
    fn tuple_variant<V: Visitor<'de>>(self, len: usize, visitor: V)
        -> Result<V::Value, Self::Error>;

    /// Deserializes a struct variant's fields.
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
}

/// A deserializable that accepts and discards any value.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IgnoredAny;

impl<'de> Deserialize<'de> for IgnoredAny {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = IgnoredAny;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("anything")
            }
            fn visit_bool<E: Error>(self, _: bool) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_i64<E: Error>(self, _: i64) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_u64<E: Error>(self, _: u64) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_f64<E: Error>(self, _: f64) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_str<E: Error>(self, _: &str) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_bytes<E: Error>(self, _: &[u8]) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_unit<E: Error>(self) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_none<E: Error>(self) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_some<D: Deserializer<'de>>(
                self,
                deserializer: D,
            ) -> Result<IgnoredAny, D::Error> {
                IgnoredAny::deserialize(deserializer)
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<IgnoredAny, A::Error> {
                while seq.next_element::<IgnoredAny>()?.is_some() {}
                Ok(IgnoredAny)
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<IgnoredAny, A::Error> {
                while map.next_entry::<IgnoredAny, IgnoredAny>()?.is_some() {}
                Ok(IgnoredAny)
            }
            fn visit_enum<A: EnumAccess<'de>>(self, data: A) -> Result<IgnoredAny, A::Error> {
                let (IgnoredAny, variant) = data.variant::<IgnoredAny>()?;
                variant.newtype_variant::<IgnoredAny>().or(Ok(IgnoredAny))
            }
        }
        deserializer.deserialize_ignored_any(V)
    }
}
