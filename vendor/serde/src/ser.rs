//! Serialization half of the data model (mirrors `serde::ser`).

use std::fmt::Display;

/// Trait for serialization errors.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data structure that can be serialized into any serde format.
pub trait Serialize {
    /// Serializes `self` into the given serializer.
    fn serialize<S>(&self, serializer: S) -> Result<S::Ok, S::Error>
    where
        S: Serializer;
}

/// A format that can serialize the serde data model.
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error type on failure.
    type Error: Error;

    /// Type returned by [`serialize_seq`](Serializer::serialize_seq).
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Type returned by [`serialize_tuple`](Serializer::serialize_tuple).
    type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    /// Type returned by [`serialize_tuple_struct`](Serializer::serialize_tuple_struct).
    type SerializeTupleStruct: SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Type returned by [`serialize_tuple_variant`](Serializer::serialize_tuple_variant).
    type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
    /// Type returned by [`serialize_map`](Serializer::serialize_map).
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Type returned by [`serialize_struct`](Serializer::serialize_struct).
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Type returned by [`serialize_struct_variant`](Serializer::serialize_struct_variant).
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    /// Serializes a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i8`.
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i16`.
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i32`.
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i64`.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u8`.
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u16`.
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u32`.
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u64`.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `f32`.
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `f64`.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `char`.
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
    /// Serializes a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serializes raw bytes.
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Option::None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes the payload of `Option::Some`.
    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Serializes `()`.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit struct like `struct Unit;`.
    fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit enum variant.
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serializes a newtype struct like `struct Wrapper(T);`.
    fn serialize_newtype_struct<T: ?Sized + Serialize>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serializes a newtype enum variant.
    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Begins serializing a variable-length sequence.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begins serializing a fixed-length tuple.
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    /// Begins serializing a tuple struct.
    fn serialize_tuple_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct, Self::Error>;
    /// Begins serializing a tuple enum variant.
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;
    /// Begins serializing a map.
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    /// Begins serializing a struct with named fields.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Begins serializing a struct enum variant.
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;

    /// Whether the format is human readable (JSON-like). Defaults to true.
    fn is_human_readable(&self) -> bool {
        true
    }
}

/// Returned by `serialize_seq` to drive element serialization.
pub trait SerializeSeq {
    /// Output produced on success.
    type Ok;
    /// Error type on failure.
    type Error: Error;
    /// Serializes one element.
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Returned by `serialize_tuple`.
pub trait SerializeTuple {
    /// Output produced on success.
    type Ok;
    /// Error type on failure.
    type Error: Error;
    /// Serializes one element.
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the tuple.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Returned by `serialize_tuple_struct`.
pub trait SerializeTupleStruct {
    /// Output produced on success.
    type Ok;
    /// Error type on failure.
    type Error: Error;
    /// Serializes one field.
    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the tuple struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Returned by `serialize_tuple_variant`.
pub trait SerializeTupleVariant {
    /// Output produced on success.
    type Ok;
    /// Error type on failure.
    type Error: Error;
    /// Serializes one field.
    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Returned by `serialize_map`.
pub trait SerializeMap {
    /// Output produced on success.
    type Ok;
    /// Error type on failure.
    type Error: Error;
    /// Serializes one key.
    fn serialize_key<T: ?Sized + Serialize>(&mut self, key: &T) -> Result<(), Self::Error>;
    /// Serializes one value.
    fn serialize_value<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Serializes one key/value entry.
    fn serialize_entry<K: ?Sized + Serialize, V: ?Sized + Serialize>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Self::Error> {
        self.serialize_key(key)?;
        self.serialize_value(value)
    }
    /// Finishes the map.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Returned by `serialize_struct`.
pub trait SerializeStruct {
    /// Output produced on success.
    type Ok;
    /// Error type on failure.
    type Error: Error;
    /// Serializes one named field.
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Returned by `serialize_struct_variant`.
pub trait SerializeStructVariant {
    /// Output produced on success.
    type Ok;
    /// Error type on failure.
    type Error: Error;
    /// Serializes one named field.
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}
