//! Vendored shim over [`std::sync`] primitives with the `parking_lot` API.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! the thin subset of `parking_lot` it uses: [`Mutex`], [`RwLock`], and
//! their guards, with infallible `lock()`/`read()`/`write()` (poisoning is
//! absorbed by taking the inner value, matching `parking_lot`'s
//! no-poisoning semantics).

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with `parking_lot`'s infallible API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Never fails:
    /// poisoning is ignored, as in `parking_lot`.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// A reader-writer lock with `parking_lot`'s infallible API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new rwlock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the rwlock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock. Never fails.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write lock. Never fails.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            Err(_) => f.write_str("RwLock { <locked> }"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }
}
