//! Vendored std-only shim of the `rand` 0.8 API surface this workspace
//! uses: [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], the
//! [`Rng`] extension methods (`gen`, `gen_range`, `gen_bool`), and
//! [`seq::SliceRandom`] (`choose`, `shuffle`).
//!
//! The generator is xoshiro256** (public domain, Blackman & Vigna) behind
//! a SplitMix64 seed expander — statistically strong and deterministic,
//! though the streams differ from upstream `rand`'s ChaCha12 `StdRng`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A random number generator core: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// An RNG that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed;

    /// Creates an RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates an RNG by expanding a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Extension methods on any [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types sampleable uniformly over their whole domain (the `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits → [0, 1).
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

macro_rules! standard_int {
    ($($ty:ty),*) => {
        $(
            impl Standard for $ty {
                fn sample<R: RngCore>(rng: &mut R) -> Self {
                    rng.next_u64() as $ty
                }
            }
        )*
    };
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) / (1u32 << 24) as f32
    }
}

/// Ranges a value of type `T` can be drawn from (mirrors
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Samples uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($ty:ty => $wide:ty),*) => {
        $(
            impl SampleRange<$ty> for Range<$ty> {
                fn sample<R: RngCore>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                    let v = rng.next_u64() % span;
                    (self.start as $wide).wrapping_add(v as $wide) as $ty
                }
            }
            impl SampleRange<$ty> for RangeInclusive<$ty> {
                fn sample<R: RngCore>(self, rng: &mut R) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $ty;
                    }
                    let v = rng.next_u64() % (span + 1);
                    (start as $wide).wrapping_add(v as $wide) as $ty
                }
            }
        )*
    };
}

range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! range_float {
    ($($ty:ty),*) => {
        $(
            impl SampleRange<$ty> for Range<$ty> {
                fn sample<R: RngCore>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let u = unit_f64(rng.next_u64()) as $ty;
                    self.start + u * (self.end - self.start)
                }
            }
            impl SampleRange<$ty> for RangeInclusive<$ty> {
                fn sample<R: RngCore>(self, rng: &mut R) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let u = unit_f64(rng.next_u64()) as $ty;
                    start + u * (end - start)
                }
            }
        )*
    };
}

range_float!(f32, f64);

/// Named RNG implementations (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256**.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0; 4] {
                s = [1, 2, 3, 4]; // xoshiro's all-zero state is absorbing
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut seed = [0u8; 32];
            for chunk in seed.chunks_exact_mut(8) {
                chunk.copy_from_slice(&Self::splitmix(&mut sm).to_le_bytes());
            }
            Self::from_seed(seed)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s2n = s2 ^ s0;
            let mut s3n = s3 ^ s1;
            let s1n = s1 ^ s2n;
            let s0n = s0 ^ s3n;
            s2n ^= t;
            s3n = s3n.rotate_left(45);
            self.s = [s0n, s1n, s2n, s3n];
            result
        }
    }
}

/// Sequence-related helpers (mirrors `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods on slices (mirrors `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.as_slice().choose(&mut rng).is_some());
    }

    #[test]
    fn unit_floats_cover_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
