//! Vendored `#[derive(Serialize, Deserialize)]` for the workspace's serde
//! shim.
//!
//! Written against `proc_macro` directly (no `syn`/`quote` — the build
//! environment has no crates.io access). Supports the shapes this workspace
//! uses: non-generic structs (unit, tuple, named) and enums whose variants
//! are unit, newtype, tuple, or struct-like. `#[serde(...)]` attributes are
//! not supported and produce a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Trait::Serialize)
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Trait::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Trait {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, which: Trait) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => {
            return format!("compile_error!({msg:?});").parse().unwrap();
        }
    };
    let code = match (which, &item.shape) {
        (Trait::Serialize, Shape::Struct(fields)) => ser_struct(&item.name, fields),
        (Trait::Serialize, Shape::Enum(variants)) => ser_enum(&item.name, variants),
        (Trait::Deserialize, Shape::Struct(fields)) => de_struct(&item.name, fields),
        (Trait::Deserialize, Shape::Enum(variants)) => de_enum(&item.name, variants),
    };
    code.parse()
        .unwrap_or_else(|e| format!("compile_error!(\"serde_derive codegen: {e}\");").parse().unwrap())
}

// ———————————————————————————— parsing ————————————————————————————

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    Struct(Fields),
    Enum(Vec<Variant>),
}

enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens = input.into_iter().peekable();
    let mut is_enum = None;
    // Skip attributes, visibility, and doc comments until `struct`/`enum`.
    while let Some(tt) = tokens.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Consume the following [...] group.
                tokens.next();
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "struct" {
                    is_enum = Some(false);
                    break;
                } else if s == "enum" {
                    is_enum = Some(true);
                    break;
                }
                // `pub`, `crate`, etc. — skip.
            }
            TokenTree::Group(_) => {
                // `pub(crate)`'s parenthesized part — skip.
            }
            _ => {}
        }
    }
    let is_enum = is_enum.ok_or("expected `struct` or `enum`")?;
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected type name".into()),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "vendored serde_derive does not support generic type `{name}`"
            ));
        }
    }
    let shape = if is_enum {
        let body = match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
            _ => return Err("expected enum body".into()),
        };
        let mut variants = Vec::new();
        for chunk in split_top_level(body) {
            if let Some(v) = parse_variant(chunk)? {
                variants.push(v);
            }
        }
        Shape::Enum(variants)
    } else {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Struct(Fields::Named(parse_named_fields(g.stream())?))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Struct(Fields::Unit),
            _ => return Err("expected struct body".into()),
        }
    };
    Ok(Item { name, shape })
}

/// Splits a token stream on top-level commas, treating `<...>` as nesting
/// (grouped delimiters are already nested by the tokenizer).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                chunks.push(std::mem::take(&mut current));
                continue;
            }
            _ => {}
        }
        current.push(tt);
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

/// Extracts field names from named-struct body tokens.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    for chunk in split_top_level(stream) {
        let mut iter = chunk.into_iter().peekable();
        let mut name = None;
        while let Some(tt) = iter.next() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '#' => {
                    iter.next(); // attribute body
                }
                TokenTree::Ident(id) => {
                    let s = id.to_string();
                    if s == "pub" {
                        // Possible `pub(...)` — the group is skipped by the
                        // Group arm on the next iteration.
                        continue;
                    }
                    name = Some(s);
                    break;
                }
                TokenTree::Group(_) => {}
                _ => {}
            }
        }
        if let Some(n) = name {
            // Must be followed by `:`, otherwise this was not a field.
            if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ':') {
                names.push(n);
            } else {
                return Err(format!("could not parse field `{n}`"));
            }
        }
    }
    Ok(names)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_variant(chunk: Vec<TokenTree>) -> Result<Option<Variant>, String> {
    let mut iter = chunk.into_iter().peekable();
    let mut name = None;
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next();
            }
            TokenTree::Ident(id) => {
                name = Some(id.to_string());
                break;
            }
            _ => {}
        }
    }
    let Some(name) = name else {
        return Ok(None); // trailing comma produced an empty chunk
    };
    let fields = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Fields::Tuple(count_tuple_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Fields::Named(parse_named_fields(g.stream())?)
        }
        _ => Fields::Unit, // unit variant (a `= discriminant` tail is ignored)
    };
    Ok(Some(Variant { name, fields }))
}

// ———————————————————————————— Serialize codegen ————————————————————————————

fn ser_struct(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Unit => format!("serde::Serializer::serialize_unit_struct(__s, {name:?})"),
        Fields::Tuple(1) => {
            format!("serde::Serializer::serialize_newtype_struct(__s, {name:?}, &self.0)")
        }
        Fields::Tuple(n) => {
            let mut code = format!(
                "let mut __st = serde::Serializer::serialize_tuple_struct(__s, {name:?}, {n})?;\n"
            );
            for i in 0..*n {
                code += &format!(
                    "serde::ser::SerializeTupleStruct::serialize_field(&mut __st, &self.{i})?;\n"
                );
            }
            code + "serde::ser::SerializeTupleStruct::end(__st)"
        }
        Fields::Named(names) => {
            let mut code = format!(
                "let mut __st = serde::Serializer::serialize_struct(__s, {name:?}, {})?;\n",
                names.len()
            );
            for f in names {
                code += &format!(
                    "serde::ser::SerializeStruct::serialize_field(&mut __st, {f:?}, &self.{f})?;\n"
                );
            }
            code + "serde::ser::SerializeStruct::end(__st)"
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl serde::ser::Serialize for {name} {{\n\
             fn serialize<__S: serde::ser::Serializer>(&self, __s: __S)\n\
                 -> std::result::Result<__S::Ok, __S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn ser_enum(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for (idx, v) in variants.iter().enumerate() {
        let vname = &v.name;
        match &v.fields {
            Fields::Unit => {
                arms += &format!(
                    "{name}::{vname} => serde::Serializer::serialize_unit_variant(__s, {name:?}, {idx}, {vname:?}),\n"
                );
            }
            Fields::Tuple(1) => {
                arms += &format!(
                    "{name}::{vname}(__f0) => serde::Serializer::serialize_newtype_variant(__s, {name:?}, {idx}, {vname:?}, __f0),\n"
                );
            }
            Fields::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let mut body = format!(
                    "let mut __st = serde::Serializer::serialize_tuple_variant(__s, {name:?}, {idx}, {vname:?}, {n})?;\n"
                );
                for b in &binds {
                    body += &format!(
                        "serde::ser::SerializeTupleVariant::serialize_field(&mut __st, {b})?;\n"
                    );
                }
                body += "serde::ser::SerializeTupleVariant::end(__st)";
                arms += &format!("{name}::{vname}({}) => {{ {body} }}\n", binds.join(", "));
            }
            Fields::Named(fields) => {
                let mut body = format!(
                    "let mut __st = serde::Serializer::serialize_struct_variant(__s, {name:?}, {idx}, {vname:?}, {})?;\n",
                    fields.len()
                );
                for f in fields {
                    body += &format!(
                        "serde::ser::SerializeStructVariant::serialize_field(&mut __st, {f:?}, {f})?;\n"
                    );
                }
                body += "serde::ser::SerializeStructVariant::end(__st)";
                arms += &format!(
                    "{name}::{vname} {{ {} }} => {{ {body} }}\n",
                    fields.join(", ")
                );
            }
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl serde::ser::Serialize for {name} {{\n\
             fn serialize<__S: serde::ser::Serializer>(&self, __s: __S)\n\
                 -> std::result::Result<__S::Ok, __S::Error> {{\n\
                 match self {{\n{arms}\n}}\n\
             }}\n\
         }}"
    )
}

// ———————————————————————————— Deserialize codegen ————————————————————————————

/// Generates the body of a visitor that builds `path { fields }` /
/// `path(fields)` from either a map (named only) or a sequence.
fn de_fields_visitor(path: &str, fields: &Fields, expecting: &str) -> String {
    match fields {
        Fields::Unit => format!(
            "fn expecting(&self, __f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {{\n\
                 __f.write_str({expecting:?})\n\
             }}\n\
             fn visit_unit<__E: serde::de::Error>(self) -> std::result::Result<Self::Value, __E> {{\n\
                 Ok({path})\n\
             }}\n\
             fn visit_none<__E: serde::de::Error>(self) -> std::result::Result<Self::Value, __E> {{\n\
                 Ok({path})\n\
             }}"
        ),
        Fields::Tuple(n) => {
            let mut elems = String::new();
            for i in 0..*n {
                elems += &format!(
                    "match serde::de::SeqAccess::next_element(&mut __seq)? {{\n\
                         Some(__v) => __v,\n\
                         None => return Err(serde::de::Error::invalid_length({i}, {expecting:?})),\n\
                     }},\n"
                );
            }
            format!(
                "fn expecting(&self, __f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {{\n\
                     __f.write_str({expecting:?})\n\
                 }}\n\
                 fn visit_seq<__A: serde::de::SeqAccess<'de>>(self, mut __seq: __A)\n\
                     -> std::result::Result<Self::Value, __A::Error> {{\n\
                     Ok({path}({elems}))\n\
                 }}"
            )
        }
        Fields::Named(names) => {
            let mut slots = String::new();
            let mut arms = String::new();
            let mut seq_fields = String::new();
            let mut build = String::new();
            for (i, f) in names.iter().enumerate() {
                slots += &format!("let mut __v_{f} = None;\n");
                arms += &format!(
                    "{f:?} => {{ __v_{f} = Some(serde::de::MapAccess::next_value(&mut __map)?); }}\n"
                );
                seq_fields += &format!(
                    "{f}: match serde::de::SeqAccess::next_element(&mut __seq)? {{\n\
                         Some(__v) => __v,\n\
                         None => return Err(serde::de::Error::invalid_length({i}, {expecting:?})),\n\
                     }},\n"
                );
                build += &format!(
                    "{f}: match __v_{f} {{\n\
                         Some(__v) => __v,\n\
                         None => return Err(serde::de::Error::missing_field({f:?})),\n\
                     }},\n"
                );
            }
            format!(
                "fn expecting(&self, __f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {{\n\
                     __f.write_str({expecting:?})\n\
                 }}\n\
                 fn visit_map<__A: serde::de::MapAccess<'de>>(self, mut __map: __A)\n\
                     -> std::result::Result<Self::Value, __A::Error> {{\n\
                     {slots}\
                     while let Some(__key) = serde::de::MapAccess::next_key::<String>(&mut __map)? {{\n\
                         match __key.as_str() {{\n\
                             {arms}\
                             _ => {{\n\
                                 let _ = serde::de::MapAccess::next_value::<serde::de::IgnoredAny>(&mut __map)?;\n\
                             }}\n\
                         }}\n\
                     }}\n\
                     Ok({path} {{ {build} }})\n\
                 }}\n\
                 fn visit_seq<__A: serde::de::SeqAccess<'de>>(self, mut __seq: __A)\n\
                     -> std::result::Result<Self::Value, __A::Error> {{\n\
                     Ok({path} {{ {seq_fields} }})\n\
                 }}"
            )
        }
    }
}

fn de_struct(name: &str, fields: &Fields) -> String {
    let expecting = format!("struct {name}");
    let driver = match fields {
        Fields::Unit => format!("serde::Deserializer::deserialize_unit_struct(__d, {name:?}, __Visitor)"),
        Fields::Tuple(1) => {
            // Newtype structs deserialize transparently from their payload.
            return format!(
                "#[automatically_derived]\n\
                 impl<'de> serde::de::Deserialize<'de> for {name} {{\n\
                     fn deserialize<__D: serde::de::Deserializer<'de>>(__d: __D)\n\
                         -> std::result::Result<Self, __D::Error> {{\n\
                         struct __Visitor;\n\
                         impl<'de> serde::de::Visitor<'de> for __Visitor {{\n\
                             type Value = {name};\n\
                             fn expecting(&self, __f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {{\n\
                                 __f.write_str({expecting:?})\n\
                             }}\n\
                             fn visit_newtype_struct<__D2: serde::de::Deserializer<'de>>(self, __d2: __D2)\n\
                                 -> std::result::Result<Self::Value, __D2::Error> {{\n\
                                 Ok({name}(serde::de::Deserialize::deserialize(__d2)?))\n\
                             }}\n\
                         }}\n\
                         serde::de::Deserializer::deserialize_newtype_struct(__d, {name:?}, __Visitor)\n\
                     }}\n\
                 }}"
            );
        }
        Fields::Tuple(n) => format!(
            "serde::Deserializer::deserialize_tuple_struct(__d, {name:?}, {n}, __Visitor)"
        ),
        Fields::Named(names) => {
            let list: Vec<String> = names.iter().map(|f| format!("{f:?}")).collect();
            format!(
                "const __FIELDS: &[&str] = &[{}];\n\
                 serde::Deserializer::deserialize_struct(__d, {name:?}, __FIELDS, __Visitor)",
                list.join(", ")
            )
        }
    };
    let visitor_body = de_fields_visitor(name, fields, &expecting);
    format!(
        "#[automatically_derived]\n\
         impl<'de> serde::de::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: serde::de::Deserializer<'de>>(__d: __D)\n\
                 -> std::result::Result<Self, __D::Error> {{\n\
                 struct __Visitor;\n\
                 impl<'de> serde::de::Visitor<'de> for __Visitor {{\n\
                     type Value = {name};\n\
                     {visitor_body}\n\
                 }}\n\
                 {driver}\n\
             }}\n\
         }}"
    )
}

fn de_enum(name: &str, variants: &[Variant]) -> String {
    let variant_list: Vec<String> = variants.iter().map(|v| format!("{:?}", v.name)).collect();
    let mut arms = String::new();
    for v in variants {
        let vname = &v.name;
        let path = format!("{name}::{vname}");
        match &v.fields {
            Fields::Unit => {
                arms += &format!(
                    "{vname:?} => {{\n\
                         serde::de::VariantAccess::unit_variant(__variant)?;\n\
                         Ok({path})\n\
                     }}\n"
                );
            }
            Fields::Tuple(1) => {
                arms += &format!(
                    "{vname:?} => Ok({path}(serde::de::VariantAccess::newtype_variant(__variant)?)),\n"
                );
            }
            Fields::Tuple(n) => {
                let expecting = format!("tuple variant {name}::{vname}");
                let inner = de_fields_visitor(&path, &v.fields, &expecting);
                arms += &format!(
                    "{vname:?} => {{\n\
                         struct __VariantVisitor;\n\
                         impl<'de> serde::de::Visitor<'de> for __VariantVisitor {{\n\
                             type Value = {name};\n\
                             {inner}\n\
                         }}\n\
                         serde::de::VariantAccess::tuple_variant(__variant, {n}, __VariantVisitor)\n\
                     }}\n"
                );
            }
            Fields::Named(fields) => {
                let expecting = format!("struct variant {name}::{vname}");
                let inner = de_fields_visitor(&path, &v.fields, &expecting);
                let list: Vec<String> = fields.iter().map(|f| format!("{f:?}")).collect();
                arms += &format!(
                    "{vname:?} => {{\n\
                         struct __VariantVisitor;\n\
                         impl<'de> serde::de::Visitor<'de> for __VariantVisitor {{\n\
                             type Value = {name};\n\
                             {inner}\n\
                         }}\n\
                         const __VFIELDS: &[&str] = &[{}];\n\
                         serde::de::VariantAccess::struct_variant(__variant, __VFIELDS, __VariantVisitor)\n\
                     }}\n",
                    list.join(", ")
                );
            }
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl<'de> serde::de::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: serde::de::Deserializer<'de>>(__d: __D)\n\
                 -> std::result::Result<Self, __D::Error> {{\n\
                 const __VARIANTS: &[&str] = &[{variants}];\n\
                 struct __Visitor;\n\
                 impl<'de> serde::de::Visitor<'de> for __Visitor {{\n\
                     type Value = {name};\n\
                     fn expecting(&self, __f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {{\n\
                         write!(__f, \"enum {name}\")\n\
                     }}\n\
                     fn visit_enum<__A: serde::de::EnumAccess<'de>>(self, __data: __A)\n\
                         -> std::result::Result<Self::Value, __A::Error> {{\n\
                         let (__tag, __variant) = serde::de::EnumAccess::variant::<String>(__data)?;\n\
                         match __tag.as_str() {{\n\
                             {arms}\
                             _ => Err(serde::de::Error::unknown_variant(&__tag, __VARIANTS)),\n\
                         }}\n\
                     }}\n\
                 }}\n\
                 serde::de::Deserializer::deserialize_enum(__d, {name:?}, __VARIANTS, __Visitor)\n\
             }}\n\
         }}",
        variants = variant_list.join(", ")
    )
}
